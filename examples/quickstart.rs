//! Quickstart: build a table, train a Naru estimator, ask it questions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use naru::baselines::IndepEstimator;
use naru::core::{NaruConfig, NaruEstimator};
use naru::data::synthetic::dmv_like;
use naru::query::{
    generate_workload, q_error_from_selectivity, Predicate, Query, SelectivityEstimator, WorkloadConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Get a relation. Here: a small synthetic table with the DMV schema
    //    (11 columns, domains from 2 to 2101, strong correlations). To use a
    //    real CSV instead: `naru::data::load_csv("vehicles.csv", None, None)`.
    let table = dmv_like(8_000, 42);
    println!(
        "table `{}`: {} rows x {} columns, joint space 10^{:.0}",
        table.name(),
        table.num_rows(),
        table.num_columns(),
        table.schema().joint_size_log10()
    );

    // 2. Train a Naru estimator: unsupervised, just reads tuples.
    let config = NaruConfig::small().with_samples(800);
    println!("training Naru ({} epochs)...", config.train.epochs);
    let (naru, report) = NaruEstimator::train(&table, &config);
    if let Some(gap) = report.final_entropy_gap_bits() {
        println!("  final entropy gap: {gap:.2} bits, model size {} KB", naru.size_bytes() / 1024);
    }

    // 3. Ask for selectivities. Predicates address columns by index and
    //    dictionary id; `Predicate::from_value` converts raw literals.
    let query = Query::new(vec![
        Predicate::eq(0, 0),    // record_type = 0
        Predicate::le(6, 1000), // valid_date <= id 1000
        Predicate::ge(7, 5),    // color >= id 5
    ]);
    let estimate = naru.try_estimate(&query).expect("valid query");
    let truth = naru::query::true_selectivity(&table, &query);
    println!(
        "\nquery P(record_type=0, valid_date<=1000, color>=5):\n  estimate {:.5} (~{} rows, {} live paths, {:.2?})  truth {:.5}  q-error {:.2}",
        estimate.selectivity,
        estimate.cardinality(),
        estimate.live_paths.unwrap_or(0),
        estimate.wall_time,
        truth,
        q_error_from_selectivity(estimate.selectivity, truth, table.num_rows())
    );

    // 4. Compare against the independence assumption on a small workload,
    //    answering each estimator's queries in one batched call.
    let mut rng = StdRng::seed_from_u64(7);
    let workload = generate_workload(&table, &WorkloadConfig::default(), 25, &mut rng);
    let queries: Vec<Query> = workload.iter().map(|lq| lq.query.clone()).collect();
    let indep = IndepEstimator::build(&table);
    for (name, est) in [("Naru", &naru as &dyn SelectivityEstimator), ("Indep", &indep)] {
        let max_err = est
            .try_estimate_batch(&queries)
            .iter()
            .zip(&workload)
            .map(|(r, lq)| {
                let sel = r.as_ref().expect("valid query").selectivity;
                q_error_from_selectivity(sel, lq.selectivity, table.num_rows())
            })
            .fold(f64::MIN, f64::max);
        println!("  {name:<6} worst-case q-error over 25 queries: {max_err:.1}");
    }

    // 5. Serving mode: one shared Engine, one Session per worker thread.
    let engine = naru.into_engine();
    let reference: Vec<f64> =
        engine.session().estimate_batch(&queries).into_iter().map(|r| r.unwrap().selectivity).collect();
    std::thread::scope(|scope| {
        for worker in 0..2 {
            let engine = engine.clone();
            let queries = queries.clone();
            let reference = reference.clone();
            scope.spawn(move || {
                let got: Vec<f64> =
                    engine.session().estimate_batch(&queries).into_iter().map(|r| r.unwrap().selectivity).collect();
                assert_eq!(got, reference);
                println!("  worker {worker}: {} estimates, bit-identical to the reference", got.len());
            });
        }
    });
}
