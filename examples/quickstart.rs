//! Quickstart: build a table, train a Naru estimator, ask it questions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use naru::baselines::IndepEstimator;
use naru::core::{NaruConfig, NaruEstimator};
use naru::data::synthetic::dmv_like;
use naru::query::{
    generate_workload, q_error_from_selectivity, Predicate, Query, SelectivityEstimator, WorkloadConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Get a relation. Here: a small synthetic table with the DMV schema
    //    (11 columns, domains from 2 to 2101, strong correlations). To use a
    //    real CSV instead: `naru::data::load_csv("vehicles.csv", None, None)`.
    let table = dmv_like(8_000, 42);
    println!(
        "table `{}`: {} rows x {} columns, joint space 10^{:.0}",
        table.name(),
        table.num_rows(),
        table.num_columns(),
        table.schema().joint_size_log10()
    );

    // 2. Train a Naru estimator: unsupervised, just reads tuples.
    let config = NaruConfig::small().with_samples(800);
    println!("training Naru ({} epochs)...", config.train.epochs);
    let (naru, report) = NaruEstimator::train(&table, &config);
    if let Some(gap) = report.final_entropy_gap_bits() {
        println!("  final entropy gap: {gap:.2} bits, model size {} KB", naru.size_bytes() / 1024);
    }

    // 3. Ask for selectivities. Predicates address columns by index and
    //    dictionary id; `Predicate::from_value` converts raw literals.
    let query = Query::new(vec![
        Predicate::eq(0, 0),    // record_type = 0
        Predicate::le(6, 1000), // valid_date <= id 1000
        Predicate::ge(7, 5),    // color >= id 5
    ]);
    let estimate = naru.estimate(&query);
    let truth = naru::query::true_selectivity(&table, &query);
    println!(
        "\nquery P(record_type=0, valid_date<=1000, color>=5):\n  estimate {:.5}  truth {:.5}  q-error {:.2}",
        estimate,
        truth,
        q_error_from_selectivity(estimate, truth, table.num_rows())
    );

    // 4. Compare against the independence assumption on a small workload.
    let mut rng = StdRng::seed_from_u64(7);
    let workload = generate_workload(&table, &WorkloadConfig::default(), 25, &mut rng);
    let indep = IndepEstimator::build(&table);
    for (name, est) in [("Naru", &naru as &dyn SelectivityEstimator), ("Indep", &indep)] {
        let max_err = workload
            .iter()
            .map(|lq| q_error_from_selectivity(est.estimate(&lq.query), lq.selectivity, table.num_rows()))
            .fold(f64::MIN, f64::max);
        println!("  {name:<6} worst-case q-error over 25 queries: {max_err:.1}");
    }
}
