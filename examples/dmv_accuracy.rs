//! A miniature version of the paper's Table 3: compare estimator families on
//! a DMV-like workload, grouped by query selectivity.
//!
//! ```text
//! cargo run --release --example dmv_accuracy
//! ```

use naru::baselines::{Histogram1dConfig, IndepEstimator, PostgresEstimator, SampleEstimator};
use naru::core::{NaruConfig, NaruEstimator};
use naru::data::synthetic::dmv_like;
use naru::query::{
    generate_workload, q_error_from_selectivity, ErrorQuantiles, SelectivityBucket, SelectivityEstimator,
    WorkloadConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let table = dmv_like(12_000, 1);
    let mut rng = StdRng::seed_from_u64(3);
    let workload = generate_workload(&table, &WorkloadConfig::default(), 80, &mut rng);
    println!("generated {} queries over `{}` ({} rows)", workload.len(), table.name(), table.num_rows());

    println!("building estimators...");
    let indep = IndepEstimator::build(&table);
    let postgres = PostgresEstimator::build(&table, &Histogram1dConfig::default());
    let sample = SampleEstimator::build(&table, 0.013, 0);
    let (naru, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(1000));

    let estimators: Vec<&dyn SelectivityEstimator> = vec![&indep, &postgres, &sample, &naru];
    println!("\n{:<14} {:>10} {:>10} {:>10}", "estimator", "high max", "medium max", "low max");
    let queries: Vec<naru::query::Query> = workload.iter().map(|lq| lq.query.clone()).collect();
    for est in estimators {
        // One batched call per estimator; results align with the workload.
        let sels: Vec<f64> =
            est.try_estimate_batch(&queries).into_iter().map(|r| r.expect("valid query").selectivity).collect();
        let mut cells = vec![format!("{:<14}", est.name())];
        for bucket in SelectivityBucket::ALL {
            let errs: Vec<f64> = workload
                .iter()
                .zip(&sels)
                .filter(|(lq, _)| lq.bucket() == bucket)
                .map(|(lq, &sel)| q_error_from_selectivity(sel, lq.selectivity, table.num_rows()))
                .collect();
            let cell = match ErrorQuantiles::from_errors(&errs) {
                Some(q) => format!("{:>10.1}", q.max),
                None => format!("{:>10}", "-"),
            };
            cells.push(cell);
        }
        println!("{}", cells.join(" "));
    }
    println!("\n(the paper's Table 3 reports the same layout over 2,000 queries on the 11.5M-row DMV table)");
}
