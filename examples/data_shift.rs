//! Data-shift robustness (the paper's Table 8): partition a table by date,
//! ingest partitions one at a time, and compare a stale Naru model against
//! one that is fine-tuned after every ingest.
//!
//! ```text
//! cargo run --release --example data_shift
//! ```

use naru::core::{fine_tune, NaruConfig, NaruEstimator, TrainConfig};
use naru::data::shift::{ingested_prefix, partition_by_column};
use naru::data::synthetic::dmv_like;
use naru::query::{
    generate_workload, q_error_from_selectivity, true_selectivity, SelectivityEstimator, WorkloadConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let table = dmv_like(10_000, 11);
    let date_col = table.column_index("valid_date").expect("dmv schema");
    let parts = partition_by_column(&table, date_col, 5);
    println!("partitioned {} rows into {} ingests by valid_date", table.num_rows(), parts.len());

    let config = NaruConfig::small().with_samples(800);
    let (stale, _) = NaruEstimator::train(&parts[0], &config);
    let (mut refreshed, _) = NaruEstimator::train(&parts[0], &config);

    println!("\n{:>8} {:>14} {:>14}", "ingest", "stale max", "refreshed max");
    for k in 1..=parts.len() {
        let visible = ingested_prefix(&parts, k);
        if k > 1 {
            // Fine-tune on the *visible* data (everything ingested so far),
            // not just the newest partition: the partitions are disjoint in
            // valid_date, so training on the new slice alone makes the model
            // forget the earlier date bands it is still queried about.
            let ft = TrainConfig { epochs: 1, compute_data_entropy: false, eval_tuples: 0, ..config.train.clone() };
            fine_tune(refreshed.model_mut(), &visible, 1, &ft);
        }
        // Queries probe the *updated* table (the paper's Table 8 setup): the
        // stale model has never seen the new partitions' date bands, while
        // the refreshed model has absorbed them.
        let mut rng = StdRng::seed_from_u64(100 + k as u64);
        let queries = generate_workload(&visible, &WorkloadConfig::default(), 40, &mut rng);
        let max_err = |est: &NaruEstimator| {
            queries
                .iter()
                .map(|lq| {
                    let truth = true_selectivity(&visible, &lq.query);
                    let sel = est.try_estimate(&lq.query).expect("valid query").selectivity;
                    q_error_from_selectivity(sel, truth, visible.num_rows())
                })
                .fold(f64::MIN, f64::max)
        };
        println!("{:>8} {:>14.1} {:>14.1}", k, max_err(&stale), max_err(&refreshed));
    }
    println!("\n(the stale model degrades as unseen partitions arrive; fine-tuning keeps errors flat — Table 8)");
}
