//! Out-of-distribution robustness (the paper's Table 5): literals drawn from
//! the full domain rather than from data tuples, so most queries match
//! nothing. Data-driven estimators handle this gracefully; the supervised
//! regressor does not.
//!
//! ```text
//! cargo run --release --example ood_robustness
//! ```

use naru::baselines::{MscnConfig, MscnEstimator, SampleEstimator};
use naru::core::{NaruConfig, NaruEstimator};
use naru::data::synthetic::dmv_like;
use naru::query::{generate_workload, q_error_from_selectivity, ErrorQuantiles, SelectivityEstimator, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let table = dmv_like(10_000, 5);
    let mut rng = StdRng::seed_from_u64(9);

    // Supervised training queries are *in-distribution* — that is the point.
    let training = generate_workload(&table, &WorkloadConfig::default(), 300, &mut rng);
    let ood = generate_workload(&table, &WorkloadConfig::out_of_distribution(), 120, &mut rng);
    let empty = ood.iter().filter(|q| q.cardinality == 0).count();
    println!("{empty} of {} OOD queries have zero true cardinality", ood.len());

    println!("building estimators...");
    let mscn =
        MscnEstimator::train(&table, &training, &MscnConfig { sample_rows: 1000, epochs: 30, ..Default::default() });
    let sample = SampleEstimator::build(&table, 0.013, 0);
    let (naru, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(1000));

    println!("\n{:<14} {:>8} {:>8} {:>8}", "estimator", "median", "99th", "max");
    for est in [&mscn as &dyn SelectivityEstimator, &sample, &naru] {
        let errs: Vec<f64> = ood
            .iter()
            .map(|lq| {
                let sel = est.try_estimate(&lq.query).expect("valid query").selectivity;
                q_error_from_selectivity(sel, lq.selectivity, table.num_rows())
            })
            .collect();
        let q = ErrorQuantiles::from_errors(&errs).unwrap();
        println!("{:<14} {:>8.2} {:>8.1} {:>8.1}", est.name(), q.median, q.p99, q.max);
    }
    println!("\n(because Naru models the data rather than a query distribution, it assigns near-zero mass to empty regions — Table 5)");
}
