//! Networking: expose the worker pool over HTTP with `naru-net`.
//!
//! Trains a small model, starts a [`NetServer`] on a loopback port, then
//! drives it the way any external client would — raw TCP, hand-written
//! HTTP/1.1 requests, the line-oriented query wire format — and prints
//! the decoded estimates plus the server's final counters. While it runs
//! you can also poke the same server from a shell:
//!
//! ```text
//! curl -s --data-binary '0 <= 3' http://127.0.0.1:PORT/estimate
//! curl -s http://127.0.0.1:PORT/metrics
//! ```
//!
//! ```text
//! cargo run --release --example serve_http
//! ```

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use naru::core::{NaruConfig, NaruEstimator};
use naru::data::synthetic::dmv_like;
use naru::net::{decode_served, read_response, HttpLimits, NetConfig, NetServer};
use naru::query::{encode_query, generate_workload, WorkloadConfig};
use naru::serve::{ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Train and freeze a small model, then put the pool on the wire.
    let table = dmv_like(2_000, 42);
    println!("training on `{}` ({} rows x {} cols)...", table.name(), table.num_rows(), table.num_columns());
    let (estimator, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(200));
    let serve = Server::start(
        estimator.into_engine(),
        ServeConfig::default().with_workers(2).with_queue_capacity(64).with_max_batch(4),
    )
    .expect("valid serve config");
    let net = NetServer::start(serve, NetConfig::default().with_handler_threads(4)).expect("loopback bind");
    println!("listening on http://{}\n", net.local_addr());

    // 2. A workload to push through the front end.
    let mut rng = StdRng::seed_from_u64(7);
    let workload = generate_workload(&table, &WorkloadConfig::default(), 12, &mut rng);
    let limits = HttpLimits::default();

    // 3. Three clients, one keep-alive connection each. Every request is
    //    plain text over TCP: POST the wire-encoded query, read back
    //    `key value` lines. The second client tags its traffic as batch
    //    priority with a generous deadline via the X-Naru-* headers.
    std::thread::scope(|scope| {
        for client in 0..3 {
            let addr = net.local_addr();
            let workload = &workload;
            let limits = &limits;
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect to loopback server");
                stream.set_read_timeout(Some(Duration::from_secs(10))).expect("set read timeout");
                let headers = if client == 1 { "X-Naru-Priority: batch\r\nX-Naru-Timeout-Ms: 5000\r\n" } else { "" };
                let mut i = client;
                while i < workload.len() {
                    let body = encode_query(&workload[i].query);
                    let request = format!(
                        "POST /estimate HTTP/1.1\r\nHost: naru\r\n{headers}Content-Length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    stream.write_all(request.as_bytes()).expect("write request");
                    let response = read_response(&mut stream, limits).expect("well-formed response");
                    assert_eq!(response.status, 200, "{}", response.text());
                    let served = decode_served(&response.text()).expect("decodable estimate");
                    println!(
                        "  client {client}: {:.5} selectivity (~{} rows) via {}, worker {}, waited {:.2?}",
                        served.estimate.selectivity,
                        served.estimate.cardinality(),
                        served.estimate.provenance.label(),
                        served.stats.worker,
                        served.stats.queue_wait,
                    );
                    i += 3;
                }
            });
        }
    });

    // 4. The observability endpoints speak the same protocol.
    let mut stream = TcpStream::connect(net.local_addr()).expect("connect to loopback server");
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: naru\r\n\r\n").expect("write request");
    let metrics_response = read_response(&mut stream, &limits).expect("well-formed response");
    println!("\nGET /metrics ->\n{}", metrics_response.text());

    // 5. Graceful shutdown: listener closes, connections and queue drain,
    //    and the accounting identity holds across the network boundary.
    let metrics = net.shutdown();
    println!(
        "shutdown: {} accepted = {} served + {} failed + {} shed + {} cancelled",
        metrics.accepted, metrics.served, metrics.failed, metrics.shed, metrics.cancelled
    );
    assert_eq!(metrics.accounted(), metrics.accepted);
}
