//! Serving: run a trained estimator behind the `naru-serve` worker pool.
//!
//! Trains a small model, starts a [`Server`] with a bounded request queue
//! and a few workers, drives it from concurrent client threads, and prints
//! per-request scheduling stats plus the final server counters.
//!
//! ```text
//! cargo run --release --example serve_pool
//! ```

use naru::core::{NaruConfig, NaruEstimator};
use naru::data::synthetic::dmv_like;
use naru::query::{generate_workload, Query, WorkloadConfig};
use naru::serve::{ServeConfig, ServeError, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Train on a synthetic DMV-style table and freeze into an Engine.
    let table = dmv_like(4_000, 42);
    println!("training on `{}` ({} rows x {} cols)...", table.name(), table.num_rows(), table.num_columns());
    let (estimator, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(400));
    let engine = estimator.into_engine();

    // 2. Start the worker pool: 4 workers, bounded queue, micro-batching.
    let config = ServeConfig::default().with_workers(4).with_queue_capacity(128).with_max_batch(8);
    let server = Server::start(engine, config).expect("valid serve config");
    println!("serving with {} workers, queue capacity {}", server.num_workers(), server.queue_capacity());

    // 3. Hammer it from concurrent clients (closed-loop: one request in
    //    flight per client). `submit` applies backpressure when the queue
    //    is full; `try_submit` would shed load with ServeError::Overloaded.
    let mut rng = StdRng::seed_from_u64(7);
    let workload = generate_workload(&table, &WorkloadConfig::default(), 40, &mut rng);
    let queries: Vec<Query> = workload.into_iter().map(|lq| lq.query).collect();
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for client in 0..3 {
            let server = &server;
            let queries = &queries;
            scope.spawn(move || {
                let mut waited = std::time::Duration::ZERO;
                for query in queries {
                    match server.estimate(query) {
                        Ok(served) => waited += served.stats.queue_wait,
                        Err(ServeError::Overloaded { capacity }) => {
                            println!("  client {client}: shed at capacity {capacity}")
                        }
                        Err(err) => println!("  client {client}: {err}"),
                    }
                }
                println!("  client {client}: {} requests, total queue wait {waited:.2?}", queries.len());
            });
        }
    });
    let elapsed = start.elapsed();

    // 4. Graceful shutdown: drains anything still queued, joins workers.
    let metrics = server.shutdown();
    println!(
        "\nserved {} requests in {:.2?} ({:.0} queries/sec) across {} micro-batches; {} rejected, {} failed",
        metrics.served,
        elapsed,
        metrics.served as f64 / elapsed.as_secs_f64(),
        metrics.batches,
        metrics.rejected,
        metrics.failed
    );
    assert_eq!(metrics.completed(), metrics.accepted, "graceful shutdown must lose no accepted request");
}
