//! Serving: deadlines, priorities, and graceful degradation.
//!
//! Trains a small model, starts a [`Server`] with a [`DegradePolicy`], and
//! submits the same query three ways:
//!
//! 1. no deadline — served at full quality;
//! 2. a deadline inside the policy's budgets — served *degraded* (a cheap
//!    reduced walk, tagged [`Provenance::Degraded`]) instead of failing;
//! 3. an already-expired deadline — shed with
//!    [`ServeError::DeadlineExceeded`] before any model work runs.
//!
//! It finishes with a cancelled ticket and the server's accounting
//! identity: `served + failed + shed + cancelled == accepted`.
//!
//! ```text
//! cargo run --release --example serve_degraded
//! ```

use std::time::Duration;

use naru::core::{NaruConfig, NaruEstimator};
use naru::data::synthetic::dmv_like;
use naru::query::{Predicate, Provenance, Query};
use naru::serve::{DegradePolicy, ServeConfig, ServeError, Server, SubmitOptions};

fn main() {
    // 1. Train on a synthetic DMV-style table and freeze into an Engine.
    let table = dmv_like(4_000, 42);
    println!("training on `{}` ({} rows x {} cols)...", table.name(), table.num_rows(), table.num_columns());
    let (estimator, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(400));
    // Strip the statistics sidecar so every answer must come from the
    // model: the demo then deterministically shows the full-walk rung vs
    // the degraded reduced walk. (A production engine would keep its
    // stats; queries the fast tiers can answer *without* losing quality
    // keep their normal provenance even under a deadline.)
    let engine = estimator.into_engine().without_table_stats();

    // 2. A degradation ladder with budgets far above any real walk time,
    //    so the example's routing is deterministic: any request whose
    //    remaining deadline budget is below 60s skips the model entirely
    //    (sketch rung), below 120s takes a reduced-sample walk, and
    //    deadline-less requests run at full quality.
    let policy = DegradePolicy::default()
        .with_full_walk_budget(Duration::from_secs(120))
        .with_sketch_budget(Duration::from_secs(60));
    let config = ServeConfig::default().with_workers(2).with_degrade(policy);
    let server = Server::start(engine, config).expect("valid serve config");
    let query = Query::new(vec![Predicate::eq(0, 1), Predicate::le(6, 900)]);

    // 3. No deadline: the full-quality tiered estimate.
    let full = server.estimate(&query).expect("valid query");
    println!(
        "full quality : selectivity {:.5} ({:?}, {:?})",
        full.estimate.selectivity, full.estimate.provenance, full.stats.execution
    );

    // 4. A 10s deadline sits below the 60s sketch budget, so the server
    //    trades quality for latency instead of risking the deadline.
    let options = SubmitOptions::interactive().deadline_within(Duration::from_secs(10));
    let degraded = server.estimate_with(&query, options).expect("degraded, not failed");
    assert_eq!(degraded.estimate.provenance, Provenance::Degraded);
    println!(
        "degraded     : selectivity {:.5} ({:?}, {:?})",
        degraded.estimate.selectivity, degraded.estimate.provenance, degraded.stats.execution
    );

    // 5. An already-expired deadline is shed at dequeue — a typed error,
    //    no model work, no silent drop.
    let expired = SubmitOptions::best_effort().deadline_within(Duration::ZERO);
    let shed = server.estimate_with(&query, expired).expect_err("must shed");
    assert_eq!(shed, ServeError::DeadlineExceeded);
    println!("expired      : {shed}");

    // 6. A cancelled ticket: park both workers on fresh walks, cancel a
    //    queued request before a worker reaches it — it is skipped
    //    entirely, never estimated.
    let busy: Vec<_> =
        (0..2u32).map(|i| server.submit(Query::new(vec![Predicate::le(6, 400 + i)])).expect("admitted")).collect();
    server.submit(query.clone()).expect("admitted").cancel();
    for ticket in busy {
        ticket.wait().expect("valid query");
    }

    // 7. The request-lifecycle accounting identity always balances.
    let metrics = server.shutdown();
    println!(
        "\naccounting   : accepted {} = served {} + failed {} + shed {} + cancelled {} ({} degraded)",
        metrics.accepted, metrics.served, metrics.failed, metrics.shed, metrics.cancelled, metrics.degraded_served
    );
    assert_eq!(metrics.accounted(), metrics.accepted, "served + failed + shed + cancelled must equal accepted");
}
