//! Integration tests for the Engine/Session estimation API: multi-threaded
//! parity, batch-vs-sequential parity across estimator families, and the
//! typed error paths.

use naru::baselines::{IndepEstimator, KdeEstimator, PostgresEstimator, SampleEstimator};
use naru::core::{Engine, IndependentDensity, NaruConfig, NaruEstimator, OracleDensity};
use naru::data::synthetic::{correlated_pair, dmv_like};
use naru::query::{generate_workload, EstimateError, Predicate, Query, SelectivityEstimator, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload_queries(table: &naru::data::Table, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_workload(table, &WorkloadConfig::default(), n, &mut rng).into_iter().map(|lq| lq.query).collect()
}

/// The acceptance-criterion test: one `Engine` shared across four
/// `std::thread::scope` sessions, every thread's selectivities matching the
/// single-threaded reference bit-for-bit.
#[test]
fn one_engine_four_sessions_match_single_threaded_reference_bitwise() {
    let table = dmv_like(1500, 3);
    let (estimator, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(200));
    let queries = workload_queries(&table, 12, 11);

    // Single-threaded reference through one session.
    let engine = estimator.into_engine();
    let reference: Vec<f64> =
        engine.session().estimate_batch(&queries).into_iter().map(|r| r.expect("valid query").selectivity).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..4 {
            let engine = engine.clone();
            let queries = queries.clone();
            handles.push(scope.spawn(move || {
                let mut session = engine.session();
                let got: Vec<f64> =
                    session.estimate_batch(&queries).into_iter().map(|r| r.expect("valid query").selectivity).collect();
                (worker, got)
            }));
        }
        for handle in handles {
            let (worker, got) = handle.join().expect("worker panicked");
            // Bit-for-bit equality, not approximate.
            assert_eq!(got, reference, "worker {worker} diverged from the single-threaded reference");
        }
    });
}

/// Batch parity for Naru: `try_estimate_batch` must equal per-query
/// `try_estimate` exactly.
#[test]
fn naru_batch_matches_sequential_exactly() {
    let table = correlated_pair(1200, 8, 0.9, 5);
    let (estimator, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(150));
    let queries = workload_queries(&table, 10, 21);
    let batch = estimator.try_estimate_batch(&queries);
    assert_eq!(batch.len(), queries.len());
    for (q, b) in queries.iter().zip(&batch) {
        let single = estimator.try_estimate(q).expect("valid query");
        let batched = b.as_ref().expect("valid query");
        assert_eq!(single.selectivity, batched.selectivity);
        assert_eq!(single.live_paths, batched.live_paths);
        assert_eq!(single.estimated_rows, batched.estimated_rows);
    }
}

/// Batch parity for two closed-form baselines through the trait's default
/// batch implementation.
#[test]
fn baseline_batch_matches_sequential_exactly() {
    let table = dmv_like(2500, 9);
    let queries = workload_queries(&table, 15, 31);
    let indep = IndepEstimator::build(&table);
    let postgres = PostgresEstimator::build(&table, &Default::default());
    for est in [&indep as &dyn SelectivityEstimator, &postgres] {
        let batch = est.try_estimate_batch(&queries);
        for (q, b) in queries.iter().zip(&batch) {
            let single = est.try_estimate(q).expect("valid query");
            let batched = b.as_ref().expect("valid query");
            assert_eq!(single.selectivity, batched.selectivity, "{} diverged", est.name());
            assert_eq!(single.estimated_rows, batched.estimated_rows);
        }
    }
}

/// A mixed batch reports per-query errors without poisoning its neighbours.
#[test]
fn batch_reports_errors_per_query() {
    let table = dmv_like(800, 1);
    let indep = IndepEstimator::build(&table);
    let n = table.num_columns();
    let queries = vec![Query::all(), Query::new(vec![Predicate::eq(n + 3, 0)]), Query::new(vec![Predicate::eq(0, 0)])];
    let results = indep.try_estimate_batch(&queries);
    assert!(results[0].is_ok());
    assert_eq!(results[1], Err(EstimateError::ColumnOutOfRange { column: n + 3, num_columns: n }));
    assert!(results[2].is_ok());
}

/// Every `EstimateError` variant is reachable through a public entry point.
#[test]
fn each_error_variant_surfaces() {
    // ColumnOutOfRange: a predicate past the schema, through Naru itself.
    let table = correlated_pair(300, 4, 0.8, 7);
    let (naru, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(50));
    let err = naru.try_estimate(&Query::new(vec![Predicate::eq(9, 0)])).unwrap_err();
    assert_eq!(err, EstimateError::ColumnOutOfRange { column: 9, num_columns: 2 });
    assert!(err.to_string().contains("column 9"));

    // EmptyDomain: a degenerate density behind an Engine.
    let engine = Engine::new(IndependentDensity::new(vec![vec![1.0], vec![]]), 5);
    let err = engine.session().estimate(&Query::all()).unwrap_err();
    assert_eq!(err, EstimateError::EmptyDomain { column: 1 });
    assert!(err.to_string().contains("empty domain"));

    // Untrained: an empty materialized sample and an empty KDE.
    let err = SampleEstimator::build_with_rows(&table, 0, 1).try_estimate(&Query::all()).unwrap_err();
    assert!(matches!(err, EstimateError::Untrained { .. }), "got {err:?}");
    let empty = naru::data::Table::new("empty", vec![naru::data::Column::from_ids("a", vec![], 3)]);
    let err = KdeEstimator::build(&empty, 10, 0).try_estimate(&Query::all()).unwrap_err();
    assert!(matches!(err, EstimateError::Untrained { .. }), "got {err:?}");
}

/// The trait is object-safe, including its provided batch method, and the
/// oracle path works through an `Engine` (it is `Send + Sync`).
#[test]
fn trait_objects_and_oracle_engines_work() {
    let table = correlated_pair(900, 6, 0.85, 13);
    let boxed: Box<dyn SelectivityEstimator> = Box::new(IndepEstimator::build(&table));
    let q = Query::new(vec![Predicate::le(0, 2)]);
    assert!(boxed.try_estimate(&q).is_ok());
    assert_eq!(boxed.try_estimate_batch(std::slice::from_ref(&q)).len(), 1);

    let engine = Engine::new(OracleDensity::new(&table), table.num_rows() as u64).with_samples(300);
    let truth = naru::query::true_selectivity(&table, &q);
    let est = engine.session().estimate(&q).expect("valid query");
    assert!(naru::query::q_error_from_estimate(&est, truth, table.num_rows()) < 1.5);
}
