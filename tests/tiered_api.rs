//! Property tests for the tiered estimation pipeline: tier-0 answers are
//! bit-exact, tier-1 answers respect the advertised q-error budget, the
//! memoized batch path is bit-identical to sequential estimation, and a
//! served cache hit round-trips the exact estimate of a fresh miss.

use naru::core::stats::{StatsConfig, TableStats};
use naru::core::{Engine, IndependentDensity, OracleDensity};
use naru::query::{q_error_from_selectivity, try_count_matches, Predicate, Provenance, Query};
use naru::serve::{ServeConfig, Server};
use proptest::prelude::*;

/// One arbitrary predicate on a `dmv_like` column (domains there are all
/// small enough that [`TableStats`] stores exact counts by default).
fn dmv_predicate() -> impl Strategy<Value = Predicate> {
    (0usize..11, 0u32..2200, 0u32..2200, 0usize..4).prop_map(|(col, a, b, op)| match op {
        0 => Predicate::eq(col, a),
        1 => Predicate::le(col, a),
        2 => Predicate::ge(col, a),
        _ => Predicate::between(col, a.min(b), a.max(b)),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any query answered at tier 0 reports the exact row count of direct
    /// table evaluation, and single-column queries always qualify.
    #[test]
    fn tier0_answers_are_bit_exact(seed in 0u64..1000, pred in dmv_predicate()) {
        let table = naru::data::synthetic::dmv_like(1200, seed);
        let engine = Engine::new(OracleDensity::new(&table), table.num_rows() as u64)
            .with_samples(64)
            .with_table_stats(TableStats::build(&table));
        let mut tiered = engine.tiered_session();

        for query in [Query::all(), Query::new(vec![pred.clone()])] {
            let estimate = tiered.estimate(&query).unwrap();
            prop_assert_eq!(estimate.provenance, Provenance::Tier0Exact);
            let truth = try_count_matches(&table, &query).unwrap();
            prop_assert_eq!(estimate.cardinality(), truth);
        }
    }

    /// With exact counts disabled, eligible narrow queries route to tier 1
    /// and stay within the configured q-error budget.
    #[test]
    fn tier1_stays_within_the_qerror_budget(
        seed in 0u64..500,
        // Bitmask over columns {0, 1, 2}; 1..7 yields every 1- or 2-column
        // subset (the vendored proptest has no `sample::subsequence`).
        mask in 1u8..7,
        frac in 0.5f64..0.95,
    ) {
        let cols: Vec<usize> = (0..3).filter(|c| mask & (1 << c) != 0).collect();
        let domains = [7usize, 13, 29];
        let table = naru::data::synthetic::independent_table(1500, &domains, seed);
        // Drop the exact per-value counts so nothing is provable at tier 0
        // (short of full/empty domains) and tier 1 must answer.
        let config = StatsConfig { exact_counts_max_domain: 0, ..StatsConfig::default() };
        let engine = Engine::new(OracleDensity::new(&table), table.num_rows() as u64)
            .with_samples(64)
            .with_table_stats(TableStats::build_with(&table, &config));
        let mut tiered = engine.tiered_session();

        // `le` below the column max is never provable from min/max alone.
        let preds: Vec<Predicate> = cols
            .iter()
            .map(|&c| Predicate::le(c, ((domains[c] as f64 * frac) as u32).min(domains[c] as u32 - 2)))
            .collect();
        let query = Query::new(preds);
        let estimate = tiered.estimate(&query).unwrap();
        prop_assert_eq!(estimate.provenance, Provenance::Tier1Sketch);

        let budget = engine.tier_config().tier1_qerror_budget;
        let truth = try_count_matches(&table, &query).unwrap() as f64 / table.num_rows() as f64;
        let qerr = q_error_from_selectivity(estimate.selectivity, truth, table.num_rows());
        prop_assert!(qerr <= budget, "q-error {qerr} exceeds budget {budget} on {:?}", query);
    }

    /// The prefix-memoizing batch path is bit-identical to sequential
    /// estimation, for arbitrary batches (duplicates and shared prefixes
    /// included).
    #[test]
    fn memoized_batches_match_sequential_bitwise(
        seed in 0u64..200,
        preds in proptest::collection::vec(
            proptest::collection::vec(dmv_predicate(), 0..3), 1..6),
    ) {
        let table = naru::data::synthetic::dmv_like(600, seed);
        let engine = Engine::new(OracleDensity::new(&table), table.num_rows() as u64).with_samples(80);
        let queries: Vec<Query> = preds.into_iter().map(Query::new).collect();

        let batch = engine.session().estimate_batch(&queries);
        let mut sequential = engine.session();
        for (query, batched) in queries.iter().zip(batch) {
            let direct = sequential.estimate(query).unwrap();
            let batched = batched.unwrap();
            prop_assert_eq!(direct.selectivity, batched.selectivity);
            prop_assert_eq!(direct.live_paths, batched.live_paths);
            prop_assert_eq!(direct.estimated_rows, batched.estimated_rows);
        }
    }
}

proptest! {
    // Each case spins up a real worker pool; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A cache hit returns an `Estimate` identical to the fresh miss that
    /// populated it, except for its `CacheHit` provenance.
    #[test]
    fn cache_hits_round_trip_the_fresh_estimate(
        lo in 0u32..8, hi in 0u32..4,
    ) {
        let engine = Engine::new(IndependentDensity::uniform(&[8, 4]), 10_000).with_samples(64);
        let server = Server::start(engine, ServeConfig::default().with_workers(1).with_cache_capacity(16)).unwrap();
        let query = Query::new(vec![Predicate::ge(0, lo), Predicate::le(1, hi)]);

        let fresh = server.estimate(&query).unwrap().estimate;
        let hit = server.estimate(&query).unwrap().estimate;
        prop_assert_eq!(hit.provenance, Provenance::CacheHit);
        prop_assert_eq!(hit.selectivity, fresh.selectivity);
        prop_assert_eq!(hit.estimated_rows, fresh.estimated_rows);
        prop_assert_eq!(hit.live_paths, fresh.live_paths);

        let metrics = server.shutdown();
        prop_assert_eq!(metrics.cache_hits, 1);
        prop_assert_eq!(metrics.accepted, 1);
    }
}
