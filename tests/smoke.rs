//! Workspace-wiring smoke test: the facade crate can train a small model on
//! a tiny synthetic table and produce a sane estimate, quickly enough for CI.

use naru::prelude::*;

#[test]
fn train_and_estimate_on_tiny_table() {
    let table = naru::data::synthetic::dmv_like(400, 7);
    let config = NaruConfig::small();
    let (model, report) = NaruEstimator::train(&table, &config);
    let final_epoch = report.epochs.last().expect("training must record epochs");
    assert!(final_epoch.eval_nll_bits.is_finite(), "training NLL must be finite");

    let query = Query::new(vec![Predicate::eq(0, 1)]);
    let estimate = model.try_estimate(&query).expect("valid query");
    assert!(estimate.selectivity.is_finite(), "estimate must be finite, got {}", estimate.selectivity);
    assert!(
        (0.0..=1.0).contains(&estimate.selectivity),
        "estimate must be a selectivity in [0, 1], got {}",
        estimate.selectivity
    );
    assert!(estimate.estimated_rows <= 400.0);
}
