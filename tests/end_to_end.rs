//! Cross-crate integration tests: data → training → estimation → metrics.

use naru::baselines::{IndepEstimator, PostgresEstimator, SampleEstimator};
use naru::core::{enumerate_exact, NaruConfig, NaruEstimator, OracleDensity, ProgressiveSampler, SamplerConfig};
use naru::data::synthetic::{conviva_b_like, correlated_pair, dmv_like};
use naru::query::{
    generate_workload, q_error_from_selectivity, true_selectivity, Predicate, Query, SelectivityEstimator,
    WorkloadConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Selectivity through the fallible API; generated workloads are valid.
fn sel(est: &dyn SelectivityEstimator, q: &Query) -> f64 {
    est.try_estimate(q).expect("valid query").selectivity
}

/// The headline claim in miniature: on correlated data, the trained joint
/// model has a lower worst-case q-error than the independence-based
/// estimators under the same workload.
#[test]
fn naru_beats_independence_baselines_at_the_tail() {
    let table = dmv_like(6_000, 21);
    let mut rng = StdRng::seed_from_u64(5);
    let workload = generate_workload(&table, &WorkloadConfig::default(), 40, &mut rng);

    let indep = IndepEstimator::build(&table);
    let postgres = PostgresEstimator::build(&table, &Default::default());
    let config = NaruConfig::small().with_samples(1000);
    let (naru, _) = NaruEstimator::train(&table, &config);

    let max_err = |est: &dyn SelectivityEstimator| {
        workload
            .iter()
            .map(|lq| q_error_from_selectivity(sel(est, &lq.query), lq.selectivity, table.num_rows()))
            .fold(f64::MIN, f64::max)
    };
    let naru_max = max_err(&naru);
    let indep_max = max_err(&indep);
    let postgres_max = max_err(&postgres);
    assert!(
        naru_max < indep_max && naru_max < postgres_max,
        "Naru tail error {naru_max} should beat Indep {indep_max} and Postgres {postgres_max}"
    );
}

/// The sample estimator is competitive on high-selectivity queries but Naru
/// is far better on low-selectivity ones — the Table 3 pattern.
#[test]
fn naru_dominates_sampling_on_low_selectivity_queries() {
    let table = dmv_like(6_000, 22);
    let mut rng = StdRng::seed_from_u64(6);
    let workload = generate_workload(&table, &WorkloadConfig::default(), 60, &mut rng);
    let low: Vec<_> = workload.iter().filter(|lq| lq.selectivity <= 0.005).collect();
    if low.len() < 5 {
        // Workload too easy at this scale; nothing to assert.
        return;
    }
    let sample = SampleEstimator::build(&table, 0.013, 3);
    let (naru, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(1000));
    let max_err = |est: &dyn SelectivityEstimator| {
        low.iter()
            .map(|lq| q_error_from_selectivity(sel(est, &lq.query), lq.selectivity, table.num_rows()))
            .fold(f64::MIN, f64::max)
    };
    assert!(max_err(&naru) <= max_err(&sample));
}

/// Progressive sampling on an oracle model agrees with exact enumeration,
/// and both agree with the ground truth — across a workload, not just a
/// single query.
#[test]
fn oracle_sampling_enumeration_and_truth_agree() {
    let table = correlated_pair(3_000, 7, 0.85, 31);
    let oracle = OracleDensity::new(&table);
    let sampler = ProgressiveSampler::new(SamplerConfig { num_samples: 1500, seed: 0 });
    let mut rng = StdRng::seed_from_u64(8);
    let workload = generate_workload(
        &table,
        &WorkloadConfig { min_filters: 1, max_filters: 2, ..Default::default() },
        15,
        &mut rng,
    );
    for lq in &workload {
        let constraints = lq.query.constraints(table.num_columns());
        let exact = enumerate_exact(&oracle, &constraints, 100_000).expect("small region").selectivity;
        let sampled = sampler.estimate(&oracle, &constraints);
        assert!((exact - lq.selectivity).abs() < 1e-5, "enumeration should be exact");
        assert!((sampled - exact).abs() < 0.03, "sampling {sampled} vs exact {exact}");
    }
}

/// Estimators never leave the unit interval, across families and datasets.
#[test]
fn all_estimators_return_valid_selectivities() {
    let table = conviva_b_like(800, 12, 3);
    let mut rng = StdRng::seed_from_u64(9);
    let workload = generate_workload(&table, &WorkloadConfig::default(), 20, &mut rng);

    let indep = IndepEstimator::build(&table);
    let postgres = PostgresEstimator::build(&table, &Default::default());
    let sample = SampleEstimator::build(&table, 0.05, 0);
    let (naru, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(100));
    let estimators: Vec<&dyn SelectivityEstimator> = vec![&indep, &postgres, &sample, &naru];
    for est in estimators {
        for lq in &workload {
            let s = sel(est, &lq.query);
            assert!((0.0..=1.0).contains(&s), "{} returned {s}", est.name());
        }
    }
}

/// Queries built from decoded literals (via `Predicate::from_value`) agree
/// with queries built directly over ids.
#[test]
fn value_level_and_id_level_predicates_agree() {
    let table = dmv_like(2_000, 17);
    let col = table.column_index("valid_date").unwrap();
    let literal = table.column(col).decode(500).clone();
    let by_value =
        Query::new(vec![naru::query::Predicate::from_value(col, table.column(col), naru::query::Op::Le, &literal)]);
    let by_id = Query::new(vec![Predicate::le(col, 500)]);
    assert_eq!(true_selectivity(&table, &by_value), true_selectivity(&table, &by_id));
}
