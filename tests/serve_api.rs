//! Integration tests for the `naru-serve` worker-pool subsystem, driven
//! through the facade crate the way a downstream user would.
//!
//! Covers the serving acceptance properties:
//! * served estimates are **bit-identical** to direct sequential `Session`
//!   evaluation, for a 1-worker server and a multi-worker micro-batching
//!   server alike;
//! * queue saturation surfaces a typed [`ServeError::Overloaded`] — not a
//!   panic, not a silent drop;
//! * graceful shutdown drains every accepted request;
//! * per-query estimator rejections come back as typed
//!   [`ServeError::Estimate`] values without killing the worker.

use std::sync::{Arc, Condvar, Mutex};

use naru::core::{ConditionalDensity, Engine, IndependentDensity, OracleDensity};
use naru::data::synthetic::correlated_pair;
use naru::prelude::*;
use naru::serve::{ServeConfig, ServeError, Server};
use naru::tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

// --- a gated density so tests control exactly when workers make progress --

#[derive(Default)]
struct GateState {
    open: bool,
    entered: usize,
}

/// Blocks density evaluation until opened, and counts how many estimates
/// have started, so tests can hold a worker mid-request deterministically.
#[derive(Default)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl Gate {
    fn enter(&self) {
        let mut state = self.state.lock().unwrap();
        state.entered += 1;
        self.cv.notify_all();
        while !state.open {
            state = self.cv.wait(state).unwrap();
        }
    }

    fn open(&self) {
        self.state.lock().unwrap().open = true;
        self.cv.notify_all();
    }

    fn wait_entered(&self, n: usize) {
        let mut state = self.state.lock().unwrap();
        while state.entered < n {
            state = self.cv.wait(state).unwrap();
        }
    }
}

/// A uniform density whose first-column evaluation parks on the gate.
struct GatedDensity {
    inner: IndependentDensity,
    gate: Arc<Gate>,
}

impl GatedDensity {
    fn engine(gate: Arc<Gate>) -> Engine {
        let inner = IndependentDensity::uniform(&[6, 4]);
        Engine::new(Self { inner, gate }, 1_000).with_samples(16)
    }
}

impl ConditionalDensity for GatedDensity {
    fn num_columns(&self) -> usize {
        self.inner.num_columns()
    }

    fn domain_sizes(&self) -> &[usize] {
        self.inner.domain_sizes()
    }

    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        if col == 0 {
            // One estimate = one col-0 batch evaluation, so `entered`
            // counts requests that reached a worker.
            self.gate.enter();
        }
        self.inner.conditionals(tuples, col)
    }
}

/// A density that panics when asked for column 1's conditionals — queries
/// filtering only column 0 never reach it, so a mixed batch has both
/// poisoning and healthy requests.
struct PanickingDensity {
    inner: IndependentDensity,
}

impl PanickingDensity {
    fn engine() -> Engine {
        Engine::new(Self { inner: IndependentDensity::uniform(&[6, 4]) }, 1_000).with_samples(16)
    }
}

impl ConditionalDensity for PanickingDensity {
    fn num_columns(&self) -> usize {
        self.inner.num_columns()
    }

    fn domain_sizes(&self) -> &[usize] {
        self.inner.domain_sizes()
    }

    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        assert!(col != 1, "synthetic model failure on column 1");
        self.inner.conditionals(tuples, col)
    }
}

// --- helpers --------------------------------------------------------------

fn oracle_engine() -> (Engine, Vec<Query>) {
    let table = correlated_pair(1500, 6, 0.9, 11);
    let engine = Engine::new(OracleDensity::new(&table), table.num_rows() as u64).with_samples(200);
    let mut rng = StdRng::seed_from_u64(31);
    let workload = naru::query::generate_workload(
        &table,
        &naru::query::WorkloadConfig { min_filters: 1, max_filters: 2, ..Default::default() },
        12,
        &mut rng,
    );
    let queries = workload.into_iter().map(|lq| lq.query).collect();
    (engine, queries)
}

fn sequential_reference(engine: &Engine, queries: &[Query]) -> Vec<Estimate> {
    let mut session = engine.session();
    queries.iter().map(|q| session.estimate(q).expect("valid query")).collect()
}

fn assert_same_estimate(served: &Estimate, reference: &Estimate) {
    // Bit-for-bit: same selectivity, same cardinality, same surviving
    // sample paths. (wall_time legitimately differs, so no whole-struct
    // equality.)
    assert_eq!(served.selectivity, reference.selectivity);
    assert_eq!(served.estimated_rows, reference.estimated_rows);
    assert_eq!(served.live_paths, reference.live_paths);
}

// --- parity ---------------------------------------------------------------

#[test]
fn single_worker_server_is_bit_identical_to_sequential_session() {
    let (engine, queries) = oracle_engine();
    let reference = sequential_reference(&engine, &queries);

    let server = Server::start(engine, ServeConfig::default().with_workers(1).with_max_batch(1));
    let tickets: Vec<_> = queries.iter().map(|q| server.submit(q.clone()).unwrap()).collect();
    for (ticket, expected) in tickets.into_iter().zip(&reference) {
        let served = ticket.wait().expect("valid query");
        assert_same_estimate(&served.estimate, expected);
        assert_eq!(served.stats.worker, 0);
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.accepted, queries.len() as u64);
    assert_eq!(metrics.served, queries.len() as u64);
}

#[test]
fn multi_worker_micro_batching_server_is_bit_identical_to_sequential_session() {
    let (engine, queries) = oracle_engine();
    let reference = sequential_reference(&engine, &queries);

    let config = ServeConfig::default().with_workers(4).with_max_batch(3).with_queue_capacity(64);
    let server = Server::start(engine, config);
    assert_eq!(server.num_workers(), 4);

    // Submit everything up front so workers actually drain micro-batches,
    // then wait: scheduling and batch boundaries must not affect results.
    let tickets: Vec<_> = queries.iter().map(|q| server.submit(q.clone()).unwrap()).collect();
    for (ticket, expected) in tickets.into_iter().zip(&reference) {
        let served = ticket.wait().expect("valid query");
        assert_same_estimate(&served.estimate, expected);
        assert!(served.stats.worker < 4);
        assert!((1..=3).contains(&served.stats.batch_size));
        assert_eq!(served.stats.execution, served.estimate.wall_time);
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.served, queries.len() as u64);
    assert!(metrics.batches <= queries.len() as u64, "batches cannot outnumber requests");
}

#[test]
fn concurrent_clients_all_get_exact_answers() {
    let (engine, queries) = oracle_engine();
    let reference = sequential_reference(&engine, &queries);

    let server = Server::start(engine, ServeConfig::default().with_workers(2).with_max_batch(4));
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let server = &server;
            let queries = &queries;
            let reference = &reference;
            scope.spawn(move || {
                for (q, expected) in queries.iter().zip(reference) {
                    let served = server.estimate(q).expect("valid query");
                    assert_same_estimate(&served.estimate, expected);
                }
            });
        }
    });
    let metrics = server.shutdown();
    assert_eq!(metrics.served, 3 * queries.len() as u64);
}

// --- admission control ----------------------------------------------------

#[test]
fn queue_saturation_rejects_with_overloaded_and_recovers() {
    let gate = Arc::new(Gate::default());
    let engine = GatedDensity::engine(Arc::clone(&gate));
    let server = Server::start(
        engine,
        ServeConfig { num_workers: 1, queue_capacity: 2, max_batch: 1, ..ServeConfig::default() },
    );
    let q = Query::new(vec![Predicate::le(0, 2)]);

    // First request occupies the worker (parked on the gate)...
    let t1 = server.try_submit(q.clone()).unwrap();
    gate.wait_entered(1);
    // ...the next two fill the bounded queue...
    let t2 = server.try_submit(q.clone()).unwrap();
    let t3 = server.try_submit(q.clone()).unwrap();
    // ...and admission control sheds the overflow as a typed error.
    assert_eq!(server.try_submit(q.clone()).unwrap_err(), ServeError::Overloaded { capacity: 2 });
    assert_eq!(server.queue_len(), 2);

    // A *blocking* submit waits out the saturation instead.
    let blocked = {
        let server = &server;
        let q = q.clone();
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || server.submit(q).map(|t| t.wait()));
            gate.open();
            handle.join().unwrap()
        })
    };
    assert!(blocked.unwrap().is_ok(), "blocking submit must be admitted once the queue drains");

    for ticket in [t1, t2, t3] {
        assert!(ticket.wait().is_ok(), "accepted requests must be served, not dropped");
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.accepted, 4);
    assert_eq!(metrics.rejected, 1);
    assert_eq!(metrics.served, 4);
}

// --- graceful shutdown ----------------------------------------------------

#[test]
fn shutdown_drains_every_accepted_request() {
    let gate = Arc::new(Gate::default());
    let engine = GatedDensity::engine(Arc::clone(&gate));
    let server = Server::start(
        engine,
        ServeConfig { num_workers: 2, queue_capacity: 16, max_batch: 4, ..ServeConfig::default() },
    );
    let q = Query::new(vec![Predicate::ge(1, 1)]);

    let tickets: Vec<_> = (0..8).map(|_| server.submit(q.clone()).unwrap()).collect();
    gate.wait_entered(1);

    // Admission stops immediately; in-flight and queued work keeps going.
    server.close();
    assert_eq!(server.submit(q.clone()).unwrap_err(), ServeError::ShuttingDown);
    assert_eq!(server.try_submit(q.clone()).unwrap_err(), ServeError::ShuttingDown);

    gate.open();
    for ticket in tickets {
        assert!(ticket.wait().is_ok(), "accepted request lost during shutdown");
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.accepted, 8);
    assert_eq!(metrics.completed(), 8);
    assert_eq!(metrics.served, 8);
}

// --- per-request failures -------------------------------------------------

#[test]
fn estimator_rejections_are_typed_and_do_not_kill_workers() {
    let (engine, queries) = oracle_engine();
    let reference = sequential_reference(&engine, &queries);
    let server = Server::start(engine, ServeConfig::default().with_workers(2).with_max_batch(2));

    let bad = Query::new(vec![Predicate::eq(42, 0)]);
    let err = server.estimate(&bad).unwrap_err();
    assert_eq!(err, ServeError::Estimate(EstimateError::ColumnOutOfRange { column: 42, num_columns: 2 }));

    // The pool keeps serving exact answers afterwards.
    for (q, expected) in queries.iter().zip(&reference) {
        assert_same_estimate(&server.estimate(q).unwrap().estimate, expected);
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.failed, 1);
    assert_eq!(metrics.served, queries.len() as u64);
}

#[test]
fn estimator_panics_are_contained_per_request() {
    let server = Server::start(PanickingDensity::engine(), ServeConfig::default().with_workers(1).with_max_batch(8));
    let healthy = Query::new(vec![Predicate::le(0, 2)]); // walks column 0 only
    let poison = Query::new(vec![Predicate::ge(1, 1)]); // walks through column 1

    let reference = server.estimate(&healthy).expect("healthy query").estimate;

    // Queue a mixed burst so poisoning and healthy requests share batches.
    let tickets: Vec<_> =
        [&healthy, &poison, &healthy, &poison, &healthy].iter().map(|q| server.submit((*q).clone()).unwrap()).collect();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();

    for (i, response) in responses.iter().enumerate() {
        if i % 2 == 0 {
            let served = response.as_ref().expect("healthy request must survive its batch");
            assert_same_estimate(&served.estimate, &reference);
        } else {
            assert_eq!(response.as_ref().unwrap_err(), &ServeError::Panicked);
        }
    }

    // The worker survived every panic and still drains new work.
    assert_same_estimate(&server.estimate(&healthy).unwrap().estimate, &reference);
    let metrics = server.shutdown();
    assert_eq!(metrics.accepted, 7);
    assert_eq!(metrics.completed(), 7, "no accepted request may be lost to a panic");
    assert_eq!(metrics.failed, 2);
    assert_eq!(metrics.served, 5);
}
