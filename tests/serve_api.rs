//! Integration tests for the `naru-serve` worker-pool subsystem, driven
//! through the facade crate the way a downstream user would.
//!
//! Covers the serving acceptance properties:
//! * served estimates are **bit-identical** to direct sequential `Session`
//!   evaluation, for a 1-worker server and a multi-worker micro-batching
//!   server alike;
//! * queue saturation surfaces a typed [`ServeError::Overloaded`] — not a
//!   panic, not a silent drop;
//! * graceful shutdown drains every accepted request;
//! * per-query estimator rejections come back as typed
//!   [`ServeError::Estimate`] values without killing the worker.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use naru::core::{ConditionalDensity, Engine, IndependentDensity, OracleDensity};
use naru::data::synthetic::correlated_pair;
use naru::prelude::*;
use naru::serve::{DegradePolicy, ServeConfig, ServeError, Server, SubmitOptions};
use naru::tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

// --- a gated density so tests control exactly when workers make progress --

#[derive(Default)]
struct GateState {
    open: bool,
    entered: usize,
}

/// Blocks density evaluation until opened, and counts how many estimates
/// have started, so tests can hold a worker mid-request deterministically.
#[derive(Default)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl Gate {
    fn enter(&self) {
        let mut state = self.state.lock().unwrap();
        state.entered += 1;
        self.cv.notify_all();
        while !state.open {
            state = self.cv.wait(state).unwrap();
        }
    }

    fn open(&self) {
        self.state.lock().unwrap().open = true;
        self.cv.notify_all();
    }

    fn wait_entered(&self, n: usize) {
        let mut state = self.state.lock().unwrap();
        while state.entered < n {
            state = self.cv.wait(state).unwrap();
        }
    }
}

/// A uniform density whose first-column evaluation parks on the gate.
struct GatedDensity {
    inner: IndependentDensity,
    gate: Arc<Gate>,
}

impl GatedDensity {
    fn engine(gate: Arc<Gate>) -> Engine {
        let inner = IndependentDensity::uniform(&[6, 4]);
        Engine::new(Self { inner, gate }, 1_000).with_samples(16)
    }
}

impl ConditionalDensity for GatedDensity {
    fn num_columns(&self) -> usize {
        self.inner.num_columns()
    }

    fn domain_sizes(&self) -> &[usize] {
        self.inner.domain_sizes()
    }

    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        if col == 0 {
            // One estimate = one col-0 batch evaluation, so `entered`
            // counts requests that reached a worker.
            self.gate.enter();
        }
        self.inner.conditionals(tuples, col)
    }
}

/// A density that panics when asked for column 1's conditionals — queries
/// filtering only column 0 never reach it, so a mixed batch has both
/// poisoning and healthy requests.
struct PanickingDensity {
    inner: IndependentDensity,
}

impl PanickingDensity {
    fn engine() -> Engine {
        Engine::new(Self { inner: IndependentDensity::uniform(&[6, 4]) }, 1_000).with_samples(16)
    }
}

impl ConditionalDensity for PanickingDensity {
    fn num_columns(&self) -> usize {
        self.inner.num_columns()
    }

    fn domain_sizes(&self) -> &[usize] {
        self.inner.domain_sizes()
    }

    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        assert!(col != 1, "synthetic model failure on column 1");
        self.inner.conditionals(tuples, col)
    }
}

/// A gated density that additionally records the column index of every
/// conditionals evaluation, so tests can observe the exact order in which
/// the worker executed queued requests.
struct RecordingDensity {
    inner: IndependentDensity,
    gate: Arc<Gate>,
    events: Arc<Mutex<Vec<usize>>>,
}

impl RecordingDensity {
    fn engine(gate: Arc<Gate>, events: Arc<Mutex<Vec<usize>>>) -> Engine {
        let inner = IndependentDensity::uniform(&[6, 4]);
        Engine::new(Self { inner, gate, events }, 1_000).with_samples(16)
    }
}

impl ConditionalDensity for RecordingDensity {
    fn num_columns(&self) -> usize {
        self.inner.num_columns()
    }

    fn domain_sizes(&self) -> &[usize] {
        self.inner.domain_sizes()
    }

    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        self.events.lock().unwrap().push(col);
        if col == 0 {
            self.gate.enter();
        }
        self.inner.conditionals(tuples, col)
    }
}

// --- helpers --------------------------------------------------------------

fn oracle_engine() -> (Engine, Vec<Query>) {
    let table = correlated_pair(1500, 6, 0.9, 11);
    let engine = Engine::new(OracleDensity::new(&table), table.num_rows() as u64).with_samples(200);
    let mut rng = StdRng::seed_from_u64(31);
    let workload = naru::query::generate_workload(
        &table,
        &naru::query::WorkloadConfig { min_filters: 1, max_filters: 2, ..Default::default() },
        12,
        &mut rng,
    );
    let queries = workload.into_iter().map(|lq| lq.query).collect();
    (engine, queries)
}

fn sequential_reference(engine: &Engine, queries: &[Query]) -> Vec<Estimate> {
    let mut session = engine.session();
    queries.iter().map(|q| session.estimate(q).expect("valid query")).collect()
}

fn assert_same_estimate(served: &Estimate, reference: &Estimate) {
    // Bit-for-bit: same selectivity, same cardinality, same surviving
    // sample paths. (wall_time legitimately differs, so no whole-struct
    // equality.)
    assert_eq!(served.selectivity, reference.selectivity);
    assert_eq!(served.estimated_rows, reference.estimated_rows);
    assert_eq!(served.live_paths, reference.live_paths);
}

// --- parity ---------------------------------------------------------------

#[test]
fn single_worker_server_is_bit_identical_to_sequential_session() {
    let (engine, queries) = oracle_engine();
    let reference = sequential_reference(&engine, &queries);

    let server = Server::start(engine, ServeConfig::default().with_workers(1).with_max_batch(1)).unwrap();
    let tickets: Vec<_> = queries.iter().map(|q| server.submit(q.clone()).unwrap()).collect();
    for (ticket, expected) in tickets.into_iter().zip(&reference) {
        let served = ticket.wait().expect("valid query");
        assert_same_estimate(&served.estimate, expected);
        assert_eq!(served.stats.worker, 0);
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.accepted, queries.len() as u64);
    assert_eq!(metrics.served, queries.len() as u64);
}

#[test]
fn multi_worker_micro_batching_server_is_bit_identical_to_sequential_session() {
    let (engine, queries) = oracle_engine();
    let reference = sequential_reference(&engine, &queries);

    let config = ServeConfig::default().with_workers(4).with_max_batch(3).with_queue_capacity(64);
    let server = Server::start(engine, config).unwrap();
    assert_eq!(server.num_workers(), 4);

    // Submit everything up front so workers actually drain micro-batches,
    // then wait: scheduling and batch boundaries must not affect results.
    let tickets: Vec<_> = queries.iter().map(|q| server.submit(q.clone()).unwrap()).collect();
    for (ticket, expected) in tickets.into_iter().zip(&reference) {
        let served = ticket.wait().expect("valid query");
        assert_same_estimate(&served.estimate, expected);
        assert!(served.stats.worker < 4);
        assert!((1..=3).contains(&served.stats.batch_size));
        assert_eq!(served.stats.execution, served.estimate.wall_time);
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.served, queries.len() as u64);
    assert!(metrics.batches <= queries.len() as u64, "batches cannot outnumber requests");
}

#[test]
fn concurrent_clients_all_get_exact_answers() {
    let (engine, queries) = oracle_engine();
    let reference = sequential_reference(&engine, &queries);

    let server = Server::start(engine, ServeConfig::default().with_workers(2).with_max_batch(4)).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let server = &server;
            let queries = &queries;
            let reference = &reference;
            scope.spawn(move || {
                for (q, expected) in queries.iter().zip(reference) {
                    let served = server.estimate(q).expect("valid query");
                    assert_same_estimate(&served.estimate, expected);
                }
            });
        }
    });
    let metrics = server.shutdown();
    assert_eq!(metrics.served, 3 * queries.len() as u64);
}

// --- admission control ----------------------------------------------------

#[test]
fn queue_saturation_rejects_with_overloaded_and_recovers() {
    let gate = Arc::new(Gate::default());
    let engine = GatedDensity::engine(Arc::clone(&gate));
    let server = Server::start(
        engine,
        ServeConfig { num_workers: 1, queue_capacity: 2, max_batch: 1, ..ServeConfig::default() },
    )
    .unwrap();
    let q = Query::new(vec![Predicate::le(0, 2)]);

    // First request occupies the worker (parked on the gate)...
    let t1 = server.try_submit(q.clone()).unwrap();
    gate.wait_entered(1);
    // ...the next two fill the bounded queue...
    let t2 = server.try_submit(q.clone()).unwrap();
    let t3 = server.try_submit(q.clone()).unwrap();
    // ...and admission control sheds the overflow as a typed error.
    assert_eq!(server.try_submit(q.clone()).unwrap_err(), ServeError::Overloaded { capacity: 2 });
    assert_eq!(server.queue_len(), 2);

    // A *blocking* submit waits out the saturation instead.
    let blocked = {
        let server = &server;
        let q = q.clone();
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || server.submit(q).map(|t| t.wait()));
            gate.open();
            handle.join().unwrap()
        })
    };
    assert!(blocked.unwrap().is_ok(), "blocking submit must be admitted once the queue drains");

    for ticket in [t1, t2, t3] {
        assert!(ticket.wait().is_ok(), "accepted requests must be served, not dropped");
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.accepted, 4);
    assert_eq!(metrics.rejected, 1);
    assert_eq!(metrics.served, 4);
}

#[test]
fn cancelled_tickets_release_their_queue_slot_at_the_dequeue_boundary() {
    let gate = Arc::new(Gate::default());
    let engine = GatedDensity::engine(Arc::clone(&gate));
    let server = Server::start(
        engine,
        ServeConfig { num_workers: 1, queue_capacity: 1, max_batch: 1, ..ServeConfig::default() },
    )
    .unwrap();
    let q = Query::new(vec![Predicate::le(0, 2)]);

    // Head request occupies the single worker; the next fills the queue.
    let head = server.try_submit(q.clone()).unwrap();
    gate.wait_entered(1);
    let doomed = server.try_submit(q.clone()).unwrap();
    assert_eq!(server.try_submit(q.clone()).unwrap_err(), ServeError::Overloaded { capacity: 1 });

    // Cancellation only raises the request's flag — the slot itself is
    // reclaimed when the worker reaches the request and skips it, so an
    // immediate try_submit still sees a full queue.
    doomed.cancel();
    assert_eq!(server.try_submit(q.clone()).unwrap_err(), ServeError::Overloaded { capacity: 1 });

    // A blocking submit parks on admission; once the gate opens, the worker
    // finishes the head request, skips the cancelled one, and the freed
    // slot admits the waiter without any further nudging.
    let unblocked = {
        let server = &server;
        let q = q.clone();
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || server.submit(q).map(|t| t.wait()));
            gate.open();
            handle.join().unwrap()
        })
    };
    assert!(unblocked.unwrap().is_ok(), "cancelled slot must be reusable once the worker skips it");
    assert!(head.wait().is_ok());

    let metrics = server.shutdown();
    assert_eq!(metrics.accepted, 3);
    assert_eq!(metrics.served, 2);
    assert_eq!(metrics.cancelled, 1);
    assert_eq!(metrics.accounted(), metrics.accepted);
}

// --- graceful shutdown ----------------------------------------------------

#[test]
fn shutdown_drains_every_accepted_request() {
    let gate = Arc::new(Gate::default());
    let engine = GatedDensity::engine(Arc::clone(&gate));
    let server = Server::start(
        engine,
        ServeConfig { num_workers: 2, queue_capacity: 16, max_batch: 4, ..ServeConfig::default() },
    )
    .unwrap();
    let q = Query::new(vec![Predicate::ge(1, 1)]);

    let tickets: Vec<_> = (0..8).map(|_| server.submit(q.clone()).unwrap()).collect();
    gate.wait_entered(1);

    // Admission stops immediately; in-flight and queued work keeps going.
    server.close();
    assert_eq!(server.submit(q.clone()).unwrap_err(), ServeError::ShuttingDown);
    assert_eq!(server.try_submit(q.clone()).unwrap_err(), ServeError::ShuttingDown);

    gate.open();
    for ticket in tickets {
        assert!(ticket.wait().is_ok(), "accepted request lost during shutdown");
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.accepted, 8);
    assert_eq!(metrics.completed(), 8);
    assert_eq!(metrics.served, 8);
}

// --- priority scheduling ----------------------------------------------------

#[test]
fn interactive_requests_overtake_earlier_best_effort_submissions() {
    let gate = Arc::new(Gate::default());
    let events = Arc::new(Mutex::new(Vec::new()));
    let engine = RecordingDensity::engine(Arc::clone(&gate), Arc::clone(&events));
    let server = Server::start(
        engine,
        ServeConfig { num_workers: 1, queue_capacity: 16, max_batch: 1, ..ServeConfig::default() },
    )
    .unwrap();
    // Column-0-only queries for the interactive class, column-1 queries
    // for best-effort: the recorded column trace identifies which class
    // each served request belonged to. Every query is *distinct* so the
    // session's prefix memo cannot answer any of them without touching
    // the density (identical repeats would be memo hits with no trace).
    let interactive_qs = [Query::new(vec![Predicate::le(0, 2)]), Query::new(vec![Predicate::le(0, 3)])];
    let best_effort_qs = [Query::new(vec![Predicate::ge(1, 1)]), Query::new(vec![Predicate::le(1, 2)])];

    // Park the worker on a head request, then enqueue best-effort work
    // *before* interactive work: dequeue order must invert submission
    // order, not preserve it.
    let head = server.submit(Query::new(vec![Predicate::le(0, 1)])).unwrap();
    gate.wait_entered(1);
    let best_effort: Vec<_> =
        best_effort_qs.iter().map(|q| server.submit_with(q.clone(), SubmitOptions::best_effort()).unwrap()).collect();
    let interactive: Vec<_> =
        interactive_qs.iter().map(|q| server.submit_with(q.clone(), SubmitOptions::interactive()).unwrap()).collect();

    gate.open();
    for ticket in interactive.into_iter().chain(best_effort).chain([head]) {
        ticket.wait().expect("valid query");
    }

    // Head request [0], both interactive walks [0], then the best-effort
    // pair: the first re-walks column 0 (its unfiltered constraint differs
    // from the memoized interactive prefix) then column 1; the second
    // shares that unfiltered prefix and only walks column 1. All column-0
    // interactive work strictly precedes any column-1 best-effort work, so
    // the interactive lane drained first.
    assert_eq!(*events.lock().unwrap(), vec![0, 0, 0, 0, 1, 1]);
    let metrics = server.shutdown();
    assert_eq!(metrics.served, 5);
    assert_eq!(metrics.accounted(), metrics.accepted);
}

// --- graceful degradation ---------------------------------------------------

#[test]
fn deadline_pressure_degrades_and_degraded_answers_are_never_cached() {
    let engine = Engine::new(IndependentDensity::uniform(&[8, 4]), 10_000).with_samples(64);
    // Budgets far above any real wall time make the routing deterministic:
    // a 10 s deadline is comfortably live at dequeue time but falls below
    // the 60 s sketch budget, so the request must take the sketch rung.
    let policy = DegradePolicy::default()
        .with_full_walk_budget(Duration::from_secs(120))
        .with_sketch_budget(Duration::from_secs(60));
    let config = ServeConfig::default().with_workers(1).with_cache_capacity(8).with_degrade(policy);
    let server = Server::start(engine, config).unwrap();
    let query = Query::new(vec![Predicate::le(0, 5), Predicate::ge(1, 1)]);

    let degraded = server
        .estimate_with(&query, SubmitOptions::default().deadline_within(Duration::from_secs(10)))
        .expect("degraded, not failed");
    assert_eq!(degraded.estimate.provenance, Provenance::Degraded);

    // The degraded answer must not have been cached: the same query served
    // without a deadline recomputes at full quality...
    let fresh = server.estimate(&query).unwrap();
    assert_ne!(fresh.estimate.provenance, Provenance::CacheHit);
    assert_ne!(fresh.estimate.provenance, Provenance::Degraded);

    // ...and *that* answer is what later hits the cache.
    let hit = server.estimate(&query).unwrap();
    assert_eq!(hit.estimate.provenance, Provenance::CacheHit);
    assert_eq!(hit.estimate.selectivity, fresh.estimate.selectivity);

    let metrics = server.shutdown();
    assert_eq!(metrics.served, 2, "the cache hit never reaches the queue");
    assert_eq!(metrics.degraded_served, 1);
    assert_eq!(metrics.cache_hits, 1);
    assert_eq!(metrics.accounted(), metrics.accepted);
}

// --- per-request failures -------------------------------------------------

#[test]
fn estimator_rejections_are_typed_and_do_not_kill_workers() {
    let (engine, queries) = oracle_engine();
    let reference = sequential_reference(&engine, &queries);
    let server = Server::start(engine, ServeConfig::default().with_workers(2).with_max_batch(2)).unwrap();

    let bad = Query::new(vec![Predicate::eq(42, 0)]);
    let err = server.estimate(&bad).unwrap_err();
    assert_eq!(err, ServeError::Estimate(EstimateError::ColumnOutOfRange { column: 42, num_columns: 2 }));

    // The pool keeps serving exact answers afterwards.
    for (q, expected) in queries.iter().zip(&reference) {
        assert_same_estimate(&server.estimate(q).unwrap().estimate, expected);
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.failed, 1);
    assert_eq!(metrics.served, queries.len() as u64);
}

#[test]
fn estimator_panics_are_contained_per_request() {
    let server =
        Server::start(PanickingDensity::engine(), ServeConfig::default().with_workers(1).with_max_batch(8)).unwrap();
    let healthy = Query::new(vec![Predicate::le(0, 2)]); // walks column 0 only
    let poison = Query::new(vec![Predicate::ge(1, 1)]); // walks through column 1

    let reference = server.estimate(&healthy).expect("healthy query").estimate;

    // Queue a mixed burst so poisoning and healthy requests share batches.
    let tickets: Vec<_> =
        [&healthy, &poison, &healthy, &poison, &healthy].iter().map(|q| server.submit((*q).clone()).unwrap()).collect();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();

    for (i, response) in responses.iter().enumerate() {
        if i % 2 == 0 {
            let served = response.as_ref().expect("healthy request must survive its batch");
            assert_same_estimate(&served.estimate, &reference);
        } else {
            assert_eq!(response.as_ref().unwrap_err(), &ServeError::Panicked);
        }
    }

    // The worker survived every panic and still drains new work.
    assert_same_estimate(&server.estimate(&healthy).unwrap().estimate, &reference);
    let metrics = server.shutdown();
    assert_eq!(metrics.accepted, 7);
    assert_eq!(metrics.completed(), 7, "no accepted request may be lost to a panic");
    assert_eq!(metrics.failed, 2);
    assert_eq!(metrics.served, 5);
}
