//! Property-based tests over the core invariants of the system, spanning
//! crates: dictionary encoding, predicate algebra, the q-error metric,
//! probability outputs of density models, and the unbiasedness of
//! progressive sampling against exact enumeration.

use naru::core::{enumerate_exact, IndependentDensity, OracleDensity, ProgressiveSampler, SamplerConfig};
use naru::data::{Column, Table, Value};
use naru::query::{q_error, ColumnConstraint, Op, Predicate, Query, SelectivityBucket};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dictionary encoding round-trips every value and preserves order.
    #[test]
    fn dictionary_round_trips(values in proptest::collection::vec(-500i64..500, 1..200)) {
        let vals: Vec<Value> = values.iter().map(|&v| Value::Int(v)).collect();
        let col = Column::from_values("c", &vals);
        for v in &vals {
            let id = col.encode(v).expect("present value must encode");
            prop_assert_eq!(col.decode(id), v);
        }
        // Order preservation: ids sorted the same way as values.
        for w in col.domain().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// q-error is symmetric, at least 1, and multiplicative in the ratio.
    #[test]
    fn q_error_properties(est in 0.0f64..1e7, act in 0.0f64..1e7) {
        let e = q_error(est, act);
        prop_assert!(e >= 1.0);
        prop_assert!((q_error(act, est) - e).abs() < 1e-9);
        prop_assert!((q_error(est.max(1.0) * 10.0, act) - q_error(est.max(1.0), act) * 10.0).abs() / e < 10.0);
    }

    /// Selectivity buckets partition [0, 1]: every value falls in exactly one.
    #[test]
    fn buckets_partition_unit_interval(sel in 0.0f64..=1.0) {
        let bucket = SelectivityBucket::classify(sel);
        let count = SelectivityBucket::ALL.iter().filter(|&&b| b == bucket).count();
        prop_assert_eq!(count, 1);
    }

    /// Constraint intersection equals logical AND of membership, and `count`
    /// equals the number of matching ids, for arbitrary range/point pairs.
    #[test]
    fn constraint_algebra(
        domain in 1usize..60,
        a_lo in 0u32..60, a_hi in 0u32..60,
        b in 0u32..60,
        use_exclude in proptest::bool::ANY,
    ) {
        let a = ColumnConstraint::Range { lo: a_lo.min(a_hi), hi: a_lo.max(a_hi) };
        let bc = if use_exclude { ColumnConstraint::Exclude(b) } else { ColumnConstraint::Range { lo: b, hi: b } };
        let inter = a.intersect(&bc);
        let mut expected = 0u64;
        for id in 0..domain as u32 {
            let both = a.matches(id) && bc.matches(id);
            prop_assert_eq!(inter.matches(id), both);
            if inter.matches(id) { expected += 1; }
        }
        prop_assert_eq!(inter.count(domain), expected);
    }

    /// A query's region size equals the product of per-column allowed counts
    /// and matching a random row implies the row is inside the region.
    #[test]
    fn query_region_consistency(
        ids in proptest::collection::vec(0u32..8, 3),
        lo in 0u32..8, hi in 0u32..8,
    ) {
        let table = Table::new("t", vec![
            Column::from_ids("a", vec![ids[0]], 8),
            Column::from_ids("b", vec![ids[1]], 8),
            Column::from_ids("c", vec![ids[2]], 8),
        ]);
        let q = Query::new(vec![
            Predicate::between(0, lo.min(hi), lo.max(hi)),
            Predicate::from_op(1, Op::Ge, 2),
        ]);
        let schema = table.schema();
        let expected: f64 = q.constraints(3).iter().enumerate()
            .map(|(i, c)| c.count(schema.domain_size(i)) as f64)
            .product();
        prop_assert_eq!(q.region_size(&schema), expected);
        if q.matches_row(&[ids[0], ids[1], ids[2]]) {
            prop_assert!(q.constraints(3).iter().zip([ids[0], ids[1], ids[2]]).all(|(c, id)| c.matches(id)));
        }
    }

    /// Progressive sampling over an independent density is exact for
    /// arbitrary marginals and range queries (zero-variance case).
    #[test]
    fn progressive_sampling_exact_on_independent_densities(
        weights_a in proptest::collection::vec(0.01f32..1.0, 4),
        weights_b in proptest::collection::vec(0.01f32..1.0, 6),
        a_hi in 0u32..4, b_lo in 0u32..6,
    ) {
        let norm = |w: &[f32]| {
            let s: f32 = w.iter().sum();
            w.iter().map(|x| x / s).collect::<Vec<f32>>()
        };
        let marg_a = norm(&weights_a);
        let marg_b = norm(&weights_b);
        let expected: f64 = marg_a.iter().take(a_hi as usize + 1).map(|&p| p as f64).sum::<f64>()
            * marg_b.iter().skip(b_lo as usize).map(|&p| p as f64).sum::<f64>();
        let density = IndependentDensity::new(vec![marg_a, marg_b]);
        let q = Query::new(vec![Predicate::le(0, a_hi), Predicate::ge(1, b_lo)]);
        let sampler = ProgressiveSampler::new(SamplerConfig { num_samples: 32, seed: 0 });
        let est = sampler.estimate(&density, &q.constraints(2));
        prop_assert!((est - expected).abs() < 1e-4, "est {} vs expected {}", est, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On randomly generated small tables, progressive sampling with many
    /// paths stays close to exact enumeration (unbiasedness, Theorem 1), and
    /// enumeration over an oracle equals the true selectivity.
    #[test]
    fn sampling_close_to_enumeration_on_random_tables(
        rows in proptest::collection::vec((0u32..5, 0u32..4, 0u32..3), 20..120),
        a_hi in 0u32..5, b_lo in 0u32..4, c_eq in 0u32..3,
    ) {
        let table = Table::new("t", vec![
            Column::from_ids("a", rows.iter().map(|r| r.0).collect(), 5),
            Column::from_ids("b", rows.iter().map(|r| r.1).collect(), 4),
            Column::from_ids("c", rows.iter().map(|r| r.2).collect(), 3),
        ]);
        let oracle = OracleDensity::new(&table);
        let q = Query::new(vec![
            Predicate::le(0, a_hi),
            Predicate::ge(1, b_lo),
            Predicate::eq(2, c_eq),
        ]);
        let constraints = q.constraints(3);
        let exact = enumerate_exact(&oracle, &constraints, 10_000).expect("tiny region").selectivity;
        let truth = naru::query::true_selectivity(&table, &q);
        prop_assert!((exact - truth).abs() < 1e-5, "oracle enumeration {} vs truth {}", exact, truth);
        let sampled = ProgressiveSampler::new(SamplerConfig { num_samples: 800, seed: 1 })
            .estimate(&oracle, &constraints);
        prop_assert!((sampled - exact).abs() < 0.05, "sampled {} vs exact {}", sampled, exact);
    }
}
