//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace builds offline, so the benchmarking surface it uses is
//! vendored: `Criterion`, `benchmark_group` with `sample_size` /
//! `throughput` / `bench_function` / `bench_with_input` / `finish`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark runs one
//! warm-up iteration followed by `sample_size` timed iterations and prints
//! the mean wall-clock time per iteration (plus throughput when configured).
//! That is enough to compare kernels locally; it makes no outlier analysis
//! or regression claims.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, e.g. `matmul/a_bt/64`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Units for reporting how much work one iteration performs.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs closures and measures them.
#[derive(Debug, Default)]
pub struct Bencher {
    last_mean: Option<Duration>,
    iters: u32,
}

impl Bencher {
    /// Times `sample` iterations of `routine` (after one warm-up call) and
    /// records the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        let iters = self.iters.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.last_mean = Some(start.elapsed() / iters);
    }
}

fn report(id: &str, mean: Option<Duration>, throughput: Option<Throughput>) {
    let Some(mean) = mean else {
        println!("{id:<48} (no measurement)");
        return;
    };
    let per_iter = mean.as_secs_f64();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("{id:<48} {:>12.3} us/iter{rate}", per_iter * 1e6);
}

/// A named set of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        let mut bencher = Bencher { last_mean: None, iters: self.sample_size };
        f(&mut bencher);
        report(&id, bencher.last_mean, self.throughput);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        let mut bencher = Bencher { last_mean: None, iters: self.sample_size };
        f(&mut bencher, input);
        report(&id, bencher.last_mean, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: u32,
}

impl Criterion {
    pub fn new() -> Self {
        Criterion { default_sample_size: 10 }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { last_mean: None, iters: self.default_sample_size.max(1) };
        f(&mut bencher);
        report(name, bencher.last_mean, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.max(1);
        BenchmarkGroup { name: name.into(), sample_size, throughput: None, _criterion: self }
    }
}

/// Restates its argument; kept for API compatibility with real criterion.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
