//! A minimal, dependency-free stand-in for the `rand` crate (0.8-era API).
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable, so the exact subset of `rand` the code uses is vendored here:
//!
//! * [`Rng`] with `gen`, `gen_range` (half-open and inclusive ranges over the
//!   common integer and float types), and `gen_bool`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], a deterministic xoshiro256** generator,
//! * [`seq::SliceRandom`] with `choose` and `shuffle`.
//!
//! The generator is fully deterministic for a given seed, which is exactly
//! what the test suites and experiments want; there is no OS entropy source.

pub mod rngs;
pub mod seq;

/// The low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (the analogue of `rand`'s `Standard`): floats in `[0, 1)`, full-range
/// integers, and fair booleans.
pub trait SampleStandard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that can produce a uniform sample (the analogue of `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via the multiply-shift reduction. The bias is
/// at most `span / 2^64`, far below anything the statistical tests resolve.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

// `$w` is a widening type whose subtraction computes the span exactly
// (modular arithmetic via the final `as u64` stays correct for the 64-bit
// types); naive `end.wrapping_sub(start) as u64` would sign-extend wrapped
// spans of the narrow signed types, e.g. -100i8..100 has span 200, which
// wraps to -56i8 and sign-extends to nearly 2^64.
macro_rules! impl_int_range {
    ($($t:ty => $w:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $w).wrapping_sub(self.start as $w) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as $w).wrapping_sub(lo as $w) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u = <$t as SampleStandard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The user-facing generator interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators. Only `seed_from_u64` is provided; there is no OS
/// entropy in the offline build.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}
