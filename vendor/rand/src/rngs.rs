//! Concrete generators. `StdRng` is xoshiro256** seeded through splitmix64 —
//! deterministic, fast, and statistically solid for testing purposes.

use crate::{RngCore, SeedableRng};

/// A deterministic xoshiro256** generator, standing in for `rand::rngs::StdRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [splitmix64(&mut state), splitmix64(&mut state), splitmix64(&mut state), splitmix64(&mut state)];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn signed_ranges_stay_in_bounds() {
        // Regression: spans exceeding the positive max of a narrow signed
        // type must not sign-extend (e.g. -100i8..100 has span 200).
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..2000 {
            let v = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v), "out of range: {v}");
            seen_neg |= v < -50;
            seen_pos |= v > 50;
            let w = rng.gen_range(-1000i32..=1000);
            assert!((-1000..=1000).contains(&w), "out of range: {w}");
            let full = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = full; // any value is valid; just must not panic
        }
        assert!(seen_neg && seen_pos, "both halves of the span must be reachable");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
