//! Slice helpers: `choose` and Fisher-Yates `shuffle`.

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// Returns a uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher-Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_hits_every_element() {
        let mut rng = StdRng::seed_from_u64(12);
        let v = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
