//! The [`Strategy`] trait and the combinators the workspace uses.

use std::fmt::Debug;
use std::rc::Rc;

use crate::test_runner::TestRng;
use rand::Rng;

/// A generator of test values. Unlike real proptest there is no shrinking:
/// `generate` produces one value from the given deterministic RNG.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from it, and
    /// samples that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: Debug,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A uniform choice among several strategies with the same value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
