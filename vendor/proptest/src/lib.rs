//! A minimal, deterministic stand-in for the `proptest` crate.
//!
//! This workspace builds offline, so the subset of proptest it uses is
//! vendored: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, [`collection::vec`],
//! [`bool::ANY`](crate::bool::ANY), `Just`, `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, on purpose:
//!
//! * **Deterministic**: each test's RNG is seeded from a hash of the test
//!   name and the case index, so tier-1 runs are reproducible bit-for-bit.
//!   There is no environment-variable seed override and no persistence file.
//! * **No shrinking**: a failing case reports the generated inputs verbatim
//!   (every strategy value is `Debug`) instead of minimizing them.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Fails the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assertion failed: `left != right`\n  both: `{:?}`", left);
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in proptest::collection::vec(0i64..9, 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)+
                    s
                };
                let outcome = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}\ninputs:\n{}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        err,
                        inputs
                    );
                }
            }
        }
    )*};
}
