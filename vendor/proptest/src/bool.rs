//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// The strategy behind [`ANY`]: a fair coin.
#[derive(Debug, Clone, Copy)]
pub struct Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

/// Generates `true` and `false` with equal probability.
pub const ANY: Any = Any;
