//! Collection strategies: `vec(element, size)`.

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Acceptable size arguments for [`vec`]: an exact length, a half-open range,
/// or an inclusive range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { lo: len, hi_inclusive: len }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
