//! Configuration, the deterministic per-case RNG, and the error type used by
//! the `prop_assert*` macros.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies. An alias so test code can name it.
pub type TestRng = StdRng;

/// Run configuration. Only `cases` matters for this shim; construction mirrors
/// real proptest (`ProptestConfig::with_cases(n)` or struct update syntax over
/// `Default`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Builds the deterministic RNG for one case of one test: FNV-1a over the
/// test name, mixed with the case index. Stable across runs and platforms so
/// tier-1 results are reproducible.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}
