//! Exact query execution by scanning.
//!
//! The paper obtains ground-truth selectivities by running the generated
//! queries against Postgres; here the equivalent is a straight scan over
//! the dictionary-encoded table. The scan is also reused by the `Sample`
//! baseline (scanning its materialized sample instead of the full table).

use naru_data::Table;

use crate::estimate::EstimateError;
use crate::query::Query;

/// Number of rows of `table` satisfying `query`.
pub fn count_matches(table: &Table, query: &Query) -> u64 {
    let constraints = query.constraints(table.num_columns());
    // Scan column-at-a-time over the filtered columns only: cheaper than
    // materializing each row when most columns are wildcards.
    let filtered: Vec<(usize, &crate::predicate::ColumnConstraint)> =
        constraints.iter().enumerate().filter(|(_, c)| !matches!(c, crate::predicate::ColumnConstraint::Any)).collect();
    if filtered.is_empty() {
        return table.num_rows() as u64;
    }
    let mut count = 0u64;
    'rows: for row in 0..table.num_rows() {
        for (col, constraint) in &filtered {
            if !constraint.matches(table.column(*col).id_at(row)) {
                continue 'rows;
            }
        }
        count += 1;
    }
    count
}

/// Fallible variant of [`count_matches`]: a predicate addressing a column
/// outside the table becomes an [`EstimateError::ColumnOutOfRange`] instead
/// of a panic. Scan-based estimators use this to validate requests.
pub fn try_count_matches(table: &Table, query: &Query) -> Result<u64, EstimateError> {
    query.validate_columns(table.num_columns())?;
    Ok(count_matches(table, query))
}

/// True selectivity of `query` against `table` (fraction of rows).
pub fn true_selectivity(table: &Table, query: &Query) -> f64 {
    if table.num_rows() == 0 {
        return 0.0;
    }
    count_matches(table, query) as f64 / table.num_rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use naru_data::Column;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::from_ids("a", vec![0, 0, 1, 1, 2, 2, 2, 2], 3),
                Column::from_ids("b", vec![0, 1, 0, 1, 0, 1, 1, 1], 2),
            ],
        )
    }

    #[test]
    fn counts_match_hand_computation() {
        let t = table();
        assert_eq!(count_matches(&t, &Query::all()), 8);
        assert_eq!(count_matches(&t, &Query::new(vec![Predicate::eq(0, 2)])), 4);
        assert_eq!(count_matches(&t, &Query::new(vec![Predicate::eq(0, 2), Predicate::eq(1, 1)])), 3);
        assert_eq!(count_matches(&t, &Query::new(vec![Predicate::ge(0, 1), Predicate::eq(1, 0)])), 2);
    }

    #[test]
    fn selectivity_fraction() {
        let t = table();
        let q = Query::new(vec![Predicate::eq(1, 1)]);
        assert!((true_selectivity(&t, &q) - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_region_has_zero_selectivity() {
        let t = table();
        let q = Query::new(vec![Predicate::le(0, 0), Predicate::ge(0, 2)]);
        assert_eq!(count_matches(&t, &q), 0);
    }
}
