//! The line-oriented wire format for queries.
//!
//! The network front end (`naru-net`) speaks a compact, human-typeable
//! text format: one predicate per line, `<column> <op> <literal>` with
//! whitespace-separated tokens over dictionary ids. An empty body is the
//! match-everything query. The grammar covers every [`ColumnConstraint`]
//! shape, so any compiled query round-trips losslessly:
//!
//! ```text
//! line      := column SP op
//! op        := "=" id | "<>" id | "!=" id        ; equality / exclusion
//!            | "<" id | "<=" id | ">" id | ">=" id
//!            | "between" id id                    ; inclusive range
//!            | "in" id ("," id)*                  ; explicit set
//!            | "notin" id ("," id)*               ; everything except a set
//!            | "any"                              ; explicit wildcard
//!            | "empty"                            ; unsatisfiable predicate
//! column    := usize                              ; 0-based column index
//! id        := u32                                ; dictionary id
//! ```
//!
//! Decoding is **bounded and total**: malformed lines surface as typed
//! [`WireError`]s carrying the 1-based line number, never as panics, and
//! [`WireLimits`] caps the predicate count and `in`/`notin` set sizes so a
//! hostile peer cannot make the decoder allocate unboundedly.

use std::fmt;

use crate::predicate::{ColumnConstraint, Op, Predicate};
use crate::query::Query;

/// Decoder caps; both default to generous production values.
#[derive(Debug, Clone, Copy)]
pub struct WireLimits {
    /// Most predicate lines one query may carry.
    pub max_predicates: usize,
    /// Most ids one `in`/`notin` set may enumerate.
    pub max_set_ids: usize,
}

impl Default for WireLimits {
    fn default() -> Self {
        Self { max_predicates: 256, max_set_ids: 4096 }
    }
}

/// Why a wire-format query failed to decode. Every variant carries the
/// 1-based line number of the offending predicate line (except the
/// whole-query size cap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The line does not have the `<column> <op> [args]` shape.
    MissingField {
        /// 1-based line number within the query body.
        line: usize,
    },
    /// The column token is not a non-negative integer.
    BadColumn {
        /// 1-based line number within the query body.
        line: usize,
    },
    /// The operator token is not part of the grammar.
    UnknownOp {
        /// 1-based line number within the query body.
        line: usize,
        /// The unrecognized operator token (truncated to 32 chars).
        op: String,
    },
    /// A literal token is not a `u32` dictionary id.
    BadLiteral {
        /// 1-based line number within the query body.
        line: usize,
    },
    /// The line carries more tokens than its operator consumes.
    TrailingTokens {
        /// 1-based line number within the query body.
        line: usize,
    },
    /// An `in`/`notin` set enumerates more ids than the decoder allows.
    SetTooLarge {
        /// 1-based line number within the query body.
        line: usize,
        /// Number of ids the line tried to enumerate.
        len: usize,
        /// The configured cap ([`WireLimits::max_set_ids`]).
        max: usize,
    },
    /// The body carries more predicate lines than the decoder allows.
    TooManyPredicates {
        /// Number of predicate lines in the body.
        count: usize,
        /// The configured cap ([`WireLimits::max_predicates`]).
        max: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingField { line } => {
                write!(f, "line {line}: expected `<column> <op> [literal]`")
            }
            Self::BadColumn { line } => {
                write!(f, "line {line}: column must be a non-negative integer")
            }
            Self::UnknownOp { line, op } => write!(
                f,
                "line {line}: unknown operator `{op}` (expected =, <>, !=, <, <=, >, >=, between, in, notin, any, empty)"
            ),
            Self::BadLiteral { line } => {
                write!(f, "line {line}: literal must be a u32 dictionary id")
            }
            Self::TrailingTokens { line } => {
                write!(f, "line {line}: unexpected tokens after the literal")
            }
            Self::SetTooLarge { line, len, max } => {
                write!(f, "line {line}: set of {len} ids exceeds the {max}-id limit")
            }
            Self::TooManyPredicates { count, max } => {
                write!(f, "{count} predicate lines exceed the {max}-predicate limit")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl Op {
    /// Parses an operator symbol as written on the wire (the inverse of
    /// [`Op::symbol`], plus the common `!=` alias for `<>`).
    pub fn from_symbol(symbol: &str) -> Option<Op> {
        match symbol {
            "=" => Some(Op::Eq),
            "<>" | "!=" => Some(Op::Neq),
            "<" => Some(Op::Lt),
            "<=" => Some(Op::Le),
            ">" => Some(Op::Gt),
            ">=" => Some(Op::Ge),
            _ => None,
        }
    }
}

/// Renders one predicate as its wire line (no trailing newline).
///
/// Every [`ColumnConstraint`] shape has a line form, so encoding is total;
/// [`decode_query`] maps each line back to a predicate with exactly the
/// same constraint (see the round-trip tests).
pub fn encode_predicate(predicate: &Predicate) -> String {
    let col = predicate.column;
    match &predicate.constraint {
        ColumnConstraint::Any => format!("{col} any"),
        ColumnConstraint::Empty => format!("{col} empty"),
        ColumnConstraint::Range { lo, hi } if lo == hi => format!("{col} = {lo}"),
        ColumnConstraint::Range { lo, hi } if *hi == u32::MAX => format!("{col} >= {lo}"),
        ColumnConstraint::Range { lo: 0, hi } => format!("{col} <= {hi}"),
        ColumnConstraint::Range { lo, hi } => format!("{col} between {lo} {hi}"),
        ColumnConstraint::Set(ids) => format!("{col} in {}", join_ids(ids)),
        ColumnConstraint::Exclude(id) => format!("{col} <> {id}"),
        ColumnConstraint::ExcludeSet(ids) => format!("{col} notin {}", join_ids(ids)),
    }
}

/// Renders a whole query, one predicate line per predicate, each terminated
/// by `\n`. The match-everything query encodes as the empty string.
pub fn encode_query(query: &Query) -> String {
    let mut out = String::new();
    for predicate in query.predicates() {
        out.push_str(&encode_predicate(predicate));
        out.push('\n');
    }
    out
}

fn join_ids(ids: &[u32]) -> String {
    let mut out = String::new();
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.to_string());
    }
    out
}

/// Decodes a wire body into a [`Query`] under the default [`WireLimits`].
pub fn decode_query(body: &str) -> Result<Query, WireError> {
    decode_query_with(body, WireLimits::default())
}

/// Decodes a wire body into a [`Query`], enforcing explicit limits. Blank
/// lines and `#`-prefixed comment lines are skipped; everything else must
/// be a predicate line of the grammar.
pub fn decode_query_with(body: &str, limits: WireLimits) -> Result<Query, WireError> {
    let mut predicates = Vec::new();
    let mut line_no = 0usize;
    for raw in body.lines() {
        line_no += 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if predicates.len() >= limits.max_predicates {
            return Err(WireError::TooManyPredicates { count: predicates.len() + 1, max: limits.max_predicates });
        }
        predicates.push(decode_line(line, line_no, limits)?);
    }
    Ok(Query::new(predicates))
}

fn decode_line(line: &str, line_no: usize, limits: WireLimits) -> Result<Predicate, WireError> {
    let mut tokens = line.split_whitespace();
    let column: usize = tokens
        .next()
        .ok_or(WireError::MissingField { line: line_no })?
        .parse()
        .map_err(|_| WireError::BadColumn { line: line_no })?;
    let op = tokens.next().ok_or(WireError::MissingField { line: line_no })?;

    let parse_id = |tokens: &mut std::str::SplitWhitespace<'_>| -> Result<u32, WireError> {
        tokens
            .next()
            .ok_or(WireError::MissingField { line: line_no })?
            .parse::<u32>()
            .map_err(|_| WireError::BadLiteral { line: line_no })
    };

    let predicate = match op {
        "any" => Predicate { column, constraint: ColumnConstraint::Any },
        "empty" => Predicate { column, constraint: ColumnConstraint::Empty },
        "between" => {
            let lo = parse_id(&mut tokens)?;
            let hi = parse_id(&mut tokens)?;
            Predicate::between(column, lo, hi)
        }
        "in" | "notin" => {
            let ids = parse_id_set(tokens.next().ok_or(WireError::MissingField { line: line_no })?, line_no, limits)?;
            if op == "in" {
                Predicate::in_set(column, ids)
            } else {
                let mut ids = ids;
                ids.sort_unstable();
                ids.dedup();
                Predicate { column, constraint: ColumnConstraint::ExcludeSet(ids) }
            }
        }
        other => match Op::from_symbol(other) {
            Some(op) => {
                let id = parse_id(&mut tokens)?;
                Predicate::from_op(column, op, id)
            }
            None => {
                return Err(WireError::UnknownOp { line: line_no, op: other.chars().take(32).collect() });
            }
        },
    };
    if tokens.next().is_some() {
        return Err(WireError::TrailingTokens { line: line_no });
    }
    Ok(predicate)
}

fn parse_id_set(csv: &str, line_no: usize, limits: WireLimits) -> Result<Vec<u32>, WireError> {
    let len = csv.split(',').count();
    if len > limits.max_set_ids {
        return Err(WireError::SetTooLarge { line: line_no, len, max: limits.max_set_ids });
    }
    csv.split(',')
        .map(|token| token.trim().parse::<u32>().map_err(|_| WireError::BadLiteral { line: line_no }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_lines_decode_to_the_expected_predicates() {
        let q = decode_query("0 = 5\n1 <= 9\n2 >= 3\n3 <> 7\n").unwrap();
        assert_eq!(
            q.predicates(),
            &[Predicate::eq(0, 5), Predicate::le(1, 9), Predicate::ge(2, 3), Predicate::neq(3, 7)]
        );
        // != is accepted as an alias for <>.
        assert_eq!(decode_query("3 != 7").unwrap().predicates(), &[Predicate::neq(3, 7)]);
        // Strict comparisons go through the same constructors as the API.
        assert_eq!(decode_query("0 < 4").unwrap().predicates(), &[Predicate::lt(0, 4)]);
        assert_eq!(decode_query("0 > 4").unwrap().predicates(), &[Predicate::gt(0, 4)]);
    }

    #[test]
    fn sets_ranges_and_wildcards_decode() {
        let q = decode_query("0 in 5,1,5,3\n1 between 2 9\n2 any\n3 empty\n4 notin 8,2\n").unwrap();
        assert_eq!(q.predicates()[0].constraint, ColumnConstraint::Set(vec![1, 3, 5]));
        assert_eq!(q.predicates()[1].constraint, ColumnConstraint::Range { lo: 2, hi: 9 });
        assert_eq!(q.predicates()[2].constraint, ColumnConstraint::Any);
        assert_eq!(q.predicates()[3].constraint, ColumnConstraint::Empty);
        assert_eq!(q.predicates()[4].constraint, ColumnConstraint::ExcludeSet(vec![2, 8]));
    }

    #[test]
    fn blank_lines_and_comments_are_skipped() {
        let q = decode_query("\n# a comment\n  0 = 1  \n\n").unwrap();
        assert_eq!(q.num_predicates(), 1);
        assert_eq!(decode_query("").unwrap(), Query::all());
        assert_eq!(decode_query("   \n# only a comment\n").unwrap(), Query::all());
    }

    #[test]
    fn every_constraint_shape_round_trips() {
        let predicates = vec![
            Predicate::eq(0, 5),
            Predicate::le(1, 9),
            Predicate::ge(2, 3),
            Predicate::lt(3, 0), // Empty
            Predicate::between(4, 2, 9),
            Predicate::in_set(5, vec![9, 1, 4]),
            Predicate::neq(6, 7),
            Predicate { column: 7, constraint: ColumnConstraint::ExcludeSet(vec![1, 2, 9]) },
            Predicate { column: 8, constraint: ColumnConstraint::Any },
            Predicate::ge(9, 0), // full range, encodes as `>= 0`
        ];
        let query = Query::new(predicates.clone());
        let encoded = encode_query(&query);
        let decoded = decode_query(&encoded).unwrap();
        assert_eq!(decoded.predicates(), predicates.as_slice(), "wire round-trip must be lossless:\n{encoded}");
    }

    #[test]
    fn malformed_lines_surface_typed_errors_with_line_numbers() {
        assert_eq!(decode_query("0 = 1\nnonsense"), Err(WireError::BadColumn { line: 2 }));
        assert_eq!(decode_query("0 = 1\n7"), Err(WireError::MissingField { line: 2 }), "column with no op");
        assert_eq!(decode_query("x = 1"), Err(WireError::BadColumn { line: 1 }));
        assert_eq!(decode_query("0 ~ 1"), Err(WireError::UnknownOp { line: 1, op: "~".into() }));
        assert_eq!(decode_query("0 = hat"), Err(WireError::BadLiteral { line: 1 }));
        assert_eq!(decode_query("0 = 4294967296"), Err(WireError::BadLiteral { line: 1 }), "u32 overflow");
        assert_eq!(decode_query("0 in 1,,3"), Err(WireError::BadLiteral { line: 1 }));
        assert_eq!(decode_query("0 between 1"), Err(WireError::MissingField { line: 1 }));
        assert_eq!(decode_query("0 = 1 2"), Err(WireError::TrailingTokens { line: 1 }));
        assert_eq!(decode_query("0 any 1"), Err(WireError::TrailingTokens { line: 1 }));
        assert_eq!(decode_query("0 ="), Err(WireError::MissingField { line: 1 }));
        // Errors render their line number for the 400 response body.
        let err = decode_query("0 ~ 1").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn limits_bound_predicates_and_set_sizes() {
        let limits = WireLimits { max_predicates: 2, max_set_ids: 3 };
        let body = "0 = 1\n1 = 2\n2 = 3\n";
        assert_eq!(decode_query_with(body, limits), Err(WireError::TooManyPredicates { count: 3, max: 2 }));
        assert_eq!(decode_query_with("0 in 1,2,3,4", limits), Err(WireError::SetTooLarge { line: 1, len: 4, max: 3 }));
        // At the cap is fine.
        assert!(decode_query_with("0 = 1\n1 = 2\n", limits).is_ok());
        assert!(decode_query_with("0 in 1,2,3", limits).is_ok());
    }

    #[test]
    fn op_symbols_round_trip() {
        for op in Op::ALL {
            assert_eq!(Op::from_symbol(op.symbol()), Some(op), "symbol {}", op.symbol());
        }
        assert_eq!(Op::from_symbol("!="), Some(Op::Neq));
        assert_eq!(Op::from_symbol("=="), None);
    }
}
