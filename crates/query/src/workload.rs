//! Workload generation (§6.1.3 of the paper).
//!
//! The generator reproduces the paper's protocol:
//!
//! * the number of (non-wildcard) filters `f` is drawn uniformly from
//!   `[5, 11]` (clamped to the table's column count) — at least five filters
//!   so that the trivially easy very-high-selectivity queries are avoided;
//! * `f` distinct columns are drawn at random;
//! * for columns with domain size ≥ 10 the operator is drawn uniformly from
//!   `{=, ≤, ≥}`; small-domain (categorical) columns always get `=`;
//! * filter literals come from a tuple sampled uniformly from the table, so
//!   they follow the data distribution — except for the *out-of-distribution*
//!   (OOD) workload of Table 5, where literals are drawn uniformly from the
//!   whole domain (and therefore usually match nothing).
//!
//! True selectivities are computed by scanning the table
//! ([`crate::executor::true_selectivity`]), playing the role Postgres plays
//! in the paper.

use naru_data::Table;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::executor::true_selectivity;
use crate::metrics::SelectivityBucket;
use crate::predicate::{Op, Predicate};
use crate::query::Query;

/// How filter literals are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiteralSource {
    /// Literals copied from a random data tuple (the macrobenchmark
    /// setting: queries follow the data distribution).
    FromData,
    /// Literals drawn uniformly from each column's domain (the OOD setting
    /// of Table 5; most such queries have zero true cardinality).
    UniformDomain,
}

/// Configuration of the query generator.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Minimum number of filtered columns (paper: 5).
    pub min_filters: usize,
    /// Maximum number of filtered columns (paper: 11).
    pub max_filters: usize,
    /// Domain-size threshold below which only equality predicates are
    /// placed (paper: 10).
    pub range_domain_threshold: usize,
    /// Where literals come from.
    pub literal_source: LiteralSource,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self { min_filters: 5, max_filters: 11, range_domain_threshold: 10, literal_source: LiteralSource::FromData }
    }
}

impl WorkloadConfig {
    /// The OOD variant used for Table 5.
    pub fn out_of_distribution() -> Self {
        Self { literal_source: LiteralSource::UniformDomain, ..Self::default() }
    }
}

/// A generated query together with its ground truth.
#[derive(Debug, Clone)]
pub struct LabeledQuery {
    /// The query.
    pub query: Query,
    /// True selectivity (fraction of rows).
    pub selectivity: f64,
    /// True cardinality (row count).
    pub cardinality: u64,
}

impl LabeledQuery {
    /// The selectivity bucket this query falls into.
    pub fn bucket(&self) -> SelectivityBucket {
        SelectivityBucket::classify(self.selectivity)
    }
}

/// Generates one query according to the configuration. The query itself is
/// returned without ground truth (use [`generate_workload`] to label).
pub fn generate_query<R: Rng + ?Sized>(table: &Table, config: &WorkloadConfig, rng: &mut R) -> Query {
    let num_cols = table.num_columns();
    let min_f = config.min_filters.min(num_cols).max(1);
    let max_f = config.max_filters.min(num_cols).max(min_f);
    let f = rng.gen_range(min_f..=max_f);

    let mut columns: Vec<usize> = (0..num_cols).collect();
    columns.shuffle(rng);
    columns.truncate(f);

    // Literal source tuple (for the in-distribution setting).
    let tuple_row = rng.gen_range(0..table.num_rows());

    let mut predicates = Vec::with_capacity(f);
    for &col in &columns {
        let domain = table.column(col).domain_size();
        let literal: u32 = match config.literal_source {
            LiteralSource::FromData => table.column(col).id_at(tuple_row),
            LiteralSource::UniformDomain => rng.gen_range(0..domain as u32),
        };
        let op = if domain >= config.range_domain_threshold {
            *[Op::Eq, Op::Le, Op::Ge].choose(rng).expect("non-empty")
        } else {
            Op::Eq
        };
        predicates.push(Predicate::from_op(col, op, literal));
    }
    Query::new(predicates)
}

/// Generates `count` queries and labels each with its true selectivity.
pub fn generate_workload<R: Rng + ?Sized>(
    table: &Table,
    config: &WorkloadConfig,
    count: usize,
    rng: &mut R,
) -> Vec<LabeledQuery> {
    (0..count)
        .map(|_| {
            let query = generate_query(table, config, rng);
            let selectivity = true_selectivity(table, &query);
            let cardinality = (selectivity * table.num_rows() as f64).round() as u64;
            LabeledQuery { query, selectivity, cardinality }
        })
        .collect()
}

/// Splits a labeled workload by selectivity bucket, preserving order —
/// the grouping used by the accuracy tables.
pub fn split_by_bucket(workload: &[LabeledQuery]) -> Vec<(SelectivityBucket, Vec<&LabeledQuery>)> {
    SelectivityBucket::ALL
        .iter()
        .map(|&bucket| {
            let queries = workload.iter().filter(|q| q.bucket() == bucket).collect();
            (bucket, queries)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_data::synthetic::{conviva_a_like, dmv_like};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_queries_respect_filter_count_bounds() {
        let t = dmv_like(2000, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let config = WorkloadConfig::default();
        for _ in 0..50 {
            let q = generate_query(&t, &config, &mut rng);
            let f = q.num_filtered_columns(t.num_columns());
            assert!((5..=11).contains(&f), "got {f} filters");
        }
    }

    #[test]
    fn small_domains_only_get_equality() {
        let t = dmv_like(2000, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let config = WorkloadConfig::default();
        for _ in 0..100 {
            let q = generate_query(&t, &config, &mut rng);
            for p in q.predicates() {
                let domain = t.column(p.column).domain_size();
                if domain < config.range_domain_threshold {
                    // Equality on small domains: constraint is a single id.
                    match &p.constraint {
                        crate::predicate::ColumnConstraint::Range { lo, hi } => assert_eq!(lo, hi),
                        other => panic!("expected point constraint, got {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn in_distribution_queries_have_nonzero_selectivity() {
        // Literals come from actual tuples, so each single predicate is
        // satisfiable; the conjunction usually is too (it contains the
        // generating tuple when all ops are = or ranges include it).
        let t = dmv_like(3000, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let workload = generate_workload(&t, &WorkloadConfig::default(), 30, &mut rng);
        let nonzero = workload.iter().filter(|q| q.cardinality > 0).count();
        assert!(nonzero >= 25, "only {nonzero}/30 queries matched anything");
    }

    #[test]
    fn ood_queries_are_mostly_empty() {
        // Paper: 98% of OOD queries on DMV have zero true cardinality.
        let t = dmv_like(3000, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let workload = generate_workload(&t, &WorkloadConfig::out_of_distribution(), 50, &mut rng);
        let zero = workload.iter().filter(|q| q.cardinality == 0).count();
        assert!(zero > 35, "only {zero}/50 OOD queries were empty");
    }

    #[test]
    fn workload_covers_multiple_buckets() {
        let t = conviva_a_like(3000, 5);
        let mut rng = StdRng::seed_from_u64(5);
        let workload = generate_workload(&t, &WorkloadConfig::default(), 120, &mut rng);
        let buckets = split_by_bucket(&workload);
        assert_eq!(buckets.len(), 3);
        let populated = buckets.iter().filter(|(_, qs)| !qs.is_empty()).count();
        assert!(populated >= 2, "selectivity spectrum too narrow");
        let total: usize = buckets.iter().map(|(_, qs)| qs.len()).sum();
        assert_eq!(total, workload.len());
    }

    #[test]
    fn workload_is_deterministic_given_seed() {
        let t = dmv_like(500, 6);
        let w1 = generate_workload(&t, &WorkloadConfig::default(), 10, &mut StdRng::seed_from_u64(9));
        let w2 = generate_workload(&t, &WorkloadConfig::default(), 10, &mut StdRng::seed_from_u64(9));
        for (a, b) in w1.iter().zip(w2.iter()) {
            assert_eq!(a.query, b.query);
            assert_eq!(a.cardinality, b.cardinality);
        }
    }
}
