//! Accuracy metrics.
//!
//! The paper reports the multiplicative error (q-error) of cardinality
//! estimates, with both the estimate and the truth floored at 1 tuple to
//! guard against division by zero, and presents quantiles (median, 95th,
//! 99th, max) per selectivity bucket. This module implements exactly that
//! reporting so the harness's tables read like Tables 3–5.

use naru_tensor::stats::percentile;

/// Multiplicative error between an estimated and an actual *cardinality*
/// (row counts, not fractions). Both are floored at 1.
pub fn q_error(estimated_cardinality: f64, actual_cardinality: f64) -> f64 {
    let est = estimated_cardinality.max(1.0);
    let act = actual_cardinality.max(1.0);
    if est >= act {
        est / act
    } else {
        act / est
    }
}

/// Convenience: q-error from selectivities and the table row count.
pub fn q_error_from_selectivity(estimated: f64, actual: f64, num_rows: usize) -> f64 {
    q_error(estimated * num_rows as f64, actual * num_rows as f64)
}

/// Convenience: q-error of a rich [`Estimate`] against the true selectivity.
///
/// [`Estimate`]: crate::estimate::Estimate
pub fn q_error_from_estimate(estimate: &crate::estimate::Estimate, actual: f64, num_rows: usize) -> f64 {
    q_error_from_selectivity(estimate.selectivity, actual, num_rows)
}

/// Selectivity buckets used throughout the evaluation (§6.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectivityBucket {
    /// selectivity > 2%
    High,
    /// 0.5% < selectivity ≤ 2%
    Medium,
    /// selectivity ≤ 0.5%
    Low,
}

impl SelectivityBucket {
    /// Buckets a true selectivity (fraction in `[0, 1]`).
    pub fn classify(selectivity: f64) -> Self {
        if selectivity > 0.02 {
            SelectivityBucket::High
        } else if selectivity > 0.005 {
            SelectivityBucket::Medium
        } else {
            SelectivityBucket::Low
        }
    }

    /// Display label matching the paper's table headers.
    pub fn label(&self) -> &'static str {
        match self {
            SelectivityBucket::High => "High ((2%,100%])",
            SelectivityBucket::Medium => "Medium ((0.5%,2%])",
            SelectivityBucket::Low => "Low (<=0.5%)",
        }
    }

    /// All buckets in report order.
    pub const ALL: [SelectivityBucket; 3] =
        [SelectivityBucket::High, SelectivityBucket::Medium, SelectivityBucket::Low];
}

/// Quantile summary of a set of q-errors: median, 95th, 99th, max — the
/// four columns of the paper's accuracy tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorQuantiles {
    /// Number of errors summarized.
    pub count: usize,
    /// 50th percentile.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl ErrorQuantiles {
    /// Summarizes a slice of q-errors. Returns `None` for an empty slice.
    pub fn from_errors(errors: &[f64]) -> Option<Self> {
        if errors.is_empty() {
            return None;
        }
        let max = errors.iter().cloned().fold(f64::MIN, f64::max);
        Some(Self {
            count: errors.len(),
            median: percentile(errors, 50.0),
            p95: percentile(errors, 95.0),
            p99: percentile(errors, 99.0),
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric_and_at_least_one() {
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(5.0, 5.0), 1.0);
    }

    #[test]
    fn q_error_floors_at_one_tuple() {
        // A zero estimate on a 100-tuple truth is a 100x error, not infinity.
        assert_eq!(q_error(0.0, 100.0), 100.0);
        assert_eq!(q_error(100.0, 0.0), 100.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(0.3, 0.7), 1.0);
    }

    #[test]
    fn q_error_from_selectivity_scales_by_rows() {
        let e = q_error_from_selectivity(0.001, 0.01, 10_000);
        assert!((e - 10.0).abs() < 1e-9);
    }

    #[test]
    fn q_error_from_estimate_uses_selectivity() {
        let est = crate::estimate::Estimate::closed_form(0.001, 10_000, std::time::Duration::ZERO);
        let e = q_error_from_estimate(&est, 0.01, 10_000);
        assert!((e - 10.0).abs() < 1e-9);
    }

    #[test]
    fn buckets_match_paper_thresholds() {
        assert_eq!(SelectivityBucket::classify(0.5), SelectivityBucket::High);
        assert_eq!(SelectivityBucket::classify(0.021), SelectivityBucket::High);
        assert_eq!(SelectivityBucket::classify(0.02), SelectivityBucket::Medium);
        assert_eq!(SelectivityBucket::classify(0.01), SelectivityBucket::Medium);
        assert_eq!(SelectivityBucket::classify(0.005), SelectivityBucket::Low);
        assert_eq!(SelectivityBucket::classify(0.0), SelectivityBucket::Low);
    }

    #[test]
    fn quantiles_reported_like_paper_tables() {
        let errors: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let q = ErrorQuantiles::from_errors(&errors).unwrap();
        assert_eq!(q.count, 100);
        assert!((q.median - 50.5).abs() < 1e-9);
        assert_eq!(q.max, 100.0);
        assert!(q.p95 <= q.p99 && q.p99 <= q.max);
        assert!(ErrorQuantiles::from_errors(&[]).is_none());
    }
}
