//! Rich estimation results and typed estimation errors.
//!
//! The original API returned a bare `f64` selectivity and panicked (or
//! silently produced garbage) on malformed inputs. Serving an estimator
//! under real traffic needs more: callers want the estimated cardinality
//! and per-query diagnostics without re-deriving them, and malformed
//! queries must surface as values, not panics, so one bad request cannot
//! take down a worker. [`Estimate`] and [`EstimateError`] are that
//! contract, shared by Naru's `Engine`/`Session` API and every baseline.

use std::fmt;
use std::time::Duration;

/// The outcome of one successful selectivity estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Estimated selectivity in `[0, 1]`.
    pub selectivity: f64,
    /// Estimated number of matching rows (`selectivity x table rows`).
    pub estimated_rows: f64,
    /// Number of progressive-sampling paths still alive at the end of the
    /// walk. `None` for closed-form estimators (histograms, independence,
    /// KDE, ...) that do not sample.
    pub live_paths: Option<usize>,
    /// Wall-clock time spent producing this estimate.
    pub wall_time: Duration,
}

impl Estimate {
    /// An estimate from a closed-form (non-sampling) estimator.
    pub fn closed_form(selectivity: f64, num_rows: u64, wall_time: Duration) -> Self {
        let selectivity = selectivity.clamp(0.0, 1.0);
        Self { selectivity, estimated_rows: selectivity * num_rows as f64, live_paths: None, wall_time }
    }

    /// An estimate from a sampling estimator, with its live-path count.
    pub fn sampled(selectivity: f64, num_rows: u64, live_paths: usize, wall_time: Duration) -> Self {
        Self { live_paths: Some(live_paths), ..Self::closed_form(selectivity, num_rows, wall_time) }
    }

    /// The estimated cardinality rounded to whole rows.
    pub fn cardinality(&self) -> u64 {
        self.estimated_rows.round().max(0.0) as u64
    }
}

/// Why an estimation request could not be answered.
///
/// These are *request or estimator* defects, distinct from legitimately
/// empty query regions (which estimate to selectivity 0, not an error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// A predicate addresses a column the estimator does not model.
    ColumnOutOfRange {
        /// The offending predicate's column index.
        column: usize,
        /// Number of columns the estimator models.
        num_columns: usize,
    },
    /// The estimator models a column with an empty domain, so no tuple can
    /// be sampled or matched through it.
    EmptyDomain {
        /// The degenerate column's index.
        column: usize,
    },
    /// The estimator has no usable summary (empty sample, zero training
    /// rows, ...) and would answer with noise.
    Untrained {
        /// Human-readable explanation of what is missing.
        reason: String,
    },
}

impl EstimateError {
    /// Convenience constructor for [`EstimateError::Untrained`].
    pub fn untrained(reason: impl Into<String>) -> Self {
        Self::Untrained { reason: reason.into() }
    }
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ColumnOutOfRange { column, num_columns } => {
                write!(f, "predicate column {column} out of range (estimator models {num_columns} columns)")
            }
            Self::EmptyDomain { column } => write!(f, "column {column} has an empty domain"),
            Self::Untrained { reason } => write!(f, "estimator is untrained: {reason}"),
        }
    }
}

impl std::error::Error for EstimateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_clamps_and_scales() {
        let e = Estimate::closed_form(1.5, 200, Duration::from_millis(2));
        assert_eq!(e.selectivity, 1.0);
        assert_eq!(e.estimated_rows, 200.0);
        assert_eq!(e.cardinality(), 200);
        assert_eq!(e.live_paths, None);
    }

    #[test]
    fn sampled_records_live_paths() {
        let e = Estimate::sampled(0.25, 1000, 42, Duration::ZERO);
        assert_eq!(e.cardinality(), 250);
        assert_eq!(e.live_paths, Some(42));
    }

    #[test]
    fn errors_render_their_context() {
        let e = EstimateError::ColumnOutOfRange { column: 9, num_columns: 3 };
        assert!(e.to_string().contains("column 9"));
        assert!(e.to_string().contains("3 columns"));
        assert!(EstimateError::EmptyDomain { column: 1 }.to_string().contains("column 1"));
        assert!(EstimateError::untrained("no sample").to_string().contains("no sample"));
    }
}
