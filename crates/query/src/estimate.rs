//! Rich estimation results and typed estimation errors.
//!
//! The original API returned a bare `f64` selectivity and panicked (or
//! silently produced garbage) on malformed inputs. Serving an estimator
//! under real traffic needs more: callers want the estimated cardinality
//! and per-query diagnostics without re-deriving them, and malformed
//! queries must surface as values, not panics, so one bad request cannot
//! take down a worker. [`Estimate`] and [`EstimateError`] are that
//! contract, shared by Naru's `Engine`/`Session` API and every baseline.

use std::fmt;
use std::time::Duration;

/// Which path of the tiered estimation pipeline produced an [`Estimate`].
///
/// The tiered pipeline (see `TieredSession` in `naru-core`) tries cheap
/// answers before running the model; serving adds a result cache on top.
/// Estimators that sit outside the pipeline (baselines, a plain `Session`)
/// report [`Provenance::Tier2Model`], the full-estimator path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Answered exactly from stored per-column statistics, no model run.
    Tier0Exact,
    /// Answered approximately from histograms/sketches under an
    /// independence assumption, within a configured q-error budget.
    Tier1Sketch,
    /// Answered by the full estimator (progressive sampling over the model).
    Tier2Model,
    /// Returned verbatim from a server-side result cache; the payload is the
    /// estimate that populated the entry, only this tag differs.
    CacheHit,
    /// Answered through a *degraded* path chosen under deadline or overload
    /// pressure: a reduced-sample model walk or a forced sketch answer that
    /// the normal routing would not have used. The estimate is best-effort —
    /// callers that need full quality should retry with more budget.
    Degraded,
    /// Answered by the full estimator running in *relaxed precision*: the
    /// model walk used quantized (i8-weight, f32-accumulate) forward passes
    /// instead of the exact f32 kernels. Faster, with a bounded accuracy
    /// delta that the relaxed-parity test tier asserts against the exact
    /// walk; callers that need bit-exact answers should request
    /// `Precision::Exact`.
    Relaxed,
}

impl Provenance {
    /// Stable lowercase label, convenient for metrics and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            Provenance::Tier0Exact => "tier0_exact",
            Provenance::Tier1Sketch => "tier1_sketch",
            Provenance::Tier2Model => "tier2_model",
            Provenance::CacheHit => "cache_hit",
            Provenance::Degraded => "degraded",
            Provenance::Relaxed => "relaxed",
        }
    }

    /// Parses the label written by [`Provenance::label`] (the form clients
    /// receive on the wire).
    pub fn from_label(label: &str) -> Option<Provenance> {
        match label {
            "tier0_exact" => Some(Provenance::Tier0Exact),
            "tier1_sketch" => Some(Provenance::Tier1Sketch),
            "tier2_model" => Some(Provenance::Tier2Model),
            "cache_hit" => Some(Provenance::CacheHit),
            "degraded" => Some(Provenance::Degraded),
            "relaxed" => Some(Provenance::Relaxed),
            _ => None,
        }
    }
}

/// The outcome of one successful selectivity estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Estimated selectivity in `[0, 1]`.
    pub selectivity: f64,
    /// Estimated number of matching rows (`selectivity x table rows`).
    pub estimated_rows: f64,
    /// Number of progressive-sampling paths still alive at the end of the
    /// walk. `None` for closed-form estimators (histograms, independence,
    /// KDE, ...) that do not sample.
    pub live_paths: Option<usize>,
    /// Wall-clock time spent producing this estimate.
    pub wall_time: Duration,
    /// Which pipeline path produced the answer. Constructors default to
    /// [`Provenance::Tier2Model`]; tiered/cached paths override it via
    /// [`Estimate::with_provenance`].
    pub provenance: Provenance,
}

impl Estimate {
    /// An estimate from a closed-form (non-sampling) estimator.
    pub fn closed_form(selectivity: f64, num_rows: u64, wall_time: Duration) -> Self {
        let selectivity = selectivity.clamp(0.0, 1.0);
        Self {
            selectivity,
            estimated_rows: selectivity * num_rows as f64,
            live_paths: None,
            wall_time,
            provenance: Provenance::Tier2Model,
        }
    }

    /// An estimate from a sampling estimator, with its live-path count.
    pub fn sampled(selectivity: f64, num_rows: u64, live_paths: usize, wall_time: Duration) -> Self {
        Self { live_paths: Some(live_paths), ..Self::closed_form(selectivity, num_rows, wall_time) }
    }

    /// The same estimate tagged with a different [`Provenance`].
    pub fn with_provenance(mut self, provenance: Provenance) -> Self {
        self.provenance = provenance;
        self
    }

    /// The estimated cardinality rounded to whole rows.
    pub fn cardinality(&self) -> u64 {
        self.estimated_rows.round().max(0.0) as u64
    }
}

/// Why an estimation request could not be answered.
///
/// These are *request or estimator* defects, distinct from legitimately
/// empty query regions (which estimate to selectivity 0, not an error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// A predicate addresses a column the estimator does not model.
    ColumnOutOfRange {
        /// The offending predicate's column index.
        column: usize,
        /// Number of columns the estimator models.
        num_columns: usize,
    },
    /// The estimator models a column with an empty domain, so no tuple can
    /// be sampled or matched through it.
    EmptyDomain {
        /// The degenerate column's index.
        column: usize,
    },
    /// The estimator has no usable summary (empty sample, zero training
    /// rows, ...) and would answer with noise.
    Untrained {
        /// Human-readable explanation of what is missing.
        reason: String,
    },
}

impl EstimateError {
    /// Convenience constructor for [`EstimateError::Untrained`].
    pub fn untrained(reason: impl Into<String>) -> Self {
        Self::Untrained { reason: reason.into() }
    }
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ColumnOutOfRange { column, num_columns } => {
                write!(f, "predicate column {column} out of range (estimator models {num_columns} columns)")
            }
            Self::EmptyDomain { column } => write!(f, "column {column} has an empty domain"),
            Self::Untrained { reason } => write!(f, "estimator is untrained: {reason}"),
        }
    }
}

impl std::error::Error for EstimateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_clamps_and_scales() {
        let e = Estimate::closed_form(1.5, 200, Duration::from_millis(2));
        assert_eq!(e.selectivity, 1.0);
        assert_eq!(e.estimated_rows, 200.0);
        assert_eq!(e.cardinality(), 200);
        assert_eq!(e.live_paths, None);
    }

    #[test]
    fn sampled_records_live_paths() {
        let e = Estimate::sampled(0.25, 1000, 42, Duration::ZERO);
        assert_eq!(e.cardinality(), 250);
        assert_eq!(e.live_paths, Some(42));
    }

    #[test]
    fn provenance_defaults_to_model_and_is_overridable() {
        let e = Estimate::closed_form(0.5, 100, Duration::ZERO);
        assert_eq!(e.provenance, Provenance::Tier2Model);
        let tagged = e.clone().with_provenance(Provenance::CacheHit);
        assert_eq!(tagged.provenance, Provenance::CacheHit);
        // Everything but the tag is unchanged.
        assert_eq!(tagged.selectivity, e.selectivity);
        assert_eq!(tagged.estimated_rows, e.estimated_rows);
        assert_eq!(Provenance::Tier0Exact.label(), "tier0_exact");
        assert_eq!(Provenance::Tier1Sketch.label(), "tier1_sketch");
        assert_eq!(Provenance::Degraded.label(), "degraded");
        assert_eq!(Provenance::Relaxed.label(), "relaxed");
        assert_eq!(Provenance::from_label("relaxed"), Some(Provenance::Relaxed));
    }

    #[test]
    fn errors_render_their_context() {
        let e = EstimateError::ColumnOutOfRange { column: 9, num_columns: 3 };
        assert!(e.to_string().contains("column 9"));
        assert!(e.to_string().contains("3 columns"));
        assert!(EstimateError::EmptyDomain { column: 1 }.to_string().contains("column 1"));
        assert!(EstimateError::untrained("no sample").to_string().contains("no sample"));
    }
}
