//! Canonical, order-normalized query identity for caching and dedup.
//!
//! `Query` equality is structural: `a=1 AND b<=3` and `b<=3 AND a=1` are
//! different predicate vectors even though they denote the same region.
//! A result cache keyed on the raw predicate list would store one entry
//! per phrasing. [`QueryKey`] instead captures the *compiled* form — one
//! [`ColumnConstraint`] per table column, produced by
//! [`Query::try_constraints`] — which is invariant under predicate
//! reordering because per-column constraint intersection is commutative
//! and associative over its canonical output forms.
//!
//! The key normalizes predicate *order* (and same-column predicate
//! merging), not arbitrary semantic equivalence: `a IN (1,2,3)` and
//! `a BETWEEN 1 AND 3` compile to different constraint representations and
//! therefore different keys, even when they match the same ids.

use crate::estimate::EstimateError;
use crate::predicate::ColumnConstraint;
use crate::query::Query;

/// An order-normalized, hashable identity for a [`Query`] against a table
/// with a fixed column count.
///
/// Two queries produce equal keys iff they compile to the same per-column
/// constraint vector, so permuting predicates (or splitting one range into
/// two conjunct halves that intersect back to it) does not change the key.
/// Keys from different `num_columns` never collide on equality (the vector
/// lengths differ).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    constraints: Vec<ColumnConstraint>,
}

impl QueryKey {
    /// Compiles `query` against a `num_columns`-wide schema into its
    /// canonical key. Fails with [`EstimateError::ColumnOutOfRange`] when a
    /// predicate addresses a column outside the schema, exactly like the
    /// estimation entry points — an invalid query has no cacheable identity.
    pub fn new(query: &Query, num_columns: usize) -> Result<Self, EstimateError> {
        Ok(Self { constraints: query.try_constraints(num_columns)? })
    }

    /// The compiled per-column constraints backing the key.
    pub fn constraints(&self) -> &[ColumnConstraint] {
        &self.constraints
    }

    /// The schema width this key was compiled against.
    pub fn num_columns(&self) -> usize {
        self.constraints.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(key: &QueryKey) -> u64 {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        h.finish()
    }

    #[test]
    fn predicate_order_does_not_change_the_key() {
        let preds = vec![
            Predicate::between(0, 2, 9),
            Predicate::neq(1, 4),
            Predicate::in_set(2, vec![1, 5, 7]),
            Predicate::ge(3, 3),
        ];
        let reference = QueryKey::new(&Query::new(preds.clone()), 5).unwrap();
        // Every rotation and the full reversal must agree, equality and hash.
        for rot in 0..preds.len() {
            let mut permuted = preds.clone();
            permuted.rotate_left(rot);
            let key = QueryKey::new(&Query::new(permuted), 5).unwrap();
            assert_eq!(key, reference, "rotation {rot} changed the key");
            assert_eq!(hash_of(&key), hash_of(&reference));
        }
        let mut reversed = preds;
        reversed.reverse();
        let key = QueryKey::new(&Query::new(reversed), 5).unwrap();
        assert_eq!(key, reference);
        assert_eq!(hash_of(&key), hash_of(&reference));
    }

    #[test]
    fn same_column_conjuncts_normalize_like_their_merge() {
        // `2 <= a AND a <= 9` in either order equals the single between.
        let split_a = QueryKey::new(&Query::new(vec![Predicate::ge(0, 2), Predicate::le(0, 9)]), 2).unwrap();
        let split_b = QueryKey::new(&Query::new(vec![Predicate::le(0, 9), Predicate::ge(0, 2)]), 2).unwrap();
        let merged = QueryKey::new(&Query::new(vec![Predicate::between(0, 2, 9)]), 2).unwrap();
        assert_eq!(split_a, merged);
        assert_eq!(split_b, merged);
    }

    #[test]
    fn distinct_regions_get_distinct_keys() {
        let a = QueryKey::new(&Query::new(vec![Predicate::eq(0, 1)]), 3).unwrap();
        let b = QueryKey::new(&Query::new(vec![Predicate::eq(0, 2)]), 3).unwrap();
        let c = QueryKey::new(&Query::new(vec![Predicate::eq(1, 1)]), 3).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(QueryKey::new(&Query::all(), 3).unwrap().num_columns(), 3);
    }

    #[test]
    fn invalid_queries_have_no_key() {
        let err = QueryKey::new(&Query::new(vec![Predicate::eq(7, 0)]), 3).unwrap_err();
        assert_eq!(err, EstimateError::ColumnOutOfRange { column: 7, num_columns: 3 });
    }
}
