//! Conjunctive queries and the estimator interface.

use naru_data::TableSchema;

use crate::estimate::{Estimate, EstimateError};
use crate::predicate::{ColumnConstraint, Predicate};

/// A conjunction of predicates (the query class of §2.2).
///
/// Multiple predicates on the same column are allowed; they are intersected
/// when the query is compiled into per-column constraints.
///
/// Equality and the derived `Hash` are structural (predicate order
/// matters); for an order-normalized identity suitable as a cache key, use
/// [`QueryKey`](crate::QueryKey).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    predicates: Vec<Predicate>,
}

impl Query {
    /// Creates a query from predicates.
    pub fn new(predicates: Vec<Predicate>) -> Self {
        Self { predicates }
    }

    /// A query with no predicates (matches every tuple).
    pub fn all() -> Self {
        Self { predicates: Vec::new() }
    }

    /// The raw predicates.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of predicates.
    pub fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// Number of distinct columns with at least one (non-`Any`) filter.
    pub fn num_filtered_columns(&self, num_columns: usize) -> usize {
        self.constraints(num_columns).iter().filter(|c| !matches!(c, ColumnConstraint::Any)).count()
    }

    /// Compiles the query into one constraint per table column, treating
    /// unfiltered columns as wildcards (exactly how Naru's progressive
    /// sampler consumes queries).
    pub fn constraints(&self, num_columns: usize) -> Vec<ColumnConstraint> {
        let mut out = vec![ColumnConstraint::Any; num_columns];
        for p in &self.predicates {
            assert!(p.column < num_columns, "predicate column {} out of range ({num_columns} columns)", p.column);
            out[p.column] = out[p.column].intersect(&p.constraint);
        }
        out
    }

    /// Checks that every predicate addresses a column in `0..num_columns`,
    /// without compiling constraints. The shared validation step behind all
    /// fallible entry points.
    pub fn validate_columns(&self, num_columns: usize) -> Result<(), EstimateError> {
        match self.predicates.iter().find(|p| p.column >= num_columns) {
            Some(p) => Err(EstimateError::ColumnOutOfRange { column: p.column, num_columns }),
            None => Ok(()),
        }
    }

    /// Fallible variant of [`Query::constraints`]: a predicate addressing a
    /// column outside `0..num_columns` becomes an
    /// [`EstimateError::ColumnOutOfRange`] instead of a panic. Estimators
    /// use this to validate requests before touching their summaries.
    pub fn try_constraints(&self, num_columns: usize) -> Result<Vec<ColumnConstraint>, EstimateError> {
        self.validate_columns(num_columns)?;
        Ok(self.constraints(num_columns))
    }

    /// Buffer-reusing variant of [`Query::try_constraints`]: compiles the
    /// query into `out` (cleared and refilled in place) so per-session hot
    /// paths can stay allocation-free across queries.
    pub fn try_constraints_into(
        &self,
        num_columns: usize,
        out: &mut Vec<ColumnConstraint>,
    ) -> Result<(), EstimateError> {
        if let Some(p) = self.predicates.iter().find(|p| p.column >= num_columns) {
            return Err(EstimateError::ColumnOutOfRange { column: p.column, num_columns });
        }
        out.clear();
        // lint: allow(no_alloc) - resize on a caller-retained buffer: allocates only on first use or growth, amortized to zero in the steady state
        out.resize(num_columns, ColumnConstraint::Any);
        for p in &self.predicates {
            out[p.column] = out[p.column].intersect(&p.constraint);
        }
        Ok(())
    }

    /// Whether an id-encoded row satisfies every predicate.
    pub fn matches_row(&self, row: &[u32]) -> bool {
        self.predicates.iter().all(|p| p.matches(row[p.column]))
    }

    /// The number of points in the query region `R_1 × · · · × R_n`
    /// (reported in Table 6 of the paper), as a float because it easily
    /// exceeds `u64` on wide tables.
    pub fn region_size(&self, schema: &TableSchema) -> f64 {
        self.constraints(schema.num_columns())
            .iter()
            .enumerate()
            .map(|(i, c)| c.count(schema.domain_size(i)) as f64)
            .product()
    }

    /// Log10 of the region size; finite even when the region overflows f64
    /// would not be an issue at our scales, but the log form is what the
    /// experiment tables print.
    pub fn region_size_log10(&self, schema: &TableSchema) -> f64 {
        self.constraints(schema.num_columns())
            .iter()
            .enumerate()
            .map(|(i, c)| (c.count(schema.domain_size(i)).max(1) as f64).log10())
            .sum()
    }
}

/// The common interface all selectivity estimators in this workspace
/// implement — Naru itself (`naru-core`) and every baseline
/// (`naru-baselines`).
///
/// Estimators are constructed from a table (training / statistics
/// collection) and thereafter answer queries from their own summary alone;
/// estimation must not touch the original data. The primary entry points
/// are fallible and rich: [`try_estimate`] returns an [`Estimate`]
/// (selectivity, estimated rows, live sample paths, wall time) or a typed
/// [`EstimateError`], and [`try_estimate_batch`] answers many queries in
/// one call — the default implementation runs them sequentially, so every
/// estimator gets batching for free, while sampling estimators override it
/// to reuse per-session scratch across the batch.
///
/// The trait is object-safe; experiment harnesses hold estimator line-ups
/// as `&dyn SelectivityEstimator`.
///
/// [`try_estimate`]: SelectivityEstimator::try_estimate
/// [`try_estimate_batch`]: SelectivityEstimator::try_estimate_batch
pub trait SelectivityEstimator {
    /// Short display name used in experiment reports (e.g. `"Naru-2000"`).
    fn name(&self) -> String;

    /// Estimates the query, returning the rich result or a typed error.
    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError>;

    /// Estimates a batch of queries, one result per query in order.
    ///
    /// The default implementation calls [`try_estimate`] sequentially;
    /// estimators with per-query setup cost (locking, scratch priming)
    /// override it to amortize that cost across the batch.
    ///
    /// [`try_estimate`]: SelectivityEstimator::try_estimate
    fn try_estimate_batch(&self, queries: &[Query]) -> Vec<Result<Estimate, EstimateError>> {
        queries.iter().map(|q| self.try_estimate(q)).collect()
    }

    /// Size of the estimator's summary in bytes, for the storage budgets of
    /// Table 1.
    fn size_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Op;

    #[test]
    fn constraints_merge_same_column_predicates() {
        let q = Query::new(vec![Predicate::ge(1, 3), Predicate::le(1, 7), Predicate::eq(0, 2)]);
        let cs = q.constraints(3);
        assert_eq!(cs[0], ColumnConstraint::Range { lo: 2, hi: 2 });
        assert_eq!(cs[1], ColumnConstraint::Range { lo: 3, hi: 7 });
        assert_eq!(cs[2], ColumnConstraint::Any);
        assert_eq!(q.num_filtered_columns(3), 2);
    }

    #[test]
    fn matches_row_is_conjunction() {
        let q = Query::new(vec![Predicate::eq(0, 1), Predicate::ge(2, 5)]);
        assert!(q.matches_row(&[1, 99, 5]));
        assert!(q.matches_row(&[1, 0, 9]));
        assert!(!q.matches_row(&[0, 0, 9]));
        assert!(!q.matches_row(&[1, 0, 4]));
    }

    #[test]
    fn empty_query_matches_everything() {
        let q = Query::all();
        assert!(q.matches_row(&[0, 1, 2]));
        assert_eq!(q.num_predicates(), 0);
    }

    #[test]
    fn region_size_products_domain_counts() {
        let schema = TableSchema::new(vec!["a".into(), "b".into(), "c".into()], vec![10, 100, 4], 1000);
        let q = Query::new(vec![Predicate::le(0, 4), Predicate::from_op(1, Op::Ge, 90)]);
        // a: ids 0..=4 -> 5; b: ids 90..=99 -> 10; c: wildcard -> 4.
        assert_eq!(q.region_size(&schema), (5 * 10 * 4) as f64);
        assert!((q.region_size_log10(&schema) - (200f64).log10()).abs() < 1e-9);
    }

    #[test]
    fn contradictory_predicates_produce_empty_region() {
        let schema = TableSchema::new(vec!["a".into()], vec![10], 100);
        let q = Query::new(vec![Predicate::le(0, 2), Predicate::ge(0, 5)]);
        assert_eq!(q.region_size(&schema), 0.0);
        assert!(!q.matches_row(&[3]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        let q = Query::new(vec![Predicate::eq(5, 0)]);
        let _ = q.constraints(3);
    }

    #[test]
    fn try_constraints_reports_out_of_range_column() {
        let q = Query::new(vec![Predicate::eq(0, 1), Predicate::eq(5, 0)]);
        assert_eq!(q.try_constraints(3), Err(EstimateError::ColumnOutOfRange { column: 5, num_columns: 3 }));
        let ok = q.try_constraints(6).unwrap();
        assert_eq!(ok.len(), 6);
        assert_eq!(ok[0], ColumnConstraint::Range { lo: 1, hi: 1 });
    }

    #[test]
    fn try_constraints_into_reuses_buffer_and_matches_allocating_path() {
        let q = Query::new(vec![Predicate::ge(1, 3), Predicate::le(1, 7), Predicate::eq(0, 2)]);
        let mut buf = vec![ColumnConstraint::Empty; 9]; // stale garbage
        q.try_constraints_into(3, &mut buf).unwrap();
        assert_eq!(buf, q.constraints(3));
        let bad = Query::new(vec![Predicate::eq(5, 0)]);
        assert_eq!(
            bad.try_constraints_into(3, &mut buf),
            Err(EstimateError::ColumnOutOfRange { column: 5, num_columns: 3 })
        );
    }

    /// A fixed-answer estimator exercising the trait's provided methods.
    struct Constant(f64);

    impl SelectivityEstimator for Constant {
        fn name(&self) -> String {
            "Constant".into()
        }

        fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
            query.try_constraints(2)?;
            Ok(Estimate::closed_form(self.0, 100, std::time::Duration::ZERO))
        }

        fn size_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn default_batch_maps_try_estimate_per_query() {
        let est = Constant(0.5);
        let queries = vec![Query::all(), Query::new(vec![Predicate::eq(9, 0)]), Query::new(vec![Predicate::eq(1, 2)])];
        let results = est.try_estimate_batch(&queries);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().selectivity, 0.5);
        assert_eq!(results[1], Err(EstimateError::ColumnOutOfRange { column: 9, num_columns: 2 }));
        assert_eq!(results[2].as_ref().unwrap().cardinality(), 50);
    }
}
