//! Conjunctive queries and the estimator interface.

use naru_data::TableSchema;

use crate::predicate::{ColumnConstraint, Predicate};

/// A conjunction of predicates (the query class of §2.2).
///
/// Multiple predicates on the same column are allowed; they are intersected
/// when the query is compiled into per-column constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    predicates: Vec<Predicate>,
}

impl Query {
    /// Creates a query from predicates.
    pub fn new(predicates: Vec<Predicate>) -> Self {
        Self { predicates }
    }

    /// A query with no predicates (matches every tuple).
    pub fn all() -> Self {
        Self { predicates: Vec::new() }
    }

    /// The raw predicates.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of predicates.
    pub fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// Number of distinct columns with at least one (non-`Any`) filter.
    pub fn num_filtered_columns(&self, num_columns: usize) -> usize {
        self.constraints(num_columns).iter().filter(|c| !matches!(c, ColumnConstraint::Any)).count()
    }

    /// Compiles the query into one constraint per table column, treating
    /// unfiltered columns as wildcards (exactly how Naru's progressive
    /// sampler consumes queries).
    pub fn constraints(&self, num_columns: usize) -> Vec<ColumnConstraint> {
        let mut out = vec![ColumnConstraint::Any; num_columns];
        for p in &self.predicates {
            assert!(p.column < num_columns, "predicate column {} out of range ({num_columns} columns)", p.column);
            out[p.column] = out[p.column].intersect(&p.constraint);
        }
        out
    }

    /// Whether an id-encoded row satisfies every predicate.
    pub fn matches_row(&self, row: &[u32]) -> bool {
        self.predicates.iter().all(|p| p.matches(row[p.column]))
    }

    /// The number of points in the query region `R_1 × · · · × R_n`
    /// (reported in Table 6 of the paper), as a float because it easily
    /// exceeds `u64` on wide tables.
    pub fn region_size(&self, schema: &TableSchema) -> f64 {
        self.constraints(schema.num_columns())
            .iter()
            .enumerate()
            .map(|(i, c)| c.count(schema.domain_size(i)) as f64)
            .product()
    }

    /// Log10 of the region size; finite even when the region overflows f64
    /// would not be an issue at our scales, but the log form is what the
    /// experiment tables print.
    pub fn region_size_log10(&self, schema: &TableSchema) -> f64 {
        self.constraints(schema.num_columns())
            .iter()
            .enumerate()
            .map(|(i, c)| (c.count(schema.domain_size(i)).max(1) as f64).log10())
            .sum()
    }
}

/// The common interface all selectivity estimators in this workspace
/// implement — Naru itself (`naru-core`) and every baseline
/// (`naru-baselines`).
///
/// Estimators are constructed from a table (training / statistics
/// collection) and thereafter answer queries from their own summary alone;
/// `estimate` must not touch the original data. The returned value is a
/// *selectivity* in `[0, 1]`; multiply by the table's row count for a
/// cardinality.
pub trait SelectivityEstimator {
    /// Short display name used in experiment reports (e.g. `"Naru-2000"`).
    fn name(&self) -> String;

    /// Estimated selectivity of the query, in `[0, 1]`.
    fn estimate(&self, query: &Query) -> f64;

    /// Size of the estimator's summary in bytes, for the storage budgets of
    /// Table 1.
    fn size_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Op;

    #[test]
    fn constraints_merge_same_column_predicates() {
        let q = Query::new(vec![Predicate::ge(1, 3), Predicate::le(1, 7), Predicate::eq(0, 2)]);
        let cs = q.constraints(3);
        assert_eq!(cs[0], ColumnConstraint::Range { lo: 2, hi: 2 });
        assert_eq!(cs[1], ColumnConstraint::Range { lo: 3, hi: 7 });
        assert_eq!(cs[2], ColumnConstraint::Any);
        assert_eq!(q.num_filtered_columns(3), 2);
    }

    #[test]
    fn matches_row_is_conjunction() {
        let q = Query::new(vec![Predicate::eq(0, 1), Predicate::ge(2, 5)]);
        assert!(q.matches_row(&[1, 99, 5]));
        assert!(q.matches_row(&[1, 0, 9]));
        assert!(!q.matches_row(&[0, 0, 9]));
        assert!(!q.matches_row(&[1, 0, 4]));
    }

    #[test]
    fn empty_query_matches_everything() {
        let q = Query::all();
        assert!(q.matches_row(&[0, 1, 2]));
        assert_eq!(q.num_predicates(), 0);
    }

    #[test]
    fn region_size_products_domain_counts() {
        let schema = TableSchema::new(vec!["a".into(), "b".into(), "c".into()], vec![10, 100, 4], 1000);
        let q = Query::new(vec![Predicate::le(0, 4), Predicate::from_op(1, Op::Ge, 90)]);
        // a: ids 0..=4 -> 5; b: ids 90..=99 -> 10; c: wildcard -> 4.
        assert_eq!(q.region_size(&schema), (5 * 10 * 4) as f64);
        assert!((q.region_size_log10(&schema) - (200f64).log10()).abs() < 1e-9);
    }

    #[test]
    fn contradictory_predicates_produce_empty_region() {
        let schema = TableSchema::new(vec!["a".into()], vec![10], 100);
        let q = Query::new(vec![Predicate::le(0, 2), Predicate::ge(0, 5)]);
        assert_eq!(q.region_size(&schema), 0.0);
        assert!(!q.matches_row(&[3]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        let q = Query::new(vec![Predicate::eq(5, 0)]);
        let _ = q.constraints(3);
    }
}
