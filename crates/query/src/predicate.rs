//! Predicates over dictionary-encoded columns.
//!
//! The paper's problem statement (§2.2) covers conjunctions of
//! range/equality predicates — `=, ≠, <, ≤, >, ≥`, rectangular containment
//! `A ∈ [l, r]`, and `IN` — over the finite per-column domains. Because the
//! dictionaries built by `naru-data` are order-preserving, every such
//! predicate translates into a constraint over the integer id space; this
//! module defines that constraint representation.

use naru_data::{Column, Value};

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `=`
    Eq,
    /// `≠`
    Neq,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl Op {
    /// All operators, convenient for workload generators.
    pub const ALL: [Op; 6] = [Op::Eq, Op::Neq, Op::Lt, Op::Le, Op::Gt, Op::Ge];

    /// Human-readable symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            Op::Eq => "=",
            Op::Neq => "<>",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
        }
    }
}

/// A single predicate `column op literal` (or `column IN set`), expressed
/// over dictionary ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    /// Column index in the table.
    pub column: usize,
    /// The constraint over that column's id space.
    pub constraint: ColumnConstraint,
}

impl Predicate {
    /// `column = id`
    pub fn eq(column: usize, id: u32) -> Self {
        Self { column, constraint: ColumnConstraint::Range { lo: id, hi: id } }
    }

    /// `column <> id`
    pub fn neq(column: usize, id: u32) -> Self {
        Self { column, constraint: ColumnConstraint::Exclude(id) }
    }

    /// `column <= id`
    pub fn le(column: usize, id: u32) -> Self {
        Self { column, constraint: ColumnConstraint::Range { lo: 0, hi: id } }
    }

    /// `column < id` (empty if `id == 0`)
    pub fn lt(column: usize, id: u32) -> Self {
        if id == 0 {
            Self { column, constraint: ColumnConstraint::Empty }
        } else {
            Self { column, constraint: ColumnConstraint::Range { lo: 0, hi: id - 1 } }
        }
    }

    /// `column >= id`
    pub fn ge(column: usize, id: u32) -> Self {
        Self { column, constraint: ColumnConstraint::Range { lo: id, hi: u32::MAX } }
    }

    /// `column > id`
    pub fn gt(column: usize, id: u32) -> Self {
        if id == u32::MAX {
            Self { column, constraint: ColumnConstraint::Empty }
        } else {
            Self { column, constraint: ColumnConstraint::Range { lo: id + 1, hi: u32::MAX } }
        }
    }

    /// `column BETWEEN lo AND hi` (inclusive).
    pub fn between(column: usize, lo: u32, hi: u32) -> Self {
        if lo > hi {
            Self { column, constraint: ColumnConstraint::Empty }
        } else {
            Self { column, constraint: ColumnConstraint::Range { lo, hi } }
        }
    }

    /// `column IN (ids...)`
    pub fn in_set(column: usize, mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Self { column, constraint: ColumnConstraint::Set(ids) }
    }

    /// Builds a predicate from an operator and an id literal.
    pub fn from_op(column: usize, op: Op, id: u32) -> Self {
        match op {
            Op::Eq => Self::eq(column, id),
            Op::Neq => Self::neq(column, id),
            Op::Lt => Self::lt(column, id),
            Op::Le => Self::le(column, id),
            Op::Gt => Self::gt(column, id),
            Op::Ge => Self::ge(column, id),
        }
    }

    /// Builds a predicate from a decoded [`Value`] literal by consulting the
    /// column's dictionary. Literals outside the domain are snapped to the
    /// nearest id consistent with the operator semantics (an `=` on an
    /// absent literal produces an empty constraint).
    pub fn from_value(column_index: usize, column: &Column, op: Op, literal: &Value) -> Self {
        let exact = column.encode(literal);
        match op {
            Op::Eq => match exact {
                Some(id) => Self::eq(column_index, id),
                None => Self { column: column_index, constraint: ColumnConstraint::Empty },
            },
            Op::Neq => match exact {
                Some(id) => Self::neq(column_index, id),
                None => Self { column: column_index, constraint: ColumnConstraint::Any },
            },
            Op::Le => match column.encode_le(literal) {
                Some(id) => Self::le(column_index, id),
                None => Self { column: column_index, constraint: ColumnConstraint::Empty },
            },
            Op::Lt => {
                // x < v  ≡  x <= largest domain value strictly below v
                let bound = match exact {
                    Some(id) => id.checked_sub(1),
                    None => column.encode_le(literal),
                };
                match bound {
                    Some(id) => Self::le(column_index, id),
                    None => Self { column: column_index, constraint: ColumnConstraint::Empty },
                }
            }
            Op::Ge => match column.encode_ge(literal) {
                Some(id) => Self::ge(column_index, id),
                None => Self { column: column_index, constraint: ColumnConstraint::Empty },
            },
            Op::Gt => {
                let bound = match exact {
                    Some(id) => {
                        if (id as usize) + 1 < column.domain_size() {
                            Some(id + 1)
                        } else {
                            None
                        }
                    }
                    None => column.encode_ge(literal),
                };
                match bound {
                    Some(id) => Self::ge(column_index, id),
                    None => Self { column: column_index, constraint: ColumnConstraint::Empty },
                }
            }
        }
    }

    /// Whether the encoded id satisfies the predicate.
    pub fn matches(&self, id: u32) -> bool {
        self.constraint.matches(id)
    }
}

/// The set of ids a column is restricted to. `Any` means the column is not
/// filtered (a wildcard in the paper's terminology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnConstraint {
    /// No restriction.
    Any,
    /// The empty set (an unsatisfiable predicate).
    Empty,
    /// Inclusive id range; `hi` may exceed the domain size (it is clamped
    /// when evaluated against a concrete domain).
    Range {
        /// Lower bound (inclusive).
        lo: u32,
        /// Upper bound (inclusive).
        hi: u32,
    },
    /// An explicit sorted set of ids (the `IN` operator).
    Set(Vec<u32>),
    /// Everything except one id (`≠`).
    Exclude(u32),
}

impl ColumnConstraint {
    /// Whether `id` satisfies the constraint.
    pub fn matches(&self, id: u32) -> bool {
        match self {
            ColumnConstraint::Any => true,
            ColumnConstraint::Empty => false,
            ColumnConstraint::Range { lo, hi } => id >= *lo && id <= *hi,
            ColumnConstraint::Set(ids) => ids.binary_search(&id).is_ok(),
            ColumnConstraint::Exclude(v) => id != *v,
        }
    }

    /// Number of ids in `[0, domain)` satisfying the constraint.
    pub fn count(&self, domain: usize) -> u64 {
        match self {
            ColumnConstraint::Any => domain as u64,
            ColumnConstraint::Empty => 0,
            ColumnConstraint::Range { lo, hi } => {
                let lo = *lo as u64;
                let hi = (*hi as u64).min(domain.saturating_sub(1) as u64);
                if lo > hi || domain == 0 {
                    0
                } else {
                    hi - lo + 1
                }
            }
            ColumnConstraint::Set(ids) => ids.iter().filter(|&&id| (id as usize) < domain).count() as u64,
            ColumnConstraint::Exclude(v) => {
                if (*v as usize) < domain {
                    domain as u64 - 1
                } else {
                    domain as u64
                }
            }
        }
    }

    /// Intersection of two constraints (conjunction of predicates on the
    /// same column).
    pub fn intersect(&self, other: &ColumnConstraint) -> ColumnConstraint {
        use ColumnConstraint::*;
        match (self, other) {
            (Any, x) | (x, Any) => x.clone(),
            (Empty, _) | (_, Empty) => Empty,
            (Range { lo: a, hi: b }, Range { lo: c, hi: d }) => {
                let lo = (*a).max(*c);
                let hi = (*b).min(*d);
                if lo > hi {
                    Empty
                } else {
                    Range { lo, hi }
                }
            }
            (Set(ids), other) | (other, Set(ids)) => {
                let filtered: Vec<u32> = ids.iter().copied().filter(|&id| other.matches(id)).collect();
                if filtered.is_empty() {
                    Empty
                } else {
                    Set(filtered)
                }
            }
            (Exclude(a), Exclude(b)) => {
                if a == b {
                    Exclude(*a)
                } else {
                    // Two exclusions cannot be represented exactly without a
                    // general set; fall back to the weaker single exclusion.
                    // Conjunctive workloads in this repo never produce this
                    // shape (one predicate per column at most for ≠).
                    Exclude(*a)
                }
            }
            (Exclude(v), Range { lo, hi }) | (Range { lo, hi }, Exclude(v)) => {
                if v < lo || v > hi {
                    Range { lo: *lo, hi: *hi }
                } else if lo == hi {
                    Empty
                } else if v == lo {
                    Range { lo: lo + 1, hi: *hi }
                } else if v == hi {
                    Range { lo: *lo, hi: hi - 1 }
                } else {
                    // A hole in the middle: enumerate as a set.
                    let ids: Vec<u32> = (*lo..=*hi).filter(|id| id != v).collect();
                    Set(ids)
                }
            }
        }
    }

    /// The ids in `[0, domain)` satisfying the constraint, materialized.
    /// Only call for constraints known to be small (used by enumeration).
    pub fn materialize(&self, domain: usize) -> Vec<u32> {
        (0..domain as u32).filter(|&id| self.matches(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_data::Value;

    #[test]
    fn operators_build_expected_constraints() {
        assert_eq!(Predicate::eq(0, 5).constraint, ColumnConstraint::Range { lo: 5, hi: 5 });
        assert_eq!(Predicate::le(0, 5).constraint, ColumnConstraint::Range { lo: 0, hi: 5 });
        assert_eq!(Predicate::lt(0, 0).constraint, ColumnConstraint::Empty);
        assert_eq!(Predicate::gt(0, 3).constraint, ColumnConstraint::Range { lo: 4, hi: u32::MAX });
        assert_eq!(Predicate::between(0, 7, 3).constraint, ColumnConstraint::Empty);
    }

    #[test]
    fn matches_and_count_agree() {
        let domain = 10usize;
        let constraints = vec![
            ColumnConstraint::Any,
            ColumnConstraint::Empty,
            ColumnConstraint::Range { lo: 2, hi: 5 },
            ColumnConstraint::Range { lo: 8, hi: 200 },
            ColumnConstraint::Set(vec![1, 3, 9, 42]),
            ColumnConstraint::Exclude(4),
        ];
        for c in constraints {
            let brute = (0..domain as u32).filter(|&id| c.matches(id)).count() as u64;
            assert_eq!(brute, c.count(domain), "constraint {c:?}");
        }
    }

    #[test]
    fn intersect_matches_logical_and() {
        let domain = 12usize;
        let cases = vec![
            (ColumnConstraint::Range { lo: 2, hi: 9 }, ColumnConstraint::Range { lo: 5, hi: 20 }),
            (ColumnConstraint::Range { lo: 2, hi: 9 }, ColumnConstraint::Exclude(5)),
            (ColumnConstraint::Range { lo: 2, hi: 9 }, ColumnConstraint::Exclude(2)),
            (ColumnConstraint::Set(vec![1, 4, 7]), ColumnConstraint::Range { lo: 4, hi: 8 }),
            (ColumnConstraint::Any, ColumnConstraint::Exclude(3)),
            (ColumnConstraint::Empty, ColumnConstraint::Any),
            (ColumnConstraint::Range { lo: 5, hi: 5 }, ColumnConstraint::Exclude(5)),
        ];
        for (a, b) in cases {
            let inter = a.intersect(&b);
            for id in 0..domain as u32 {
                assert_eq!(
                    inter.matches(id),
                    a.matches(id) && b.matches(id),
                    "a={a:?} b={b:?} id={id}"
                );
            }
        }
    }

    #[test]
    fn from_value_handles_absent_literals() {
        let col = Column::from_values("x", &[Value::Int(10), Value::Int(20), Value::Int(30)]);
        // 25 is absent: x <= 25 means id <= 1; x >= 25 means id >= 2.
        let le = Predicate::from_value(0, &col, Op::Le, &Value::Int(25));
        assert_eq!(le.constraint, ColumnConstraint::Range { lo: 0, hi: 1 });
        let ge = Predicate::from_value(0, &col, Op::Ge, &Value::Int(25));
        assert_eq!(ge.constraint, ColumnConstraint::Range { lo: 2, hi: u32::MAX });
        let eq = Predicate::from_value(0, &col, Op::Eq, &Value::Int(25));
        assert_eq!(eq.constraint, ColumnConstraint::Empty);
        let neq = Predicate::from_value(0, &col, Op::Neq, &Value::Int(25));
        assert_eq!(neq.constraint, ColumnConstraint::Any);
        // Strict comparisons on present literals.
        let lt = Predicate::from_value(0, &col, Op::Lt, &Value::Int(20));
        assert_eq!(lt.constraint, ColumnConstraint::Range { lo: 0, hi: 0 });
        let gt = Predicate::from_value(0, &col, Op::Gt, &Value::Int(30));
        assert_eq!(gt.constraint, ColumnConstraint::Empty);
    }

    #[test]
    fn in_set_dedups_and_sorts() {
        let p = Predicate::in_set(2, vec![5, 1, 5, 3]);
        assert_eq!(p.constraint, ColumnConstraint::Set(vec![1, 3, 5]));
        assert!(p.matches(3));
        assert!(!p.matches(2));
    }

    #[test]
    fn materialize_small_constraint() {
        let c = ColumnConstraint::Range { lo: 3, hi: 5 };
        assert_eq!(c.materialize(10), vec![3, 4, 5]);
        assert_eq!(ColumnConstraint::Exclude(1).materialize(4), vec![0, 2, 3]);
    }

    #[test]
    fn op_symbols() {
        assert_eq!(Op::Le.symbol(), "<=");
        assert_eq!(Op::ALL.len(), 6);
    }
}
