//! Predicates over dictionary-encoded columns.
//!
//! The paper's problem statement (§2.2) covers conjunctions of
//! range/equality predicates — `=, ≠, <, ≤, >, ≥`, rectangular containment
//! `A ∈ [l, r]`, and `IN` — over the finite per-column domains. Because the
//! dictionaries built by `naru-data` are order-preserving, every such
//! predicate translates into a constraint over the integer id space; this
//! module defines that constraint representation.

use naru_data::{Column, Value};

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `=`
    Eq,
    /// `≠`
    Neq,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl Op {
    /// All operators, convenient for workload generators.
    pub const ALL: [Op; 6] = [Op::Eq, Op::Neq, Op::Lt, Op::Le, Op::Gt, Op::Ge];

    /// Human-readable symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            Op::Eq => "=",
            Op::Neq => "<>",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
        }
    }
}

/// A single predicate `column op literal` (or `column IN set`), expressed
/// over dictionary ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Predicate {
    /// Column index in the table.
    pub column: usize,
    /// The constraint over that column's id space.
    pub constraint: ColumnConstraint,
}

impl Predicate {
    /// `column = id`
    pub fn eq(column: usize, id: u32) -> Self {
        Self { column, constraint: ColumnConstraint::Range { lo: id, hi: id } }
    }

    /// `column <> id`
    pub fn neq(column: usize, id: u32) -> Self {
        Self { column, constraint: ColumnConstraint::Exclude(id) }
    }

    /// `column <= id`
    pub fn le(column: usize, id: u32) -> Self {
        Self { column, constraint: ColumnConstraint::Range { lo: 0, hi: id } }
    }

    /// `column < id` (empty if `id == 0`)
    pub fn lt(column: usize, id: u32) -> Self {
        if id == 0 {
            Self { column, constraint: ColumnConstraint::Empty }
        } else {
            Self { column, constraint: ColumnConstraint::Range { lo: 0, hi: id - 1 } }
        }
    }

    /// `column >= id`
    pub fn ge(column: usize, id: u32) -> Self {
        Self { column, constraint: ColumnConstraint::Range { lo: id, hi: u32::MAX } }
    }

    /// `column > id`
    pub fn gt(column: usize, id: u32) -> Self {
        if id == u32::MAX {
            Self { column, constraint: ColumnConstraint::Empty }
        } else {
            Self { column, constraint: ColumnConstraint::Range { lo: id + 1, hi: u32::MAX } }
        }
    }

    /// `column BETWEEN lo AND hi` (inclusive).
    pub fn between(column: usize, lo: u32, hi: u32) -> Self {
        if lo > hi {
            Self { column, constraint: ColumnConstraint::Empty }
        } else {
            Self { column, constraint: ColumnConstraint::Range { lo, hi } }
        }
    }

    /// `column IN (ids...)`
    pub fn in_set(column: usize, mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Self { column, constraint: ColumnConstraint::Set(ids) }
    }

    /// Builds a predicate from an operator and an id literal.
    pub fn from_op(column: usize, op: Op, id: u32) -> Self {
        match op {
            Op::Eq => Self::eq(column, id),
            Op::Neq => Self::neq(column, id),
            Op::Lt => Self::lt(column, id),
            Op::Le => Self::le(column, id),
            Op::Gt => Self::gt(column, id),
            Op::Ge => Self::ge(column, id),
        }
    }

    /// Builds a predicate from a decoded [`Value`] literal by consulting the
    /// column's dictionary. Literals outside the domain are snapped to the
    /// nearest id consistent with the operator semantics (an `=` on an
    /// absent literal produces an empty constraint).
    pub fn from_value(column_index: usize, column: &Column, op: Op, literal: &Value) -> Self {
        let exact = column.encode(literal);
        match op {
            Op::Eq => match exact {
                Some(id) => Self::eq(column_index, id),
                None => Self { column: column_index, constraint: ColumnConstraint::Empty },
            },
            Op::Neq => match exact {
                Some(id) => Self::neq(column_index, id),
                None => Self { column: column_index, constraint: ColumnConstraint::Any },
            },
            Op::Le => match column.encode_le(literal) {
                Some(id) => Self::le(column_index, id),
                None => Self { column: column_index, constraint: ColumnConstraint::Empty },
            },
            Op::Lt => {
                // x < v  ≡  x <= largest domain value strictly below v
                let bound = match exact {
                    Some(id) => id.checked_sub(1),
                    None => column.encode_le(literal),
                };
                match bound {
                    Some(id) => Self::le(column_index, id),
                    None => Self { column: column_index, constraint: ColumnConstraint::Empty },
                }
            }
            Op::Ge => match column.encode_ge(literal) {
                Some(id) => Self::ge(column_index, id),
                None => Self { column: column_index, constraint: ColumnConstraint::Empty },
            },
            Op::Gt => {
                let bound = match exact {
                    Some(id) => {
                        if (id as usize) + 1 < column.domain_size() {
                            Some(id + 1)
                        } else {
                            None
                        }
                    }
                    None => column.encode_ge(literal),
                };
                match bound {
                    Some(id) => Self::ge(column_index, id),
                    None => Self { column: column_index, constraint: ColumnConstraint::Empty },
                }
            }
        }
    }

    /// Whether the encoded id satisfies the predicate.
    pub fn matches(&self, id: u32) -> bool {
        self.constraint.matches(id)
    }
}

/// The set of ids a column is restricted to. `Any` means the column is not
/// filtered (a wildcard in the paper's terminology).
///
/// The derived `Ord` is an arbitrary-but-total structural order; it exists
/// so batch schedulers can sort compiled constraint vectors and place
/// queries sharing a column prefix next to each other (see
/// `Session::estimate_batch` in `naru-core`), not to express set inclusion.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ColumnConstraint {
    /// No restriction.
    Any,
    /// The empty set (an unsatisfiable predicate).
    Empty,
    /// Inclusive id range; `hi` may exceed the domain size (it is clamped
    /// when evaluated against a concrete domain).
    Range {
        /// Lower bound (inclusive).
        lo: u32,
        /// Upper bound (inclusive).
        hi: u32,
    },
    /// An explicit sorted set of ids (the `IN` operator).
    Set(Vec<u32>),
    /// Everything except one id (`≠`).
    Exclude(u32),
    /// Everything except the given sorted set of ids (the intersection of
    /// two or more distinct `≠` predicates).
    ExcludeSet(Vec<u32>),
}

impl ColumnConstraint {
    /// Whether `id` satisfies the constraint.
    pub fn matches(&self, id: u32) -> bool {
        match self {
            ColumnConstraint::Any => true,
            ColumnConstraint::Empty => false,
            ColumnConstraint::Range { lo, hi } => id >= *lo && id <= *hi,
            ColumnConstraint::Set(ids) => ids.binary_search(&id).is_ok(),
            ColumnConstraint::Exclude(v) => id != *v,
            ColumnConstraint::ExcludeSet(ids) => ids.binary_search(&id).is_err(),
        }
    }

    /// Number of ids in `[0, domain)` satisfying the constraint.
    pub fn count(&self, domain: usize) -> u64 {
        match self {
            ColumnConstraint::Any => domain as u64,
            ColumnConstraint::Empty => 0,
            ColumnConstraint::Range { lo, hi } => {
                let lo = *lo as u64;
                let hi = (*hi as u64).min(domain.saturating_sub(1) as u64);
                if lo > hi || domain == 0 {
                    0
                } else {
                    hi - lo + 1
                }
            }
            ColumnConstraint::Set(ids) => ids.iter().filter(|&&id| (id as usize) < domain).count() as u64,
            ColumnConstraint::Exclude(v) => {
                if (*v as usize) < domain {
                    domain as u64 - 1
                } else {
                    domain as u64
                }
            }
            ColumnConstraint::ExcludeSet(ids) => {
                let excluded = ids.iter().filter(|&&id| (id as usize) < domain).count() as u64;
                domain as u64 - excluded
            }
        }
    }

    /// Intersection of two constraints (conjunction of predicates on the
    /// same column).
    pub fn intersect(&self, other: &ColumnConstraint) -> ColumnConstraint {
        use ColumnConstraint::*;
        match (self, other) {
            (Any, x) | (x, Any) => x.clone(),
            (Empty, _) | (_, Empty) => Empty,
            (Range { lo: a, hi: b }, Range { lo: c, hi: d }) => {
                let lo = (*a).max(*c);
                let hi = (*b).min(*d);
                if lo > hi {
                    Empty
                } else {
                    Range { lo, hi }
                }
            }
            (Set(ids), other) | (other, Set(ids)) => {
                let filtered: Vec<u32> = ids.iter().copied().filter(|&id| other.matches(id)).collect();
                if filtered.is_empty() {
                    Empty
                } else {
                    Set(filtered)
                }
            }
            (Exclude(a), Exclude(b)) => {
                if a == b {
                    Exclude(*a)
                } else {
                    ExcludeSet(vec![(*a).min(*b), (*a).max(*b)])
                }
            }
            (Exclude(a), ExcludeSet(ids)) | (ExcludeSet(ids), Exclude(a)) => {
                let mut merged = ids.clone();
                if let Err(pos) = merged.binary_search(a) {
                    merged.insert(pos, *a);
                }
                ExcludeSet(merged)
            }
            (ExcludeSet(a), ExcludeSet(b)) => {
                let mut merged = a.clone();
                for id in b {
                    if let Err(pos) = merged.binary_search(id) {
                        merged.insert(pos, *id);
                    }
                }
                ExcludeSet(merged)
            }
            (Exclude(v), Range { lo, hi }) | (Range { lo, hi }, Exclude(v)) => {
                Self::range_minus(*lo, *hi, std::slice::from_ref(v))
            }
            (ExcludeSet(ids), Range { lo, hi }) | (Range { lo, hi }, ExcludeSet(ids)) => {
                Self::range_minus(*lo, *hi, ids)
            }
        }
    }

    /// Materialization budget for `range_minus` (64M ids ≈ 256 MB): the
    /// smaller of the in-range and complement representations is always
    /// chosen, so this only guards pathological synthetic literals —
    /// dictionary domains are orders of magnitude smaller.
    const RANGE_ENUM_LIMIT: u64 = 1 << 26;

    /// `[lo, hi] \ excluded` (with `excluded` sorted), as an exact
    /// constraint. Small ranges with interior holes materialize as a `Set`;
    /// huge ranges (e.g. `>=` constraints with `hi == u32::MAX`) flip to the
    /// complement representation `ExcludeSet([0, lo) ∪ holes ∪ (hi, MAX])`,
    /// which is small whenever the range's edges are near the id-space
    /// boundaries.
    fn range_minus(lo: u32, hi: u32, excluded: &[u32]) -> ColumnConstraint {
        use ColumnConstraint::*;
        let mut lo = lo;
        let mut hi = hi;
        // Trim exclusions sitting exactly on the bounds.
        loop {
            if lo > hi {
                return Empty;
            }
            if excluded.binary_search(&lo).is_ok() {
                if lo == hi {
                    return Empty;
                }
                lo += 1;
            } else if excluded.binary_search(&hi).is_ok() {
                hi -= 1;
            } else {
                break;
            }
        }
        let interior: Vec<u32> = excluded.iter().copied().filter(|&v| v > lo && v < hi).collect();
        if interior.is_empty() {
            return Range { lo, hi };
        }
        let span = hi as u64 - lo as u64 + 1;
        let outside = lo as u64 + (u32::MAX as u64 - hi as u64) + interior.len() as u64;
        if span <= outside {
            // A hole strictly inside a bounded range: enumerate the
            // surviving ids as a set.
            assert!(
                span - interior.len() as u64 <= Self::RANGE_ENUM_LIMIT,
                "hole-punched range [{lo}, {hi}] is too large to materialize"
            );
            return Set((lo..=hi).filter(|id| interior.binary_search(id).is_err()).collect());
        }
        // Complement form, exact over the whole id space: excluded ids are
        // everything below `lo`, the interior holes, and everything above
        // `hi` (the pieces are disjoint and appended in ascending order).
        // This keeps `>=`-style ranges (`hi == u32::MAX`) symbolic.
        assert!(outside <= Self::RANGE_ENUM_LIMIT, "hole-punched range [{lo}, {hi}] is too large to materialize");
        let mut excl: Vec<u32> = (0..lo).collect();
        excl.extend(interior);
        if hi < u32::MAX {
            excl.extend(hi + 1..=u32::MAX);
        }
        ExcludeSet(excl)
    }

    /// The ids in `[0, domain)` satisfying the constraint, materialized.
    /// Only call for constraints known to be small (used by enumeration).
    pub fn materialize(&self, domain: usize) -> Vec<u32> {
        (0..domain as u32).filter(|&id| self.matches(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_data::Value;

    #[test]
    fn operators_build_expected_constraints() {
        assert_eq!(Predicate::eq(0, 5).constraint, ColumnConstraint::Range { lo: 5, hi: 5 });
        assert_eq!(Predicate::le(0, 5).constraint, ColumnConstraint::Range { lo: 0, hi: 5 });
        assert_eq!(Predicate::lt(0, 0).constraint, ColumnConstraint::Empty);
        assert_eq!(Predicate::gt(0, 3).constraint, ColumnConstraint::Range { lo: 4, hi: u32::MAX });
        assert_eq!(Predicate::between(0, 7, 3).constraint, ColumnConstraint::Empty);
    }

    #[test]
    fn matches_and_count_agree() {
        let domain = 10usize;
        let constraints = vec![
            ColumnConstraint::Any,
            ColumnConstraint::Empty,
            ColumnConstraint::Range { lo: 2, hi: 5 },
            ColumnConstraint::Range { lo: 8, hi: 200 },
            ColumnConstraint::Set(vec![1, 3, 9, 42]),
            ColumnConstraint::Exclude(4),
            ColumnConstraint::ExcludeSet(vec![2, 7, 42]),
        ];
        for c in constraints {
            let brute = (0..domain as u32).filter(|&id| c.matches(id)).count() as u64;
            assert_eq!(brute, c.count(domain), "constraint {c:?}");
        }
    }

    #[test]
    fn intersect_matches_logical_and() {
        let domain = 12usize;
        let cases = vec![
            (ColumnConstraint::Range { lo: 2, hi: 9 }, ColumnConstraint::Range { lo: 5, hi: 20 }),
            (ColumnConstraint::Range { lo: 2, hi: 9 }, ColumnConstraint::Exclude(5)),
            (ColumnConstraint::Range { lo: 2, hi: 9 }, ColumnConstraint::Exclude(2)),
            (ColumnConstraint::Set(vec![1, 4, 7]), ColumnConstraint::Range { lo: 4, hi: 8 }),
            (ColumnConstraint::Any, ColumnConstraint::Exclude(3)),
            (ColumnConstraint::Empty, ColumnConstraint::Any),
            (ColumnConstraint::Range { lo: 5, hi: 5 }, ColumnConstraint::Exclude(5)),
            (ColumnConstraint::Exclude(3), ColumnConstraint::Exclude(0)),
            (ColumnConstraint::Exclude(3), ColumnConstraint::Exclude(3)),
            (ColumnConstraint::ExcludeSet(vec![0, 3]), ColumnConstraint::Exclude(7)),
            (ColumnConstraint::ExcludeSet(vec![0, 3]), ColumnConstraint::ExcludeSet(vec![3, 9])),
            (ColumnConstraint::ExcludeSet(vec![2, 4]), ColumnConstraint::Range { lo: 2, hi: 9 }),
            (ColumnConstraint::ExcludeSet(vec![2, 9]), ColumnConstraint::Range { lo: 2, hi: 9 }),
            (ColumnConstraint::ExcludeSet(vec![5, 6]), ColumnConstraint::Range { lo: 5, hi: 6 }),
            (ColumnConstraint::ExcludeSet(vec![1, 8]), ColumnConstraint::Set(vec![1, 4, 8])),
        ];
        for (a, b) in cases {
            let inter = a.intersect(&b);
            for id in 0..domain as u32 {
                assert_eq!(inter.matches(id), a.matches(id) && b.matches(id), "a={a:?} b={b:?} id={id}");
            }
        }
    }

    #[test]
    fn unbounded_range_intersect_exclusion_stays_symbolic() {
        // `x >= 5 AND x != 10` must not try to materialize [5, u32::MAX];
        // it flips to the complement representation instead.
        let ge = Predicate::ge(0, 5).constraint;
        let inter = ge.intersect(&ColumnConstraint::Exclude(10));
        assert_eq!(inter, ColumnConstraint::ExcludeSet(vec![0, 1, 2, 3, 4, 10]));
        for id in 0..100u32 {
            assert_eq!(inter.matches(id), id >= 5 && id != 10);
        }
        assert_eq!(inter.count(20), 14);
        // Same through the query-compilation surface, plus a bounded upper
        // edge (`x > 2 AND x <= MAX-3` style holes near both boundaries).
        let q = crate::Query::new(vec![Predicate::ge(0, 5), Predicate::neq(0, 10), Predicate::neq(0, 7)]);
        let c = &q.constraints(1)[0];
        for id in 0..100u32 {
            assert_eq!(c.matches(id), id >= 5 && id != 10 && id != 7);
        }
        let le = ColumnConstraint::Range { lo: 3, hi: u32::MAX - 2 };
        let inter = le.intersect(&ColumnConstraint::Exclude(9));
        for id in [0, 3, 8, 9, 10, u32::MAX - 2, u32::MAX - 1, u32::MAX] {
            assert_eq!(inter.matches(id), (3..=u32::MAX - 2).contains(&id) && id != 9, "id {id}");
        }
    }

    #[test]
    fn wide_bounded_range_intersect_exclusion_materializes() {
        // A bounded range wider than any dictionary domain still intersects
        // an interior exclusion without panicking (regression: the first
        // complement-form implementation rejected this shape).
        let wide = ColumnConstraint::Range { lo: 0, hi: 69_999 };
        let inter = wide.intersect(&ColumnConstraint::Exclude(5));
        match &inter {
            ColumnConstraint::Set(ids) => assert_eq!(ids.len(), 69_999),
            other => panic!("expected Set, got {other:?}"),
        }
        assert!(!inter.matches(5) && inter.matches(4) && inter.matches(69_999));
    }

    #[test]
    fn from_value_handles_absent_literals() {
        let col = Column::from_values("x", &[Value::Int(10), Value::Int(20), Value::Int(30)]);
        // 25 is absent: x <= 25 means id <= 1; x >= 25 means id >= 2.
        let le = Predicate::from_value(0, &col, Op::Le, &Value::Int(25));
        assert_eq!(le.constraint, ColumnConstraint::Range { lo: 0, hi: 1 });
        let ge = Predicate::from_value(0, &col, Op::Ge, &Value::Int(25));
        assert_eq!(ge.constraint, ColumnConstraint::Range { lo: 2, hi: u32::MAX });
        let eq = Predicate::from_value(0, &col, Op::Eq, &Value::Int(25));
        assert_eq!(eq.constraint, ColumnConstraint::Empty);
        let neq = Predicate::from_value(0, &col, Op::Neq, &Value::Int(25));
        assert_eq!(neq.constraint, ColumnConstraint::Any);
        // Strict comparisons on present literals.
        let lt = Predicate::from_value(0, &col, Op::Lt, &Value::Int(20));
        assert_eq!(lt.constraint, ColumnConstraint::Range { lo: 0, hi: 0 });
        let gt = Predicate::from_value(0, &col, Op::Gt, &Value::Int(30));
        assert_eq!(gt.constraint, ColumnConstraint::Empty);
    }

    #[test]
    fn in_set_dedups_and_sorts() {
        let p = Predicate::in_set(2, vec![5, 1, 5, 3]);
        assert_eq!(p.constraint, ColumnConstraint::Set(vec![1, 3, 5]));
        assert!(p.matches(3));
        assert!(!p.matches(2));
    }

    #[test]
    fn materialize_small_constraint() {
        let c = ColumnConstraint::Range { lo: 3, hi: 5 };
        assert_eq!(c.materialize(10), vec![3, 4, 5]);
        assert_eq!(ColumnConstraint::Exclude(1).materialize(4), vec![0, 2, 3]);
    }

    #[test]
    fn op_symbols() {
        assert_eq!(Op::Le.symbol(), "<=");
        assert_eq!(Op::ALL.len(), 6);
    }
}
