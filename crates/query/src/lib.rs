//! # naru-query
//!
//! Query representation, workload generation, ground-truth execution and
//! accuracy metrics for the Naru reproduction.
//!
//! * [`predicate`] — predicates over dictionary-encoded columns and the
//!   per-column [`ColumnConstraint`] representation consumed by estimators,
//! * [`query`] — conjunctive [`Query`] plus the [`SelectivityEstimator`]
//!   trait implemented by Naru and every baseline,
//! * [`estimate`] — the rich [`Estimate`] result (with its tier
//!   [`Provenance`] tag) and typed [`EstimateError`] shared by every
//!   estimator's fallible entry points,
//! * [`key`] — the order-normalized, hashable [`QueryKey`] used by result
//!   caches to dedupe semantically identical queries,
//! * [`executor`] — exact selectivity by scanning (ground truth),
//! * [`workload`] — the §6.1.3 query generator (in-distribution and OOD),
//! * [`metrics`] — the multiplicative error (q-error) and the
//!   median/95th/99th/max reporting used by the paper's tables,
//! * [`wire`] — the line-oriented text encoding of queries spoken by the
//!   network front end (`naru-net`), with typed decode errors.

#![forbid(unsafe_code)]

pub mod estimate;
pub mod executor;
pub mod key;
pub mod metrics;
pub mod predicate;
pub mod query;
pub mod wire;
pub mod workload;

pub use estimate::{Estimate, EstimateError, Provenance};
pub use executor::{count_matches, true_selectivity, try_count_matches};
pub use key::QueryKey;
pub use metrics::{q_error, q_error_from_estimate, q_error_from_selectivity, ErrorQuantiles, SelectivityBucket};
pub use predicate::{ColumnConstraint, Op, Predicate};
pub use query::{Query, SelectivityEstimator};
pub use wire::{decode_query, decode_query_with, encode_predicate, encode_query, WireError, WireLimits};
pub use workload::{generate_query, generate_workload, split_by_bucket, LabeledQuery, LiteralSource, WorkloadConfig};
