//! Property-based tests for the query layer: constraint algebra against
//! brute force, executor consistency, workload generator guarantees, and
//! metric invariants.

use naru_data::{Column, Table};
use naru_query::{
    count_matches, generate_workload, q_error, true_selectivity, ColumnConstraint, ErrorQuantiles, Op, Predicate,
    Query, SelectivityBucket, WorkloadConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn constraint_strategy() -> impl Strategy<Value = ColumnConstraint> {
    prop_oneof![
        Just(ColumnConstraint::Any),
        Just(ColumnConstraint::Empty),
        (0u32..20, 0u32..20).prop_map(|(a, b)| ColumnConstraint::Range { lo: a.min(b), hi: a.max(b) }),
        proptest::collection::vec(0u32..20, 1..6).prop_map(|mut ids| {
            ids.sort_unstable();
            ids.dedup();
            ColumnConstraint::Set(ids)
        }),
        (0u32..20).prop_map(ColumnConstraint::Exclude),
        proptest::collection::vec(0u32..20, 1..6).prop_map(|mut ids| {
            ids.sort_unstable();
            ids.dedup();
            ColumnConstraint::ExcludeSet(ids)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Intersection is commutative, matches logical AND, and never enlarges
    /// either operand.
    #[test]
    fn intersection_algebra(a in constraint_strategy(), b in constraint_strategy()) {
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        for id in 0..20u32 {
            let expected = a.matches(id) && b.matches(id);
            prop_assert_eq!(ab.matches(id), expected);
            prop_assert_eq!(ba.matches(id), expected);
            if ab.matches(id) {
                prop_assert!(a.matches(id) && b.matches(id));
            }
        }
        prop_assert!(ab.count(20) <= a.count(20).min(b.count(20)));
    }

    /// `count` equals brute-force membership counting for any domain size.
    #[test]
    fn count_matches_bruteforce(c in constraint_strategy(), domain in 1usize..40) {
        let brute = (0..domain as u32).filter(|&id| c.matches(id)).count() as u64;
        prop_assert_eq!(c.count(domain), brute);
        prop_assert_eq!(c.materialize(domain).len() as u64, brute);
    }

    /// Executor counting equals row-by-row predicate evaluation.
    #[test]
    fn executor_matches_row_scan(
        rows in proptest::collection::vec((0u32..6, 0u32..5, 0u32..4), 1..150),
        op_idx in 0usize..6, lit in 0u32..6, col in 0usize..3,
    ) {
        let t = Table::new("t", vec![
            Column::from_ids("a", rows.iter().map(|r| r.0).collect(), 6),
            Column::from_ids("b", rows.iter().map(|r| r.1).collect(), 5),
            Column::from_ids("c", rows.iter().map(|r| r.2).collect(), 4),
        ]);
        let op = Op::ALL[op_idx];
        let q = Query::new(vec![Predicate::from_op(col, op, lit), Predicate::ge(1, 1)]);
        let by_scan = (0..t.num_rows()).filter(|&r| q.matches_row(&t.row(r))).count() as u64;
        prop_assert_eq!(count_matches(&t, &q), by_scan);
        let sel = true_selectivity(&t, &q);
        prop_assert!((sel - by_scan as f64 / t.num_rows() as f64).abs() < 1e-12);
    }

    /// q-error invariants: >= 1, symmetric, equals the cardinality ratio when
    /// both cardinalities are at least one.
    #[test]
    fn q_error_invariants(a in 1.0f64..1e8, b in 1.0f64..1e8) {
        let e = q_error(a, b);
        prop_assert!(e >= 1.0 - 1e-12);
        prop_assert!((e - q_error(b, a)).abs() < 1e-9);
        prop_assert!((e - (a / b).max(b / a)).abs() < 1e-9);
    }

    /// Error quantiles are ordered and bounded by the extremes of the data.
    #[test]
    fn quantiles_ordered(errors in proptest::collection::vec(1.0f64..1e6, 1..200)) {
        let q = ErrorQuantiles::from_errors(&errors).unwrap();
        prop_assert!(q.median <= q.p95 + 1e-9);
        prop_assert!(q.p95 <= q.p99 + 1e-9);
        prop_assert!(q.p99 <= q.max + 1e-9);
        let min = errors.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(q.median >= min - 1e-9);
        prop_assert_eq!(q.count, errors.len());
    }

    /// Bucket classification is consistent with the thresholds.
    #[test]
    fn bucket_thresholds(sel in 0.0f64..=1.0) {
        match SelectivityBucket::classify(sel) {
            SelectivityBucket::High => prop_assert!(sel > 0.02),
            SelectivityBucket::Medium => prop_assert!(sel > 0.005 && sel <= 0.02),
            SelectivityBucket::Low => prop_assert!(sel <= 0.005),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Workload generator guarantees: filter counts within bounds, literals
    /// valid for their domains, and true selectivities consistent with a
    /// re-execution.
    #[test]
    fn workload_generator_guarantees(seed in 0u64..500) {
        let table = naru_data::synthetic::dmv_like(600, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let config = WorkloadConfig::default();
        let workload = generate_workload(&table, &config, 5, &mut rng);
        for lq in &workload {
            let f = lq.query.num_filtered_columns(table.num_columns());
            prop_assert!(f >= config.min_filters.min(table.num_columns()));
            prop_assert!(f <= config.max_filters);
            let re = true_selectivity(&table, &lq.query);
            prop_assert!((re - lq.selectivity).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&lq.selectivity));
        }
    }
}
