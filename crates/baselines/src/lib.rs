//! # naru-baselines
//!
//! The selectivity estimators the paper compares Naru against (Table 2),
//! all implemented over the same table/query substrate and the same
//! [`naru_query::SelectivityEstimator`] trait:
//!
//! | Estimator | Module | Paper row |
//! |---|---|---|
//! | Exact per-column marginals × independence | [`indep`] | Indep |
//! | Per-column MCV + equi-depth histograms     | [`histogram1d`] | Postgres |
//! | 1D stats + pairwise distinct-count correction | [`histogram1d`] | DBMS-1 |
//! | N-dimensional equi-width histogram         | [`multidim`] | Hist |
//! | Uniform materialized sample                | [`sample`] | Sample |
//! | Gaussian KDE (Scott's rule / query-tuned)  | [`kde`] | KDE, KDE-superv |
//! | Supervised deep regression + sample bitmap | [`mscn`] | MSCN-base/-0/-10K |
//! | Exact full scan (reference only)           | [`exact`] | Full Joint |

#![forbid(unsafe_code)]

pub mod exact;
pub mod histogram1d;
pub mod indep;
pub mod kde;
pub mod mscn;
pub mod multidim;
pub mod sample;

pub use exact::ExactScanEstimator;
pub use histogram1d::{Dbms1Estimator, Histogram1dConfig, PostgresEstimator};
pub use indep::IndepEstimator;
pub use kde::{KdeEstimator, KdeSupervised};
pub use mscn::{MscnConfig, MscnEstimator};
pub use multidim::MultiDimHistogram;
pub use sample::SampleEstimator;
