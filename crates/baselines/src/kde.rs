//! Kernel-density-estimation baselines ("KDE" and "KDE-superv" in Table 2).
//!
//! Following Heimel et al. / Kiefer et al., the data distribution is
//! approximated by product-Gaussian kernels centred on a uniform sample of
//! tuples (in the dictionary-id space). A range predicate's selectivity is
//! the average, over sample points, of the product over filtered columns of
//! the Gaussian mass falling inside the range.
//!
//! * [`KdeEstimator`] chooses each column's bandwidth with Scott's rule —
//!   the unsupervised variant the paper shows struggling on
//!   high-dimensional, discrete data.
//! * [`KdeSupervised`] additionally tunes a global bandwidth scale by grid
//!   search on a set of training queries with known cardinalities (query
//!   feedback), the paper's "KDE-superv".

use std::time::Instant;

use naru_data::Table;
use naru_query::{ColumnConstraint, Estimate, EstimateError, LabeledQuery, Query, SelectivityEstimator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max absolute error ≈ 1.5e-7, ample for selectivity estimation).
fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let a1 = 0.254829592;
    let a2 = -0.284496736;
    let a3 = 1.421413741;
    let a4 = -1.453152027;
    let a5 = 1.061405429;
    let p = 0.3275911;
    let t = 1.0 / (1.0 + p * x);
    let y = 1.0 - (((((a5 * t + a4) * t) + a3) * t + a2) * t + a1) * t * (-x * x).exp();
    sign * y
}

/// Gaussian kernel-density estimator over a tuple sample.
pub struct KdeEstimator {
    /// Sample points (id space), row-major: `points[p][col]`.
    points: Vec<Vec<f64>>,
    /// Per-column bandwidths (Scott's rule, scaled by `bandwidth_scale`).
    bandwidths: Vec<f64>,
    /// Global multiplicative bandwidth adjustment (1.0 unless tuned).
    bandwidth_scale: f64,
    domains: Vec<usize>,
    label: String,
    num_rows: u64,
}

impl KdeEstimator {
    /// Builds a KDE over `sample_rows` uniformly sampled tuples with
    /// Scott's-rule bandwidths.
    pub fn build(table: &Table, sample_rows: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = table.sample_row_indices(&mut rng, sample_rows.min(table.num_rows()));
        let d = table.num_columns();
        let points: Vec<Vec<f64>> =
            rows.iter().map(|&r| (0..d).map(|c| table.column(c).id_at(r) as f64).collect()).collect();
        let n = points.len().max(1) as f64;

        // Scott's rule: h_i = sigma_i * n^(-1 / (d + 4)).
        let mut bandwidths = Vec::with_capacity(d);
        for c in 0..d {
            let mean: f64 = points.iter().map(|p| p[c]).sum::<f64>() / n;
            let var: f64 = points.iter().map(|p| (p[c] - mean).powi(2)).sum::<f64>() / n;
            let sigma = var.sqrt().max(0.5); // at least half an id of spread
            bandwidths.push(sigma * n.powf(-1.0 / (d as f64 + 4.0)));
        }

        Self {
            points,
            bandwidths,
            bandwidth_scale: 1.0,
            domains: table.columns().iter().map(|c| c.domain_size()).collect(),
            label: "KDE".to_string(),
            num_rows: table.num_rows() as u64,
        }
    }

    /// Number of kernel centres.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Overrides the global bandwidth scale (used by the supervised tuner).
    pub fn set_bandwidth_scale(&mut self, scale: f64) {
        assert!(scale > 0.0, "bandwidth scale must be positive");
        self.bandwidth_scale = scale;
    }

    fn kernel_mass(&self, point: f64, bandwidth: f64, constraint: &ColumnConstraint, domain: usize) -> f64 {
        let h = (bandwidth * self.bandwidth_scale).max(1e-6);
        // Probability mass the kernel centred at `point` assigns to the
        // constrained id set, treating each id as the interval
        // [id - 0.5, id + 0.5] (continuity correction for discrete ids).
        let interval = |lo: f64, hi: f64| normal_cdf((hi - point) / h) - normal_cdf((lo - point) / h);
        match constraint {
            ColumnConstraint::Any => 1.0,
            ColumnConstraint::Empty => 0.0,
            ColumnConstraint::Range { lo, hi } => {
                let hi = (*hi as usize).min(domain.saturating_sub(1)) as f64;
                interval(*lo as f64 - 0.5, hi + 0.5)
            }
            ColumnConstraint::Set(ids) => ids
                .iter()
                .filter(|&&id| (id as usize) < domain)
                .map(|&id| interval(id as f64 - 0.5, id as f64 + 0.5))
                .sum(),
            ColumnConstraint::Exclude(v) => {
                let full = interval(-0.5, domain as f64 - 0.5);
                (full - interval(*v as f64 - 0.5, *v as f64 + 0.5)).max(0.0)
            }
            ColumnConstraint::ExcludeSet(ids) => {
                let full = interval(-0.5, domain as f64 - 0.5);
                let holes: f64 = ids
                    .iter()
                    .filter(|&&id| (id as usize) < domain)
                    .map(|&id| interval(id as f64 - 0.5, id as f64 + 0.5))
                    .sum();
                (full - holes).max(0.0)
            }
        }
    }
}

impl SelectivityEstimator for KdeEstimator {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        let start = Instant::now();
        if self.points.is_empty() {
            return Err(EstimateError::untrained("KDE has no kernel centres (empty sample)"));
        }
        let constraints = query.try_constraints(self.domains.len())?;
        let mut total = 0.0f64;
        for point in &self.points {
            let mut mass = 1.0f64;
            for (c, constraint) in constraints.iter().enumerate() {
                if matches!(constraint, ColumnConstraint::Any) {
                    continue;
                }
                mass *= self.kernel_mass(point[c], self.bandwidths[c], constraint, self.domains[c]);
                if mass == 0.0 {
                    break;
                }
            }
            total += mass;
        }
        let sel = (total / self.points.len() as f64).clamp(0.0, 1.0);
        Ok(Estimate::closed_form(sel, self.num_rows, start.elapsed()))
    }

    fn size_bytes(&self) -> usize {
        // Points are materialized as f64 plus one bandwidth per column.
        self.points.len() * self.domains.len() * 8 + self.bandwidths.len() * 8
    }
}

/// KDE with the bandwidth scale tuned by query feedback.
pub struct KdeSupervised {
    inner: KdeEstimator,
}

impl KdeSupervised {
    /// Builds the KDE, then grid-searches a global bandwidth multiplier that
    /// minimizes the mean log q-error over the training queries.
    pub fn build(table: &Table, sample_rows: usize, seed: u64, training: &[LabeledQuery]) -> Self {
        let mut inner = KdeEstimator::build(table, sample_rows, seed);
        inner.label = "KDE-superv".to_string();
        let num_rows = table.num_rows();
        let candidates = [0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
        let mut best = (f64::INFINITY, 1.0);
        for &scale in &candidates {
            inner.set_bandwidth_scale(scale);
            let mut score = 0.0;
            for lq in training {
                let est = inner.try_estimate(&lq.query).map_or(0.0, |e| e.selectivity);
                score += naru_query::q_error_from_selectivity(est, lq.selectivity, num_rows).ln();
            }
            if score < best.0 {
                best = (score, scale);
            }
        }
        inner.set_bandwidth_scale(best.1);
        Self { inner }
    }

    /// The tuned bandwidth scale.
    pub fn bandwidth_scale(&self) -> f64 {
        self.inner.bandwidth_scale
    }
}

impl SelectivityEstimator for KdeSupervised {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        self.inner.try_estimate(query)
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_data::synthetic::{correlated_pair, dmv_like};
    use naru_query::{generate_workload, q_error_from_selectivity, true_selectivity, Predicate, WorkloadConfig};

    fn sel(est: &dyn SelectivityEstimator, q: &Query) -> f64 {
        est.try_estimate(q).expect("valid query").selectivity
    }

    #[test]
    fn normal_cdf_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(normal_cdf(5.0) > 0.9999);
        assert!(normal_cdf(-5.0) < 0.0001);
        assert!((normal_cdf(1.0) - 0.8413).abs() < 1e-3);
    }

    #[test]
    fn kde_reasonable_on_wide_range_queries() {
        let t = dmv_like(6000, 1);
        let kde = KdeEstimator::build(&t, 1500, 2);
        let q = Query::new(vec![Predicate::le(6, 1500)]);
        let truth = true_selectivity(&t, &q);
        let err = q_error_from_selectivity(sel(&kde, &q), truth, t.num_rows());
        assert!(err < 3.0, "q-error {err}");
    }

    #[test]
    fn kde_estimates_stay_in_unit_interval() {
        let t = correlated_pair(2000, 12, 0.9, 3);
        let kde = KdeEstimator::build(&t, 300, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let workload = generate_workload(
            &t,
            &WorkloadConfig { min_filters: 1, max_filters: 2, ..Default::default() },
            20,
            &mut rng,
        );
        for lq in workload {
            let s = sel(&kde, &lq.query);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn supervised_tuning_never_hurts_on_training_set() {
        let t = dmv_like(4000, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let training = generate_workload(&t, &WorkloadConfig::default(), 40, &mut rng);
        let kde = KdeEstimator::build(&t, 800, 6);
        let superv = KdeSupervised::build(&t, 800, 6, &training);
        let score = |est: &dyn SelectivityEstimator| -> f64 {
            training
                .iter()
                .map(|lq| q_error_from_selectivity(sel(est, &lq.query), lq.selectivity, t.num_rows()).ln())
                .sum()
        };
        assert!(score(&superv) <= score(&kde) + 1e-9);
        assert_eq!(superv.name(), "KDE-superv");
        assert!(superv.bandwidth_scale() > 0.0);
    }

    #[test]
    fn size_scales_with_sample_points() {
        let t = dmv_like(2000, 7);
        let small = KdeEstimator::build(&t, 100, 1);
        let large = KdeEstimator::build(&t, 1000, 1);
        assert!(large.size_bytes() > small.size_bytes());
        assert_eq!(small.num_points(), 100);
    }
}
