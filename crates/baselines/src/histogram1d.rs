//! Real-system-style 1D statistics: "Postgres" and "DBMS-1" stand-ins.
//!
//! Both estimators in the paper's Table 2 that represent real systems build
//! *per-column* statistics and combine them under independence and
//! within-bucket uniformity assumptions:
//!
//! * [`PostgresEstimator`] models `pg_stats`: a most-common-values (MCV)
//!   list with exact frequencies plus an equi-depth histogram over the
//!   remaining values, per column.
//! * [`Dbms1Estimator`] adds what the paper describes as "inter-column
//!   unique value counts": for the most correlated column pairs it stores
//!   the number of distinct value *pairs*, and scales the independence
//!   product by `(d_a · d_b) / d_ab` — the classic distinct-count
//!   correlation correction used by commercial optimizers.
//!
//! The per-column MCV + equi-depth structure itself lives in
//! [`naru_core::stats::ColumnHistogram`], shared with the serving path's
//! tier-1 sketch router; this module only supplies the Table-2 estimator
//! framing around it.

use std::time::Instant;

use naru_core::stats::ColumnHistogram;
use naru_data::Table;
use naru_query::{ColumnConstraint, Estimate, EstimateError, Query, SelectivityEstimator};

/// How many MCVs and buckets each column gets.
#[derive(Debug, Clone, Copy)]
pub struct Histogram1dConfig {
    /// Most-common-value list length per column (Postgres default is 100;
    /// the paper tunes `statistics_target` up to 10 000).
    pub num_mcv: usize,
    /// Equi-depth bucket count per column.
    pub num_buckets: usize,
}

impl Default for Histogram1dConfig {
    fn default() -> Self {
        Self { num_mcv: 100, num_buckets: 100 }
    }
}

/// Postgres-style estimator: per-column MCV + equi-depth histogram combined
/// under independence.
pub struct PostgresEstimator {
    stats: Vec<ColumnHistogram>,
    num_rows: u64,
}

impl PostgresEstimator {
    /// Builds statistics for every column.
    pub fn build(table: &Table, config: &Histogram1dConfig) -> Self {
        let stats = table
            .columns()
            .iter()
            .map(|c| ColumnHistogram::build(&c.value_counts(), table.num_rows(), config.num_mcv, config.num_buckets))
            .collect();
        Self { stats, num_rows: table.num_rows() as u64 }
    }
}

impl SelectivityEstimator for PostgresEstimator {
    fn name(&self) -> String {
        "Postgres".to_string()
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        let start = Instant::now();
        let constraints = query.try_constraints(self.stats.len())?;
        let sel = constraints
            .iter()
            .enumerate()
            .map(|(col, c)| self.stats[col].selectivity(c))
            .product::<f64>()
            .clamp(0.0, 1.0);
        Ok(Estimate::closed_form(sel, self.num_rows, start.elapsed()))
    }

    fn size_bytes(&self) -> usize {
        self.stats.iter().map(ColumnHistogram::size_bytes).sum()
    }
}

/// DBMS-1-style estimator: Postgres statistics plus pairwise distinct-count
/// correlation corrections.
pub struct Dbms1Estimator {
    base: PostgresEstimator,
    /// Per-column distinct counts.
    distinct: Vec<f64>,
    /// For selected column pairs `(a, b)`: distinct count of the value pair.
    pair_distinct: Vec<(usize, usize, f64)>,
}

impl Dbms1Estimator {
    /// Builds statistics; `max_pairs` bounds how many column pairs get a
    /// joint distinct count (commercial systems only keep a few).
    pub fn build(table: &Table, config: &Histogram1dConfig, max_pairs: usize) -> Self {
        let base = PostgresEstimator::build(table, config);
        let distinct: Vec<f64> =
            table.columns().iter().map(|c| c.value_counts().iter().filter(|&&cnt| cnt > 0).count() as f64).collect();

        // Score pairs by the strength of the correction and keep the top ones.
        let n_cols = table.num_columns();
        let mut pairs = Vec::new();
        for a in 0..n_cols {
            for b in (a + 1)..n_cols {
                let mut seen = std::collections::HashSet::new();
                for row in 0..table.num_rows() {
                    seen.insert((table.column(a).id_at(row), table.column(b).id_at(row)));
                }
                let d_ab = seen.len() as f64;
                let correction = (distinct[a] * distinct[b]) / d_ab.max(1.0);
                pairs.push((a, b, d_ab, correction));
            }
        }
        pairs.sort_by(|x, y| y.3.partial_cmp(&x.3).unwrap_or(std::cmp::Ordering::Equal));
        let pair_distinct = pairs.into_iter().take(max_pairs).map(|(a, b, d, _)| (a, b, d)).collect();
        Self { base, distinct, pair_distinct }
    }
}

impl SelectivityEstimator for Dbms1Estimator {
    fn name(&self) -> String {
        "DBMS-1".to_string()
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        let start = Instant::now();
        let constraints = query.try_constraints(self.base.stats.len())?;
        let mut estimate: f64 =
            constraints.iter().enumerate().map(|(col, c)| self.base.stats[col].selectivity(c)).product();
        // Apply the distinct-count correction for every tracked pair whose
        // two columns are both filtered: the independence product is too low
        // by roughly (d_a * d_b) / d_ab for correlated pairs.
        let filtered: Vec<bool> = constraints.iter().map(|c| !matches!(c, ColumnConstraint::Any)).collect();
        for &(a, b, d_ab) in &self.pair_distinct {
            if filtered[a] && filtered[b] {
                let correction = (self.distinct[a] * self.distinct[b]) / d_ab.max(1.0);
                estimate *= correction.max(1.0);
            }
        }
        Ok(Estimate::closed_form(estimate.clamp(0.0, 1.0), self.base.num_rows, start.elapsed()))
    }

    fn size_bytes(&self) -> usize {
        self.base.size_bytes() + self.distinct.len() * 8 + self.pair_distinct.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_data::synthetic::{correlated_pair, dmv_like, independent_table};
    use naru_query::{q_error_from_selectivity, true_selectivity, Predicate};

    fn sel(est: &dyn SelectivityEstimator, q: &Query) -> f64 {
        est.try_estimate(q).expect("valid query").selectivity
    }

    #[test]
    fn postgres_is_accurate_on_single_column_mcv_values() {
        let t = dmv_like(5000, 1);
        let est = PostgresEstimator::build(&t, &Histogram1dConfig::default());
        // record_type has 4 values, all MCVs: single-column equality should
        // be near-exact.
        let q = Query::new(vec![Predicate::eq(0, 0)]);
        let truth = true_selectivity(&t, &q);
        assert!((sel(&est, &q) - truth).abs() < 0.02, "{} vs {truth}", sel(&est, &q));
    }

    #[test]
    fn postgres_range_estimates_are_reasonable_on_one_column() {
        let t = dmv_like(5000, 2);
        let est = PostgresEstimator::build(&t, &Histogram1dConfig::default());
        let q = Query::new(vec![Predicate::le(6, 1000)]); // valid_date range
        let truth = true_selectivity(&t, &q);
        let err = q_error_from_selectivity(sel(&est, &q), truth, t.num_rows());
        assert!(err < 3.0, "q-error {err}");
    }

    #[test]
    fn postgres_underestimates_correlated_conjunctions() {
        let t = correlated_pair(5000, 30, 0.95, 3);
        let est = PostgresEstimator::build(&t, &Histogram1dConfig::default());
        let q = Query::new(vec![Predicate::eq(0, 0), Predicate::eq(1, 0)]);
        let truth = true_selectivity(&t, &q);
        assert!(sel(&est, &q) < truth * 0.8);
    }

    #[test]
    fn dbms1_correction_improves_on_postgres_for_correlated_pairs() {
        let t = correlated_pair(5000, 30, 0.95, 4);
        let pg = PostgresEstimator::build(&t, &Histogram1dConfig::default());
        let dbms1 = Dbms1Estimator::build(&t, &Histogram1dConfig::default(), 4);
        let q = Query::new(vec![Predicate::eq(0, 0), Predicate::eq(1, 0)]);
        let truth = true_selectivity(&t, &q);
        let pg_err = q_error_from_selectivity(sel(&pg, &q), truth, t.num_rows());
        let dbms1_err = q_error_from_selectivity(sel(&dbms1, &q), truth, t.num_rows());
        assert!(dbms1_err <= pg_err, "dbms1 {dbms1_err} should beat postgres {pg_err}");
    }

    #[test]
    fn estimates_are_probabilities_on_independent_data() {
        let t = independent_table(2000, &[5, 17, 120], 5);
        let pg = PostgresEstimator::build(&t, &Histogram1dConfig::default());
        let dbms1 = Dbms1Estimator::build(&t, &Histogram1dConfig::default(), 2);
        let queries = vec![
            Query::new(vec![Predicate::le(2, 50)]),
            Query::new(vec![Predicate::eq(0, 1), Predicate::ge(1, 3), Predicate::le(2, 80)]),
            Query::all(),
        ];
        for q in &queries {
            for est in [&pg as &dyn SelectivityEstimator, &dbms1] {
                let s = sel(est, q);
                assert!((0.0..=1.0).contains(&s), "{} returned {s}", est.name());
            }
        }
    }

    #[test]
    fn sizes_and_names() {
        let t = independent_table(500, &[5, 7], 6);
        let pg = PostgresEstimator::build(&t, &Histogram1dConfig { num_mcv: 4, num_buckets: 8 });
        let dbms1 = Dbms1Estimator::build(&t, &Histogram1dConfig::default(), 1);
        assert!(pg.size_bytes() > 0);
        assert!(dbms1.size_bytes() > pg.size_bytes() / 2);
        assert_eq!(pg.name(), "Postgres");
        assert_eq!(dbms1.name(), "DBMS-1");
    }
}
