//! The independence-assumption baseline ("Indep" in Table 2).
//!
//! Indep keeps the *exact* per-column value frequencies and combines them by
//! multiplication. Its errors therefore measure the inaccuracy attributable
//! purely to the column-independence assumption — per-column estimates are
//! perfect by construction.

use std::time::Instant;

use naru_data::Table;
use naru_query::{ColumnConstraint, Estimate, EstimateError, Query, SelectivityEstimator};

/// Exact per-column marginals combined under independence.
pub struct IndepEstimator {
    /// Per-column relative frequencies, indexed by dictionary id.
    marginals: Vec<Vec<f64>>,
    num_rows: u64,
}

impl IndepEstimator {
    /// Builds the estimator by scanning each column once.
    pub fn build(table: &Table) -> Self {
        let n = table.num_rows().max(1) as f64;
        let marginals =
            table.columns().iter().map(|c| c.value_counts().iter().map(|&cnt| cnt as f64 / n).collect()).collect();
        Self { marginals, num_rows: table.num_rows() as u64 }
    }

    /// Selectivity of one column constraint under the exact marginal.
    fn column_selectivity(&self, col: usize, constraint: &ColumnConstraint) -> f64 {
        match constraint {
            ColumnConstraint::Any => 1.0,
            _ => self.marginals[col]
                .iter()
                .enumerate()
                .filter(|(id, _)| constraint.matches(*id as u32))
                .map(|(_, &p)| p)
                .sum(),
        }
    }
}

impl SelectivityEstimator for IndepEstimator {
    fn name(&self) -> String {
        "Indep".to_string()
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        let start = Instant::now();
        let constraints = query.try_constraints(self.marginals.len())?;
        let sel = constraints
            .iter()
            .enumerate()
            .map(|(col, c)| self.column_selectivity(col, c))
            .product::<f64>()
            .clamp(0.0, 1.0);
        Ok(Estimate::closed_form(sel, self.num_rows, start.elapsed()))
    }

    fn size_bytes(&self) -> usize {
        self.marginals.iter().map(|m| m.len() * std::mem::size_of::<f64>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_data::synthetic::{correlated_pair, independent_table};
    use naru_data::Column;
    use naru_query::{true_selectivity, Predicate};

    fn sel(est: &IndepEstimator, q: &Query) -> f64 {
        est.try_estimate(q).expect("valid query").selectivity
    }

    #[test]
    fn exact_on_single_column_queries() {
        let t = Table::new("t", vec![Column::from_ids("a", vec![0, 0, 0, 1, 2, 2], 3)]);
        let est = IndepEstimator::build(&t);
        let q = Query::new(vec![Predicate::eq(0, 0)]);
        assert!((sel(&est, &q) - 0.5).abs() < 1e-12);
        let q = Query::new(vec![Predicate::ge(0, 1)]);
        assert!((sel(&est, &q) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn near_exact_on_independent_data() {
        let t = independent_table(5000, &[4, 6, 3], 1);
        let est = IndepEstimator::build(&t);
        let q = Query::new(vec![Predicate::eq(0, 0), Predicate::le(1, 2)]);
        let truth = true_selectivity(&t, &q);
        assert!((sel(&est, &q) - truth).abs() < 0.03);
    }

    #[test]
    fn badly_wrong_on_correlated_data() {
        // b == a with high probability; P(a=0, b=0) ≈ P(a=0) but the
        // independence product squares it.
        let t = correlated_pair(5000, 20, 0.95, 2);
        let est = IndepEstimator::build(&t);
        let q = Query::new(vec![Predicate::eq(0, 0), Predicate::eq(1, 0)]);
        let truth = true_selectivity(&t, &q);
        let guess = sel(&est, &q);
        assert!(guess < truth * 0.7, "independence should underestimate: {guess} vs {truth}");
    }

    #[test]
    fn unfiltered_query_is_one_and_size_reported() {
        let t = independent_table(100, &[3, 3], 3);
        let est = IndepEstimator::build(&t);
        let full = est.try_estimate(&Query::all()).unwrap();
        assert_eq!(full.selectivity, 1.0);
        assert_eq!(full.cardinality(), 100);
        assert_eq!(full.live_paths, None);
        assert_eq!(est.size_bytes(), (3 + 3) * 8);
        assert_eq!(est.name(), "Indep");
    }

    #[test]
    fn out_of_range_predicate_is_a_typed_error() {
        let t = independent_table(100, &[3, 3], 3);
        let est = IndepEstimator::build(&t);
        let q = Query::new(vec![Predicate::eq(9, 0)]);
        assert_eq!(est.try_estimate(&q), Err(EstimateError::ColumnOutOfRange { column: 9, num_columns: 2 }));
    }
}
