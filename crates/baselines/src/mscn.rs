//! The supervised deep-regression baseline ("MSCN" in Table 2).
//!
//! Kipf et al.'s multi-set convolutional network predicts cardinalities
//! from (a) a featurization of the query's predicates and (b) a bitmap of
//! which tuples of a small materialized sample satisfy the query. This
//! reimplementation keeps both defining ingredients — query features and
//! sample-hit features — on top of the workspace's own MLP substrate, and
//! is trained with supervision on a set of (query, true-cardinality) pairs,
//! exactly the protocol of §6.1.2:
//!
//! * `MSCN-base` — 1 000 sample rows,
//! * `MSCN-10K`  — 10 000 sample rows (better tail accuracy),
//! * `MSCN-0`    — no materialized sample, query features only (much worse).
//!
//! Because it is query-driven, the model inherits the out-of-distribution
//! fragility measured in Table 5: queries unlike the training distribution
//! confuse the regressor.

use std::time::Instant;

use naru_data::Table;
use naru_nn::loss::mse;
use naru_nn::optimizer::AdamConfig;
use naru_nn::Mlp;
use naru_query::{count_matches, ColumnConstraint, Estimate, EstimateError, LabeledQuery, Query, SelectivityEstimator};
use naru_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration of the MSCN-style estimator.
#[derive(Debug, Clone)]
pub struct MscnConfig {
    /// Number of materialized sample rows (0 = the MSCN-0 variant).
    pub sample_rows: usize,
    /// Hidden layer widths of the regression MLP.
    pub hidden_sizes: Vec<usize>,
    /// Training epochs over the labeled query set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed (sampling + initialization + shuffling).
    pub seed: u64,
}

impl Default for MscnConfig {
    fn default() -> Self {
        Self {
            sample_rows: 1000,
            hidden_sizes: vec![128, 64],
            epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
            seed: 0,
        }
    }
}

impl MscnConfig {
    /// The paper's `MSCN-base` setup (1K samples).
    pub fn base() -> Self {
        Self::default()
    }

    /// The paper's `MSCN-10K` setup.
    pub fn with_10k_samples() -> Self {
        Self { sample_rows: 10_000, ..Self::default() }
    }

    /// The paper's `MSCN-0` setup (no materialized sample).
    pub fn without_samples() -> Self {
        Self { sample_rows: 0, ..Self::default() }
    }
}

/// Supervised deep regression estimator.
pub struct MscnEstimator {
    net: Mlp,
    sample: Option<Table>,
    domains: Vec<usize>,
    name: String,
    /// Lower bound used when flooring log-selectivity targets (1 tuple).
    min_log_sel: f32,
    num_rows: u64,
}

impl MscnEstimator {
    /// Featurization width: 6 features per column plus one sample-hit
    /// fraction feature.
    fn feature_width(num_columns: usize) -> usize {
        num_columns * 6 + 1
    }

    /// Encodes a query into its feature vector.
    fn featurize(&self, query: &Query) -> Vec<f32> {
        featurize(query, &self.domains, self.sample.as_ref())
    }

    /// Trains the regressor on labeled queries generated from the same
    /// distribution as the test workload (the supervised protocol).
    pub fn train(table: &Table, training: &[LabeledQuery], config: &MscnConfig) -> Self {
        assert!(!training.is_empty(), "MSCN needs a supervised training workload");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let domains: Vec<usize> = table.columns().iter().map(|c| c.domain_size()).collect();
        let sample = if config.sample_rows > 0 {
            let rows = table.sample_row_indices(&mut rng, config.sample_rows.min(table.num_rows()));
            Some(table.take_rows(&rows))
        } else {
            None
        };

        let in_dim = Self::feature_width(domains.len());
        let mut dims = vec![in_dim];
        dims.extend_from_slice(&config.hidden_sizes);
        dims.push(1);
        let mut net = Mlp::new(&mut rng, &dims);

        let num_rows = table.num_rows().max(1) as f64;
        let min_log_sel = (1.0 / num_rows).ln() as f32;
        let name = match (config.sample_rows, sample.as_ref()) {
            (0, _) | (_, None) => "MSCN-0".to_string(),
            (r, _) if r >= 10_000 => "MSCN-10K".to_string(),
            _ => "MSCN-base".to_string(),
        };

        // Pre-compute features and targets.
        let features: Vec<Vec<f32>> =
            training.iter().map(|lq| featurize(&lq.query, &domains, sample.as_ref())).collect();
        let targets: Vec<f32> = training.iter().map(|lq| (lq.selectivity.max(1.0 / num_rows)).ln() as f32).collect();

        let adam = AdamConfig { lr: config.learning_rate, ..Default::default() };
        let mut order: Vec<usize> = (0..training.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch_size.max(1)) {
                let rows: Vec<&[f32]> = chunk.iter().map(|&i| features[i].as_slice()).collect();
                let x = Matrix::from_rows(&rows);
                let y: Vec<f32> = chunk.iter().map(|&i| targets[i]).collect();
                let (out, trace) = net.forward_train(&x);
                let preds: Vec<f32> = (0..out.rows()).map(|r| out.get(r, 0)).collect();
                let (_, grad) = mse(&preds, &y);
                let grad_m = Matrix::from_vec(grad.len(), 1, grad);
                net.zero_grad();
                net.backward(&trace, &grad_m);
                net.adam_step(&adam);
            }
        }

        Self { net, sample, domains, name, min_log_sel, num_rows: table.num_rows() as u64 }
    }
}

/// Builds the feature vector for a query: per column
/// `[filtered, is_eq, has_upper, has_lower, lo/domain, hi/domain]`, plus the
/// fraction of materialized-sample rows satisfying the query.
fn featurize(query: &Query, domains: &[usize], sample: Option<&Table>) -> Vec<f32> {
    let constraints = query.constraints(domains.len());
    let mut features = Vec::with_capacity(domains.len() * 6 + 1);
    for (col, constraint) in constraints.iter().enumerate() {
        let domain = domains[col] as f32;
        match constraint {
            ColumnConstraint::Any => features.extend_from_slice(&[0.0; 6]),
            ColumnConstraint::Empty => features.extend_from_slice(&[1.0, 0.0, 1.0, 1.0, 0.0, 0.0]),
            ColumnConstraint::Range { lo, hi } => {
                let hi_clamped = (*hi as f32).min(domain - 1.0);
                let is_eq = if lo == hi { 1.0 } else { 0.0 };
                let has_upper = if (*hi as usize) < domains[col] - 1 || is_eq == 1.0 { 1.0 } else { 0.0 };
                let has_lower = if *lo > 0 || is_eq == 1.0 { 1.0 } else { 0.0 };
                features.extend_from_slice(&[
                    1.0,
                    is_eq,
                    has_upper,
                    has_lower,
                    *lo as f32 / domain,
                    hi_clamped / domain,
                ]);
            }
            ColumnConstraint::Set(ids) => {
                let lo = ids.first().copied().unwrap_or(0) as f32;
                let hi = ids.last().copied().unwrap_or(0) as f32;
                features.extend_from_slice(&[1.0, 0.0, 1.0, 1.0, lo / domain, hi / domain]);
            }
            ColumnConstraint::Exclude(v) => {
                features.extend_from_slice(&[1.0, 0.0, 0.0, 0.0, *v as f32 / domain, *v as f32 / domain]);
            }
            ColumnConstraint::ExcludeSet(ids) => {
                let lo = ids.first().copied().unwrap_or(0) as f32;
                let hi = ids.last().copied().unwrap_or(0) as f32;
                features.extend_from_slice(&[1.0, 0.0, 0.0, 0.0, lo / domain, hi / domain]);
            }
        }
    }
    let hit_fraction = match sample {
        Some(s) if s.num_rows() > 0 => count_matches(s, query) as f32 / s.num_rows() as f32,
        _ => 0.0,
    };
    features.push(hit_fraction);
    features
}

impl SelectivityEstimator for MscnEstimator {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        let start = Instant::now();
        // Validate before featurizing: `featurize` calls `constraints`.
        query.validate_columns(self.domains.len())?;
        let features = self.featurize(query);
        let x = Matrix::from_rows(&[features.as_slice()]);
        let out = self.net.forward(&x);
        let log_sel = out.get(0, 0).max(self.min_log_sel).min(0.0);
        let sel = (log_sel as f64).exp().clamp(0.0, 1.0);
        Ok(Estimate::closed_form(sel, self.num_rows, start.elapsed()))
    }

    fn size_bytes(&self) -> usize {
        let sample_bytes = self.sample.as_ref().map(|s| s.num_rows() * s.num_columns() * 4).unwrap_or(0);
        self.net.size_bytes() + sample_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_data::synthetic::dmv_like;
    use naru_query::{generate_workload, q_error_from_selectivity, WorkloadConfig};
    use naru_tensor::stats::percentile;

    fn sel(est: &dyn SelectivityEstimator, q: &Query) -> f64 {
        est.try_estimate(q).expect("valid query").selectivity
    }

    fn median_qerror(est: &dyn SelectivityEstimator, workload: &[LabeledQuery], rows: usize) -> f64 {
        let errs: Vec<f64> =
            workload.iter().map(|lq| q_error_from_selectivity(sel(est, &lq.query), lq.selectivity, rows)).collect();
        percentile(&errs, 50.0)
    }

    #[test]
    fn mscn_learns_the_training_distribution() {
        let t = dmv_like(5000, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let training = generate_workload(&t, &WorkloadConfig::default(), 300, &mut rng);
        let test = generate_workload(&t, &WorkloadConfig::default(), 60, &mut rng);
        let config = MscnConfig { sample_rows: 500, epochs: 40, ..Default::default() };
        let mscn = MscnEstimator::train(&t, &training, &config);
        let med = median_qerror(&mscn, &test, t.num_rows());
        assert!(med < 30.0, "median q-error {med} too high for in-distribution queries");
    }

    #[test]
    fn sample_variant_beats_no_sample_variant() {
        let t = dmv_like(5000, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let training = generate_workload(&t, &WorkloadConfig::default(), 250, &mut rng);
        let test = generate_workload(&t, &WorkloadConfig::default(), 50, &mut rng);
        let with_sample =
            MscnEstimator::train(&t, &training, &MscnConfig { sample_rows: 1000, epochs: 30, ..Default::default() });
        let without =
            MscnEstimator::train(&t, &training, &MscnConfig { sample_rows: 0, epochs: 30, ..Default::default() });
        let med_with = median_qerror(&with_sample, &test, t.num_rows());
        let med_without = median_qerror(&without, &test, t.num_rows());
        assert!(med_with <= med_without * 1.5, "sample variant {med_with} should not be much worse than {med_without}");
        assert_eq!(with_sample.name(), "MSCN-base");
        assert_eq!(without.name(), "MSCN-0");
    }

    #[test]
    fn estimates_are_valid_selectivities() {
        let t = dmv_like(2000, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let training = generate_workload(&t, &WorkloadConfig::default(), 100, &mut rng);
        let mscn = MscnEstimator::train(&t, &training, &MscnConfig { epochs: 10, ..Default::default() });
        for lq in &training[..20] {
            let s = sel(&mscn, &lq.query);
            assert!((0.0..=1.0).contains(&s));
        }
        assert!(mscn.size_bytes() > 0);
    }

    #[test]
    fn feature_width_matches_featurizer() {
        let t = dmv_like(500, 4);
        let domains: Vec<usize> = t.columns().iter().map(|c| c.domain_size()).collect();
        let q = Query::new(vec![naru_query::Predicate::eq(0, 1), naru_query::Predicate::le(6, 100)]);
        let f = featurize(&q, &domains, None);
        assert_eq!(f.len(), MscnEstimator::feature_width(t.num_columns()));
        // Unfiltered columns contribute all-zero blocks.
        assert_eq!(&f[6..12], &[0.0; 6]);
    }
}
