//! The N-dimensional histogram baseline ("Hist" in Table 2).
//!
//! Every column's id space is partitioned into equi-width cells; the joint
//! grid stores the tuple count per cell. The per-column cell count is chosen
//! as large as the storage budget allows (the paper: "we increase
//! per-column bin sizes as much as possible ... otherwise it achieves
//! perfect accuracy given unlimited space"). Queries sum fully-covered
//! cells exactly and pro-rate partially-covered cells by the overlapped
//! volume fraction (uniformity within cells).
//!
//! The grid is stored sparsely (only non-empty cells), which is what makes
//! the approach usable at all for ten-plus columns — yet accuracy still
//! degrades sharply because cells become enormous hyper-rectangles.

use std::collections::HashMap;
use std::time::Instant;

use naru_data::Table;
use naru_query::{ColumnConstraint, Estimate, EstimateError, Query, SelectivityEstimator};

/// Equi-width N-dimensional histogram over dictionary ids.
pub struct MultiDimHistogram {
    /// Number of cells along each column.
    bins_per_column: Vec<usize>,
    /// Cell width (in ids) along each column.
    widths: Vec<usize>,
    /// Domain size of each column.
    domains: Vec<usize>,
    /// Sparse cell → row-count map, keyed by the per-column cell indices.
    cells: HashMap<Vec<u16>, u64>,
    num_rows: u64,
}

impl MultiDimHistogram {
    /// Builds a histogram with `bins` cells along every column (clamped to
    /// each column's domain size).
    pub fn build(table: &Table, bins: usize) -> Self {
        let domains: Vec<usize> = table.columns().iter().map(|c| c.domain_size()).collect();
        let bins_per_column: Vec<usize> = domains.iter().map(|&d| bins.clamp(1, d)).collect();
        let widths: Vec<usize> =
            domains.iter().zip(bins_per_column.iter()).map(|(&d, &b)| (d as f64 / b as f64).ceil() as usize).collect();

        let mut cells: HashMap<Vec<u16>, u64> = HashMap::new();
        for row in 0..table.num_rows() {
            let key: Vec<u16> = (0..table.num_columns())
                .map(|c| ((table.column(c).id_at(row) as usize / widths[c]).min(bins_per_column[c] - 1)) as u16)
                .collect();
            *cells.entry(key).or_insert(0) += 1;
        }
        Self { bins_per_column, widths, domains, cells, num_rows: table.num_rows() as u64 }
    }

    /// Builds the largest histogram whose sparse representation fits in
    /// `budget_bytes`, trying progressively smaller per-column bin counts.
    pub fn build_within_budget(table: &Table, budget_bytes: usize) -> Self {
        let mut bins = 16usize;
        loop {
            let hist = Self::build(table, bins);
            if hist.size_bytes() <= budget_bytes || bins == 1 {
                return hist;
            }
            bins /= 2;
        }
    }

    /// Fraction of the cell along column `col` at index `cell` that overlaps
    /// the constraint.
    fn overlap_fraction(&self, col: usize, cell: usize, constraint: &ColumnConstraint) -> f64 {
        let lo = cell * self.widths[col];
        let hi = ((cell + 1) * self.widths[col]).min(self.domains[col]) - 1;
        let width = (hi - lo + 1) as f64;
        let covered = (lo..=hi).filter(|&id| constraint.matches(id as u32)).count() as f64;
        covered / width
    }
}

impl SelectivityEstimator for MultiDimHistogram {
    fn name(&self) -> String {
        "Hist".to_string()
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        let start = Instant::now();
        if self.num_rows == 0 {
            return Err(EstimateError::untrained("histogram built over zero rows"));
        }
        let constraints = query.try_constraints(self.domains.len())?;
        let mut matched = 0.0f64;
        for (key, &count) in &self.cells {
            let mut fraction = 1.0f64;
            for (col, constraint) in constraints.iter().enumerate() {
                if matches!(constraint, ColumnConstraint::Any) {
                    continue;
                }
                let f = self.overlap_fraction(col, key[col] as usize, constraint);
                if f == 0.0 {
                    fraction = 0.0;
                    break;
                }
                fraction *= f;
            }
            matched += fraction * count as f64;
        }
        let sel = (matched / self.num_rows as f64).clamp(0.0, 1.0);
        Ok(Estimate::closed_form(sel, self.num_rows, start.elapsed()))
    }

    fn size_bytes(&self) -> usize {
        // Each sparse cell stores one u16 per column plus a u64 count.
        self.cells.len() * (self.domains.len() * 2 + 8) + self.bins_per_column.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_data::synthetic::{correlated_pair, dmv_like};
    use naru_data::Column;
    use naru_query::{q_error_from_selectivity, true_selectivity, Predicate};

    fn sel(est: &MultiDimHistogram, q: &Query) -> f64 {
        est.try_estimate(q).expect("valid query").selectivity
    }

    #[test]
    fn exact_when_bins_cover_domains() {
        // With one bin per distinct value the histogram is the exact joint.
        let t = correlated_pair(2000, 8, 0.9, 1);
        let hist = MultiDimHistogram::build(&t, 8);
        let queries = vec![
            Query::new(vec![Predicate::eq(0, 0), Predicate::eq(1, 0)]),
            Query::new(vec![Predicate::le(0, 3), Predicate::ge(1, 2)]),
        ];
        for q in queries {
            let truth = true_selectivity(&t, &q);
            assert!((sel(&hist, &q) - truth).abs() < 1e-9);
        }
    }

    #[test]
    fn coarse_bins_lose_accuracy_but_stay_bounded() {
        let t = dmv_like(4000, 2);
        let hist = MultiDimHistogram::build(&t, 2);
        let q = Query::new(vec![Predicate::le(6, 500), Predicate::eq(0, 0), Predicate::ge(7, 10)]);
        let truth = true_selectivity(&t, &q);
        let est = sel(&hist, &q);
        assert!((0.0..=1.0).contains(&est));
        // Accuracy is poor but not absurd on a 3-filter query.
        let err = q_error_from_selectivity(est, truth, t.num_rows());
        assert!(err.is_finite());
    }

    #[test]
    fn budgeted_build_respects_budget() {
        let t = dmv_like(3000, 3);
        let budget = 60_000;
        let hist = MultiDimHistogram::build_within_budget(&t, budget);
        assert!(hist.size_bytes() <= budget || hist.bins_per_column.iter().all(|&b| b == 1));
    }

    #[test]
    fn unfiltered_query_returns_one() {
        let t = Table::new("t", vec![Column::from_ids("a", vec![0, 1, 2, 3], 4)]);
        let hist = MultiDimHistogram::build(&t, 2);
        assert_eq!(sel(&hist, &Query::all()), 1.0);
        assert_eq!(hist.name(), "Hist");
    }

    #[test]
    fn partial_cell_overlap_is_prorated() {
        // One column, ids 0..4 uniform, 2 bins of width 2. The query id<=0
        // covers half of the first bin -> estimate 0.25.
        let t = Table::new("t", vec![Column::from_ids("a", vec![0, 1, 2, 3], 4)]);
        let hist = MultiDimHistogram::build(&t, 2);
        let q = Query::new(vec![Predicate::le(0, 0)]);
        assert!((sel(&hist, &q) - 0.25).abs() < 1e-9);
    }
}
