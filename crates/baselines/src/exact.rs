//! The exact full-scan "estimator".
//!
//! Not a practical estimator (it keeps the whole table and scans it per
//! query), but useful as the perfect-accuracy reference in tests and as the
//! "Full Joint" end of the accuracy/storage spectrum sketched in Figure 1.

use std::time::Instant;

use naru_data::Table;
use naru_query::{try_count_matches, Estimate, EstimateError, Query, SelectivityEstimator};

/// Scans the full table for every estimate; always exact.
pub struct ExactScanEstimator {
    table: Table,
}

impl ExactScanEstimator {
    /// Keeps a copy of the table.
    pub fn build(table: &Table) -> Self {
        Self { table: table.clone() }
    }
}

impl SelectivityEstimator for ExactScanEstimator {
    fn name(&self) -> String {
        "ExactScan".to_string()
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        let start = Instant::now();
        let rows = self.table.num_rows() as u64;
        let matches = try_count_matches(&self.table, query)?;
        let sel = if rows == 0 { 0.0 } else { matches as f64 / rows as f64 };
        Ok(Estimate::closed_form(sel, rows, start.elapsed()))
    }

    fn size_bytes(&self) -> usize {
        self.table.num_rows() * self.table.num_columns() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_data::synthetic::correlated_pair;
    use naru_query::{true_selectivity, Predicate};

    #[test]
    fn exact_scan_is_exact() {
        let t = correlated_pair(1000, 5, 0.8, 1);
        let est = ExactScanEstimator::build(&t);
        let q = Query::new(vec![Predicate::eq(0, 0), Predicate::le(1, 2)]);
        let estimate = est.try_estimate(&q).unwrap();
        assert_eq!(estimate.selectivity, true_selectivity(&t, &q));
        assert_eq!(estimate.cardinality(), (estimate.selectivity * 1000.0).round() as u64);
        assert_eq!(est.name(), "ExactScan");
        assert_eq!(est.size_bytes(), 1000 * 2 * 4);
    }

    #[test]
    fn out_of_range_predicate_is_a_typed_error() {
        let t = correlated_pair(100, 4, 0.8, 2);
        let est = ExactScanEstimator::build(&t);
        let q = Query::new(vec![Predicate::eq(7, 0)]);
        assert_eq!(est.try_estimate(&q), Err(EstimateError::ColumnOutOfRange { column: 7, num_columns: 2 }));
    }
}
