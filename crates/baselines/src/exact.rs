//! The exact full-scan "estimator".
//!
//! Not a practical estimator (it keeps the whole table and scans it per
//! query), but useful as the perfect-accuracy reference in tests and as the
//! "Full Joint" end of the accuracy/storage spectrum sketched in Figure 1.

use naru_data::Table;
use naru_query::{true_selectivity, Query, SelectivityEstimator};

/// Scans the full table for every estimate; always exact.
pub struct ExactScanEstimator {
    table: Table,
}

impl ExactScanEstimator {
    /// Keeps a copy of the table.
    pub fn build(table: &Table) -> Self {
        Self { table: table.clone() }
    }
}

impl SelectivityEstimator for ExactScanEstimator {
    fn name(&self) -> String {
        "ExactScan".to_string()
    }

    fn estimate(&self, query: &Query) -> f64 {
        true_selectivity(&self.table, query)
    }

    fn size_bytes(&self) -> usize {
        self.table.num_rows() * self.table.num_columns() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_data::synthetic::correlated_pair;
    use naru_query::Predicate;

    #[test]
    fn exact_scan_is_exact() {
        let t = correlated_pair(1000, 5, 0.8, 1);
        let est = ExactScanEstimator::build(&t);
        let q = Query::new(vec![Predicate::eq(0, 0), Predicate::le(1, 2)]);
        assert_eq!(est.estimate(&q), true_selectivity(&t, &q));
        assert_eq!(est.name(), "ExactScan");
        assert_eq!(est.size_bytes(), 1000 * 2 * 4);
    }
}
