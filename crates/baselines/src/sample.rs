//! The uniform-sampling baseline ("Sample" in Table 2).
//!
//! Keeps a p% uniform sample of the tuples in memory and answers a query by
//! evaluating it on the sample. Excellent for high-selectivity queries,
//! collapses once the true cardinality drops below ~1/sample-size (no hits
//! in the sample), which is exactly the behaviour Tables 3–5 show.
//!
//! The sample itself lives in [`naru_core::stats::TableSample`], shared
//! with the serving path's statistics sidecar; this module wraps it in the
//! Table-2 [`SelectivityEstimator`] framing.

use std::time::Instant;

use naru_core::stats::TableSample;
use naru_data::Table;
use naru_query::{Estimate, EstimateError, Query, SelectivityEstimator};

/// Uniform materialized-sample estimator.
pub struct SampleEstimator {
    sample: TableSample,
    name: String,
}

impl SampleEstimator {
    /// Keeps `fraction` of the table's rows, sampled uniformly without
    /// replacement.
    pub fn build(table: &Table, fraction: f64, seed: u64) -> Self {
        Self::wrap(TableSample::build(table, fraction, seed), table.num_rows())
    }

    /// Keeps exactly `k` rows.
    pub fn build_with_rows(table: &Table, k: usize, seed: u64) -> Self {
        Self::wrap(TableSample::build_with_rows(table, k, seed), table.num_rows())
    }

    fn wrap(sample: TableSample, table_rows: usize) -> Self {
        let pct = 100.0 * sample.num_rows() as f64 / table_rows.max(1) as f64;
        let name = format!("Sample({pct:.1}%)");
        Self { sample, name }
    }

    /// Number of rows kept.
    pub fn sample_rows(&self) -> usize {
        self.sample.num_rows()
    }
}

impl SelectivityEstimator for SampleEstimator {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        let start = Instant::now();
        let sel = self.sample.try_selectivity(query)?;
        Ok(Estimate::closed_form(sel, self.sample.table_rows(), start.elapsed()))
    }

    fn size_bytes(&self) -> usize {
        self.sample.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_data::synthetic::dmv_like;
    use naru_query::{q_error_from_selectivity, true_selectivity, Predicate};

    fn sel(est: &SampleEstimator, q: &Query) -> f64 {
        est.try_estimate(q).expect("valid query").selectivity
    }

    #[test]
    fn accurate_on_high_selectivity_queries() {
        let t = dmv_like(8000, 1);
        let est = SampleEstimator::build(&t, 0.05, 7);
        // Single coarse filter: high selectivity.
        let q = Query::new(vec![Predicate::le(6, 1500)]);
        let truth = true_selectivity(&t, &q);
        let err = q_error_from_selectivity(sel(&est, &q), truth, t.num_rows());
        assert!(err < 1.3, "q-error {err}");
    }

    #[test]
    fn fails_on_low_selectivity_queries() {
        let t = dmv_like(8000, 2);
        let est = SampleEstimator::build(&t, 0.01, 3);
        // A very selective conjunction: the 80-row sample almost surely has
        // no hits, so the estimate collapses to 0.
        let q = Query::new(vec![Predicate::eq(1, 3), Predicate::eq(4, 7), Predicate::eq(6, 100), Predicate::eq(7, 3)]);
        let est_sel = sel(&est, &q);
        assert!(est_sel == 0.0 || est_sel < 0.01);
    }

    #[test]
    fn sample_size_and_reporting() {
        let t = dmv_like(1000, 3);
        let est = SampleEstimator::build(&t, 0.013, 1);
        assert_eq!(est.sample_rows(), 13);
        assert_eq!(est.size_bytes(), 13 * 11 * 4);
        assert!(est.name().starts_with("Sample("));
        let full = SampleEstimator::build(&t, 1.0, 1);
        assert_eq!(full.sample_rows(), 1000);
    }

    #[test]
    fn full_sample_is_exact() {
        let t = dmv_like(1500, 4);
        let est = SampleEstimator::build(&t, 1.0, 5);
        let q = Query::new(vec![Predicate::eq(0, 0), Predicate::le(6, 800)]);
        assert!((sel(&est, &q) - true_selectivity(&t, &q)).abs() < 1e-12);
    }
}
