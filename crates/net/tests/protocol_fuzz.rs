//! Fuzz-style robustness tests: truncated, oversized, and garbage bytes
//! fed to the HTTP parser and both wire-format decoders must produce
//! typed errors (or valid parses), never panics. The parser code itself
//! also runs under naru-lint's panic/index rule, so this suite is the
//! dynamic half of the no-panics story.

use naru_net::{read_request, read_response, HttpLimits, ProtocolError, ReadOutcome};
use naru_query::wire::{decode_query, decode_query_with, encode_query, WireLimits};
use naru_query::{ColumnConstraint, Predicate, Query};
use proptest::prelude::*;

fn lenient_limits() -> HttpLimits {
    HttpLimits::default()
}

fn byte_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255u8, 0..512)
}

/// Printable-ish text with protocol punctuation over-represented, so the
/// generator actually exercises parser branches instead of bailing on the
/// first byte.
fn texty_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            Just(b' '),
            Just(b'\r'),
            Just(b'\n'),
            Just(b':'),
            Just(b','),
            Just(b'='),
            Just(b'<'),
            Just(b'>'),
            Just(b'/'),
            0u8..=255u8,
            b'0'..=b'9',
            b'a'..=b'z',
        ],
        0..512,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The HTTP request parser is total over arbitrary bytes.
    #[test]
    fn http_parser_never_panics_on_garbage(bytes in byte_strategy()) {
        let _ = read_request(&mut bytes.as_slice(), &lenient_limits());
    }

    /// ... and over protocol-shaped garbage in particular.
    #[test]
    fn http_parser_never_panics_on_texty_garbage(bytes in texty_strategy()) {
        let _ = read_request(&mut bytes.as_slice(), &lenient_limits());
    }

    /// The client-side response parser is equally total.
    #[test]
    fn http_response_parser_never_panics(bytes in texty_strategy()) {
        let _ = read_response(&mut bytes.as_slice(), &lenient_limits());
    }

    /// Truncating a valid request at any byte yields `Closed` (empty),
    /// the full parse (complete), or a typed error — never a panic, and
    /// never a bogus `Request`.
    #[test]
    fn truncated_requests_yield_typed_errors(cut in 0usize..=200) {
        let full: &[u8] = b"POST /estimate HTTP/1.1\r\nHost: x\r\nX-Naru-Priority: batch\r\nContent-Length: 6\r\n\r\n0 <= 3";
        let cut = cut.min(full.len());
        let truncated = &full[..cut];
        match read_request(&mut &truncated[..], &lenient_limits()) {
            Ok(ReadOutcome::Closed) => prop_assert_eq!(cut, 0),
            Ok(ReadOutcome::Request(_)) => prop_assert_eq!(cut, full.len()),
            Ok(ReadOutcome::Idle) => prop_assert!(false, "byte slices cannot time out"),
            Err(e) => prop_assert_eq!(e, ProtocolError::UnexpectedEof),
        }
    }

    /// Oversized inputs hit the caps with the right typed error.
    #[test]
    fn oversized_lines_and_bodies_are_rejected(extra in 1usize..200) {
        let limits = HttpLimits { max_line_bytes: 64, max_headers: 4, max_body_bytes: 32, max_stall_reads: 4 };
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64 + extra));
        prop_assert_eq!(
            read_request(&mut long.as_bytes(), &limits).unwrap_err(),
            ProtocolError::LineTooLong { max: 64 }
        );
        let big = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 32 + extra);
        prop_assert_eq!(
            read_request(&mut big.as_bytes(), &limits).unwrap_err(),
            ProtocolError::BodyTooLarge { declared: 32 + extra, max: 32 }
        );
        let headers: String = (0..=4).map(|i| format!("h{i}: v\r\n")).collect();
        let many = format!("GET / HTTP/1.1\r\n{headers}\r\n");
        prop_assert_eq!(
            read_request(&mut many.as_bytes(), &limits).unwrap_err(),
            ProtocolError::TooManyHeaders { max: 4 }
        );
    }

    /// The query decoder is total over garbage text.
    #[test]
    fn query_decoder_never_panics(bytes in texty_strategy()) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = decode_query(&text);
        let _ = decode_query_with(&text, WireLimits { max_predicates: 4, max_set_ids: 4 });
    }

    /// The response-body decoder is total over garbage text.
    #[test]
    fn response_decoder_never_panics(bytes in texty_strategy()) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = naru_net::decode_served(&text);
    }

    /// Any normalized query round-trips losslessly through the wire text.
    #[test]
    fn queries_roundtrip_through_the_wire(predicates in proptest::collection::vec(predicate_strategy(), 0..8)) {
        let query = Query::new(predicates);
        let encoded = encode_query(&query);
        let decoded = decode_query(&encoded).unwrap();
        prop_assert!(decoded.predicates() == query.predicates(), "wire text:\n{}", encoded);
    }
}

/// Predicates in the normalized form the encoder emits (sets sorted and
/// deduped), covering every `ColumnConstraint` shape.
fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    let constraint = prop_oneof![
        Just(ColumnConstraint::Any),
        Just(ColumnConstraint::Empty),
        (0u32..40, 0u32..40).prop_map(|(a, b)| ColumnConstraint::Range { lo: a.min(b), hi: a.max(b) }),
        (0u32..40).prop_map(|lo| ColumnConstraint::Range { lo, hi: u32::MAX }),
        proptest::collection::vec(0u32..40, 1..6).prop_map(|mut ids| {
            ids.sort_unstable();
            ids.dedup();
            ColumnConstraint::Set(ids)
        }),
        (0u32..40).prop_map(ColumnConstraint::Exclude),
        proptest::collection::vec(0u32..40, 1..6).prop_map(|mut ids| {
            ids.sort_unstable();
            ids.dedup();
            ColumnConstraint::ExcludeSet(ids)
        }),
    ];
    (0usize..12, constraint).prop_map(|(column, constraint)| Predicate { column, constraint })
}
