//! Loopback integration tests: a real [`NetServer`] on 127.0.0.1, driven
//! by raw `TcpStream` clients, proving the request → lifecycle mapping
//! end to end:
//!
//! * `X-Naru-Timeout-Ms` becomes a [`Deadline`](naru_serve::Deadline) and
//!   an expired request answers **504** with `shed` incremented;
//! * a client that disconnects mid-request has its ticket cancelled —
//!   `cancelled` is incremented and the request is **never** served;
//! * after a mixed workload (success, failure, shed, cancel, rejected
//!   garbage) the accounting identity
//!   `served + failed + shed + cancelled == accepted` holds exactly.
//!
//! Worker progress is gated by a blocking density (the same trick the
//! serve-layer suite uses), so none of these tests race wall-clock timing
//! for correctness.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use naru_core::{ConditionalDensity, Engine, IndependentDensity};
use naru_net::{read_response, HttpLimits, NetConfig, NetServer, Response};
use naru_serve::{ServeConfig, Server};
use naru_tensor::Matrix;

// --- gated density: holds the worker mid-estimate until told to go ------

#[derive(Default)]
struct GateState {
    open: bool,
    entered: usize,
}

#[derive(Default)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl Gate {
    fn enter(&self) {
        let mut state = self.state.lock().unwrap();
        state.entered += 1;
        self.cv.notify_all();
        while !state.open {
            state = self.cv.wait(state).unwrap();
        }
    }

    fn open(&self) {
        self.state.lock().unwrap().open = true;
        self.cv.notify_all();
    }

    fn wait_entered(&self, n: usize) {
        let mut state = self.state.lock().unwrap();
        while state.entered < n {
            state = self.cv.wait(state).unwrap();
        }
    }
}

struct GatedDensity {
    inner: IndependentDensity,
    gate: Arc<Gate>,
}

impl GatedDensity {
    fn engine(gate: Arc<Gate>) -> Engine {
        let inner = IndependentDensity::uniform(&[6, 4]);
        Engine::new(Self { inner, gate }, 1_000).with_samples(16)
    }
}

impl ConditionalDensity for GatedDensity {
    fn num_columns(&self) -> usize {
        self.inner.num_columns()
    }

    fn domain_sizes(&self) -> &[usize] {
        self.inner.domain_sizes()
    }

    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        if col == 0 {
            self.gate.enter();
        }
        self.inner.conditionals(tuples, col)
    }
}

// --- a tiny blocking HTTP client over one keep-alive connection ----------

struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(server: &NetServer) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect to loopback server");
        stream.set_read_timeout(Some(Duration::from_millis(250))).unwrap();
        Client { stream }
    }

    fn send(&mut self, request: &str) {
        self.stream.write_all(request.as_bytes()).expect("write request");
    }

    /// Reads one response; panics (failing the test) on transport errors.
    fn read(&mut self) -> Response {
        // Generous stall budget: 250ms timeout x 240 = 60s upper bound
        // before a hung test fails instead of wedging the suite.
        let limits = HttpLimits { max_stall_reads: 240, ..HttpLimits::default() };
        read_response(&mut self.stream, &limits).expect("read response")
    }

    fn request(&mut self, request: &str) -> Response {
        self.send(request);
        self.read()
    }
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\n\r\n")
}

fn post_estimate(body: &str, headers: &[(&str, &str)]) -> String {
    let mut req = format!("POST /estimate HTTP/1.1\r\nContent-Length: {}\r\n", body.len());
    for (name, value) in headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str("\r\n");
    req.push_str(body);
    req
}

/// Pulls an integer counter out of the `/metrics` JSON body.
fn json_field(body: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\": ");
    let start = body.find(&needle).unwrap_or_else(|| panic!("field {field} missing in {body}")) + needle.len();
    body[start..].chars().take_while(|c| c.is_ascii_digit()).collect::<String>().parse().unwrap()
}

/// Polls `/metrics` until `pred` holds (or 10s pass).
fn wait_for_metrics(client: &mut Client, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let response = client.request(&get("/metrics"));
        assert_eq!(response.status, 200);
        let body = response.text();
        if pred(&body) {
            return body;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}; last metrics:\n{body}");
        #[allow(clippy::disallowed_methods)] // test-only poll beat between metrics reads
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn fast_server(workers: usize) -> NetServer {
    let engine = Engine::new(IndependentDensity::uniform(&[8, 4]), 1_000).with_samples(64);
    let serve = Server::start(engine, ServeConfig::default().with_workers(workers).with_max_batch(2)).unwrap();
    NetServer::start(serve, NetConfig::default().with_handler_threads(4)).unwrap()
}

fn gated_server(gate: Arc<Gate>) -> NetServer {
    let serve =
        Server::start(GatedDensity::engine(gate), ServeConfig::default().with_workers(1).with_max_batch(1)).unwrap();
    NetServer::start(serve, NetConfig::default().with_handler_threads(6)).unwrap()
}

// --- tests ---------------------------------------------------------------

#[test]
fn routes_estimate_and_error_mapping_over_one_keepalive_connection() {
    let server = fast_server(2);
    let mut client = Client::connect(&server);

    // Liveness.
    let health = client.request(&get("/healthz"));
    assert_eq!((health.status, health.text().as_str()), (200, "ok\n"));

    // A served estimate, decoded from the response wire format.
    let ok = client.request(&post_estimate("0 <= 3\n", &[]));
    assert_eq!(ok.status, 200, "body: {}", ok.text());
    let decoded = naru_net::decode_served(&ok.text()).expect("decodable response body");
    assert!(decoded.estimate.selectivity > 0.0 && decoded.estimate.selectivity <= 1.0);
    assert_eq!(decoded.stats.batch_size, 1);

    // Priority lane header is accepted.
    let batch = client.request(&post_estimate("1 = 2\n", &[("X-Naru-Priority", "batch")]));
    assert_eq!(batch.status, 200, "body: {}", batch.text());

    // Metrics render the shared JSON and count both served requests.
    let metrics = client.request(&get("/metrics"));
    assert_eq!(metrics.status, 200);
    assert_eq!(metrics.header("content-type"), Some("application/json"));
    let body = metrics.text();
    assert_eq!(json_field(&body, "served"), 2);
    assert_eq!(json_field(&body, "accepted"), 2);

    // Error mapping, all over the same keep-alive connection:
    // unknown path, wrong method, malformed body, bad header, and a
    // query the estimator rejects.
    assert_eq!(client.request(&get("/nope")).status, 404);
    assert_eq!(client.request("DELETE /estimate HTTP/1.1\r\n\r\n").status, 405);
    let bad_wire = client.request(&post_estimate("0 ~~ 1\n", &[]));
    assert_eq!(bad_wire.status, 400);
    assert!(bad_wire.text().contains("line 1"), "decode errors carry line numbers: {}", bad_wire.text());
    assert_eq!(client.request(&post_estimate("0 = 1\n", &[("X-Naru-Priority", "urgent")])).status, 400);
    assert_eq!(client.request(&post_estimate("0 = 1\n", &[("X-Naru-Timeout-Ms", "soon")])).status, 400);
    let out_of_range = client.request(&post_estimate("9 = 1\n", &[]));
    assert_eq!(out_of_range.status, 422, "estimator rejections map to 422: {}", out_of_range.text());

    let final_metrics = server.shutdown();
    assert_eq!(final_metrics.served, 2);
    assert_eq!(final_metrics.failed, 1);
    assert_eq!(final_metrics.accounted(), final_metrics.accepted);
}

#[test]
fn timeout_header_maps_to_504_and_sheds() {
    let gate = Arc::new(Gate::default());
    let server = gated_server(Arc::clone(&gate));

    // Occupy the single worker; the gate confirms it is mid-estimate.
    let mut blocker = Client::connect(&server);
    blocker.send(&post_estimate("0 = 1\n", &[]));
    gate.wait_entered(1);

    // A deadline request queues behind it and expires while queued.
    let mut hurried = Client::connect(&server);
    hurried.send(&post_estimate("0 = 2\n", &[("X-Naru-Timeout-Ms", "1")]));
    let mut observer = Client::connect(&server);
    wait_for_metrics(&mut observer, "deadline request accepted", |m| json_field(m, "accepted") == 2);
    #[allow(clippy::disallowed_methods)] // test-only beat: let the 1ms deadline lapse
    std::thread::sleep(Duration::from_millis(10));

    gate.open();

    let blocked = blocker.read();
    assert_eq!(blocked.status, 200, "body: {}", blocked.text());
    let shed = hurried.read();
    assert_eq!(shed.status, 504, "expired deadline answers 504: {}", shed.text());
    assert!(shed.text().contains("deadline"), "body names the cause: {}", shed.text());

    let metrics = wait_for_metrics(&mut observer, "shed counted", |m| json_field(m, "shed") == 1);
    assert_eq!(json_field(&metrics, "served"), 1);

    let final_metrics = server.shutdown();
    assert_eq!((final_metrics.served, final_metrics.shed), (1, 1));
    assert_eq!(final_metrics.accounted(), final_metrics.accepted);
}

#[test]
fn client_disconnect_cancels_queued_work() {
    let gate = Arc::new(Gate::default());
    let server = gated_server(Arc::clone(&gate));

    let mut blocker = Client::connect(&server);
    blocker.send(&post_estimate("0 = 1\n", &[]));
    gate.wait_entered(1);

    // A second request queues, then its client vanishes.
    let mut doomed = Client::connect(&server);
    doomed.send(&post_estimate("0 = 2\n", &[]));
    let mut observer = Client::connect(&server);
    wait_for_metrics(&mut observer, "doomed request accepted", |m| json_field(m, "accepted") == 2);
    drop(doomed);

    // Give the handler a few poll ticks to notice the hangup and cancel
    // the ticket (poll interval is 25ms; this is not load-bearing for
    // correctness, only for making the cancel happen *before* dequeue so
    // the worker provably skips the work).
    #[allow(clippy::disallowed_methods)] // test-only: 6x the 25ms disconnect-poll interval, so the cancel lands first
    std::thread::sleep(Duration::from_millis(150));
    gate.open();

    assert_eq!(blocker.read().status, 200);
    let metrics = wait_for_metrics(&mut observer, "cancel counted", |m| json_field(m, "cancelled") == 1);
    assert_eq!(json_field(&metrics, "served"), 1, "the abandoned request is never served");

    let final_metrics = server.shutdown();
    assert_eq!((final_metrics.served, final_metrics.cancelled), (1, 1));
    assert_eq!(final_metrics.accounted(), final_metrics.accepted);
}

#[test]
fn mixed_workload_preserves_the_accounting_identity() {
    let gate = Arc::new(Gate::default());
    let server = gated_server(Arc::clone(&gate));

    // 1: success — occupies the worker.
    let mut winner = Client::connect(&server);
    winner.send(&post_estimate("0 = 1\n", &[]));
    gate.wait_entered(1);

    // 2: shed — queues with an already-hopeless deadline.
    let mut hurried = Client::connect(&server);
    hurried.send(&post_estimate("0 = 2\n", &[("X-Naru-Timeout-Ms", "1")]));

    // 3: cancelled — queues, then hangs up.
    let mut doomed = Client::connect(&server);
    doomed.send(&post_estimate("0 = 3\n", &[]));

    // 4: failed — accepted, but the estimator rejects the query.
    let mut rejected = Client::connect(&server);
    rejected.send(&post_estimate("9 = 1\n", &[]));

    // Rejected-at-the-edge traffic that must NOT count as accepted.
    let mut noise = Client::connect(&server);
    assert_eq!(noise.request(&post_estimate("garbage ~ here\n", &[])).status, 400);
    assert_eq!(noise.request(&get("/definitely/not/a/route")).status, 404);

    let mut observer = Client::connect(&server);
    wait_for_metrics(&mut observer, "four requests accepted", |m| json_field(m, "accepted") == 4);
    drop(doomed);
    #[allow(clippy::disallowed_methods)] // test-only: 6x the 25ms disconnect-poll interval, so the cancel lands first
    std::thread::sleep(Duration::from_millis(150));
    gate.open();

    assert_eq!(winner.read().status, 200);
    assert_eq!(hurried.read().status, 504);
    assert_eq!(rejected.read().status, 422);

    wait_for_metrics(&mut observer, "all four accounted", |m| json_field(m, "accounted") == json_field(m, "accepted"));

    let m = server.shutdown();
    assert_eq!(
        (m.served, m.failed, m.shed, m.cancelled),
        (1, 1, 1, 1),
        "each lifecycle exit taken exactly once: {m:?}"
    );
    assert_eq!(m.accepted, 4);
    assert_eq!(m.accounted(), m.accepted, "served + failed + shed + cancelled == accepted");
}

#[test]
fn graceful_shutdown_drains_and_drop_is_equivalent() {
    let server = fast_server(1);
    let mut client = Client::connect(&server);
    assert_eq!(client.request(&post_estimate("0 <= 3\n", &[])).status, 200);
    let metrics = server.shutdown();
    assert_eq!(metrics.served, 1);
    assert_eq!(metrics.accounted(), metrics.accepted);

    // Dropping without an explicit shutdown takes the same drain path
    // (threads joined, serve queue drained) without hanging.
    let server = fast_server(1);
    let mut client = Client::connect(&server);
    assert_eq!(client.request(&post_estimate("1 = 1\n", &[])).status, 200);
    drop(server);
}
