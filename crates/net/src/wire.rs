//! The line-oriented response wire format.
//!
//! The query side of the protocol lives in [`naru_query::wire`] (shared
//! with any other transport); this module renders the *response* — a
//! served [`Estimate`](naru_query::Estimate) plus its
//! [`ServeStats`](naru_serve::ServeStats) — as `key value` lines, and
//! parses it back on the client side:
//!
//! ```text
//! selectivity 0.03125
//! rows 312.5
//! cardinality 313
//! live_paths 64          ; omitted for closed-form answers
//! provenance tier2_model
//! wall_time_us 412
//! queue_wait_us 38
//! worker 1
//! batch_size 2
//! ```
//!
//! Like the query decoder, parsing is total: garbage becomes a typed
//! [`ResponseParseError`], never a panic, and unknown keys are *ignored*
//! so the format can grow fields without breaking old clients.

use std::fmt;

use naru_query::{Estimate, Provenance};
use naru_serve::{ServeStats, ServedEstimate};
use std::time::Duration;

/// Renders a served estimate as the response body.
pub fn encode_served(served: &ServedEstimate) -> String {
    let e = &served.estimate;
    let s = &served.stats;
    let mut out = String::new();
    out.push_str(&format!("selectivity {}\n", e.selectivity));
    out.push_str(&format!("rows {}\n", e.estimated_rows));
    out.push_str(&format!("cardinality {}\n", e.cardinality()));
    if let Some(paths) = e.live_paths {
        out.push_str(&format!("live_paths {paths}\n"));
    }
    out.push_str(&format!("provenance {}\n", e.provenance.label()));
    out.push_str(&format!("wall_time_us {}\n", e.wall_time.as_micros()));
    out.push_str(&format!("queue_wait_us {}\n", s.queue_wait.as_micros()));
    out.push_str(&format!("worker {}\n", s.worker));
    out.push_str(&format!("batch_size {}\n", s.batch_size));
    out
}

/// A response body decoded back into its estimate + stats, client side.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEstimate {
    /// The estimate as reconstructed from the wire fields.
    pub estimate: Estimate,
    /// The scheduling stats as reconstructed from the wire fields.
    pub stats: ServeStats,
}

/// Why a response body could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseParseError {
    /// A line is not `key value`.
    MalformedLine {
        /// 1-based line number within the body.
        line: usize,
    },
    /// A known key carries an unparseable value.
    BadValue {
        /// The key whose value failed to parse.
        key: &'static str,
        /// 1-based line number within the body.
        line: usize,
    },
    /// A required key never appeared.
    MissingKey {
        /// The absent key.
        key: &'static str,
    },
}

impl fmt::Display for ResponseParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MalformedLine { line } => write!(f, "line {line}: expected `key value`"),
            Self::BadValue { key, line } => write!(f, "line {line}: bad value for `{key}`"),
            Self::MissingKey { key } => write!(f, "missing required key `{key}`"),
        }
    }
}

impl std::error::Error for ResponseParseError {}

/// Decodes a response body. Unknown keys are skipped; blank lines and
/// `#` comments are ignored.
pub fn decode_served(body: &str) -> Result<WireEstimate, ResponseParseError> {
    let mut selectivity: Option<f64> = None;
    let mut rows: Option<f64> = None;
    let mut live_paths: Option<usize> = None;
    let mut provenance: Option<Provenance> = None;
    let mut wall_time_us: Option<u64> = None;
    let mut queue_wait_us: Option<u64> = None;
    let mut worker: Option<usize> = None;
    let mut batch_size: Option<usize> = None;

    for (i, raw) in body.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) =
            line.split_once(char::is_whitespace).ok_or(ResponseParseError::MalformedLine { line: line_no })?;
        let value = value.trim();
        match key {
            "selectivity" => {
                selectivity = Some(
                    value.parse().map_err(|_| ResponseParseError::BadValue { key: "selectivity", line: line_no })?,
                )
            }
            "rows" => {
                rows = Some(value.parse().map_err(|_| ResponseParseError::BadValue { key: "rows", line: line_no })?)
            }
            "live_paths" => {
                live_paths =
                    Some(value.parse().map_err(|_| ResponseParseError::BadValue { key: "live_paths", line: line_no })?)
            }
            "provenance" => {
                provenance = Some(
                    Provenance::from_label(value)
                        .ok_or(ResponseParseError::BadValue { key: "provenance", line: line_no })?,
                )
            }
            "wall_time_us" => {
                wall_time_us = Some(
                    value.parse().map_err(|_| ResponseParseError::BadValue { key: "wall_time_us", line: line_no })?,
                )
            }
            "queue_wait_us" => {
                queue_wait_us = Some(
                    value.parse().map_err(|_| ResponseParseError::BadValue { key: "queue_wait_us", line: line_no })?,
                )
            }
            "worker" => {
                worker = Some(value.parse().map_err(|_| ResponseParseError::BadValue { key: "worker", line: line_no })?)
            }
            "batch_size" => {
                batch_size =
                    Some(value.parse().map_err(|_| ResponseParseError::BadValue { key: "batch_size", line: line_no })?)
            }
            // `cardinality` is derived server-side; re-derived below.
            _ => {}
        }
    }

    let selectivity = selectivity.ok_or(ResponseParseError::MissingKey { key: "selectivity" })?;
    let rows = rows.ok_or(ResponseParseError::MissingKey { key: "rows" })?;
    let provenance = provenance.ok_or(ResponseParseError::MissingKey { key: "provenance" })?;
    let wall_time_us = wall_time_us.ok_or(ResponseParseError::MissingKey { key: "wall_time_us" })?;
    let queue_wait_us = queue_wait_us.ok_or(ResponseParseError::MissingKey { key: "queue_wait_us" })?;
    let worker = worker.ok_or(ResponseParseError::MissingKey { key: "worker" })?;
    let batch_size = batch_size.ok_or(ResponseParseError::MissingKey { key: "batch_size" })?;

    Ok(WireEstimate {
        estimate: Estimate {
            selectivity,
            estimated_rows: rows,
            live_paths,
            wall_time: Duration::from_micros(wall_time_us),
            provenance,
        },
        stats: ServeStats {
            queue_wait: Duration::from_micros(queue_wait_us),
            execution: Duration::from_micros(wall_time_us),
            worker,
            batch_size,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(live_paths: Option<usize>) -> ServedEstimate {
        let estimate = match live_paths {
            Some(paths) => Estimate::sampled(0.25, 1000, paths, Duration::from_micros(412)),
            None => Estimate::closed_form(0.25, 1000, Duration::from_micros(412)),
        };
        ServedEstimate {
            estimate: estimate.with_provenance(Provenance::Tier2Model),
            stats: ServeStats {
                queue_wait: Duration::from_micros(38),
                execution: Duration::from_micros(412),
                worker: 1,
                batch_size: 2,
            },
        }
    }

    #[test]
    fn encode_then_decode_round_trips() {
        for live in [Some(64), None] {
            let served = sample(live);
            let body = encode_served(&served);
            let decoded = decode_served(&body).unwrap();
            assert_eq!(decoded.estimate, served.estimate, "body:\n{body}");
            assert_eq!(decoded.stats, served.stats);
        }
    }

    #[test]
    fn encoded_body_is_line_oriented_and_self_describing() {
        let body = encode_served(&sample(Some(64)));
        assert!(body.contains("selectivity 0.25\n"));
        assert!(body.contains("cardinality 250\n"));
        assert!(body.contains("live_paths 64\n"));
        assert!(body.contains("provenance tier2_model\n"));
        assert!(body.contains("worker 1\n"));
        let no_paths = encode_served(&sample(None));
        assert!(!no_paths.contains("live_paths"), "closed-form answers omit live_paths");
    }

    #[test]
    fn unknown_keys_are_ignored_for_forward_compatibility() {
        let mut body = encode_served(&sample(None));
        body.push_str("some_future_field 12\n# a comment\n\n");
        assert!(decode_served(&body).is_ok());
    }

    #[test]
    fn garbage_bodies_surface_typed_errors() {
        assert_eq!(decode_served("justoneword"), Err(ResponseParseError::MalformedLine { line: 1 }));
        assert_eq!(
            decode_served("selectivity notafloat"),
            Err(ResponseParseError::BadValue { key: "selectivity", line: 1 })
        );
        assert_eq!(
            decode_served("provenance tier9_quantum"),
            Err(ResponseParseError::BadValue { key: "provenance", line: 1 })
        );
        assert_eq!(decode_served(""), Err(ResponseParseError::MissingKey { key: "selectivity" }));
        let body = encode_served(&sample(None));
        let without_worker: String =
            body.lines().filter(|l| !l.starts_with("worker")).map(|l| format!("{l}\n")).collect();
        assert_eq!(decode_served(&without_worker), Err(ResponseParseError::MissingKey { key: "worker" }));
    }
}
