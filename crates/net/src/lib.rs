//! # naru-net
//!
//! The network front end: turns the [`naru-serve`](naru_serve) worker
//! pool into an actual TCP service, using nothing beyond `std::net`.
//!
//! * [`http`] — a hand-rolled, bounded HTTP/1.1 parser (request line,
//!   headers, keep-alive, `Content-Length` bodies) and response writer;
//!   every malformed or oversized input is a typed
//!   [`ProtocolError`](error::ProtocolError), never a panic,
//! * [`wire`] — the line-oriented response format for served estimates
//!   (the query side lives in [`naru_query::wire`], shared across
//!   transports),
//! * [`error`] — protocol errors and the exhaustive
//!   [`ServeError`](naru_serve::ServeError) → HTTP status mapping
//!   ([`status_for`](error::status_for)),
//! * [`server`] — the [`NetServer`]: accept loop, handler pool, routing
//!   (`POST /estimate`, `GET /metrics`, `GET /healthz`), the
//!   `X-Naru-Priority` / `X-Naru-Timeout-Ms` header → lifecycle mapping,
//!   disconnect-cancels-work polling, and graceful drain-then-shutdown.
//!
//! ```no_run
//! use naru_core::{Engine, IndependentDensity};
//! use naru_net::{NetConfig, NetServer};
//! use naru_serve::{ServeConfig, Server};
//!
//! let engine = Engine::new(IndependentDensity::uniform(&[8, 8]), 10_000).with_samples(64);
//! let serve = Server::start(engine, ServeConfig::default().with_workers(2)).unwrap();
//! let net = NetServer::start(serve, NetConfig::default()).unwrap();
//! println!("listening on http://{}", net.local_addr());
//! // ... curl -d '0 <= 3' http://ADDR/estimate ...
//! let metrics = net.shutdown();
//! assert_eq!(metrics.accounted(), metrics.accepted);
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod http;
pub mod server;
pub mod wire;

pub use error::{status_for, ProtocolError};
pub use http::{read_request, read_response, write_response, HttpLimits, ReadOutcome, Request, Response};
pub use server::{NetConfig, NetServer};
pub use wire::{decode_served, encode_served, ResponseParseError, WireEstimate};
