//! The network front end: accept loop, connection handlers, routing, and
//! the request → lifecycle mapping.
//!
//! A [`NetServer`] owns a [`Server`](naru_serve::Server) and exposes it
//! over TCP: one accept thread feeds accepted connections through a
//! channel to a small pool of handler threads, each of which runs the
//! keep-alive request loop for one connection at a time. Three routes:
//!
//! * `POST /estimate` — body is the line-oriented query format
//!   ([`naru_query::wire`]); the response body is the `key value` estimate
//!   format ([`crate::wire`]). An `X-Naru-Priority` header picks the
//!   [`Priority`] lane, `X-Naru-Timeout-Ms` becomes a [`Deadline`], and
//!   every [`ServeError`] maps to its own status code
//!   ([`status_for`](crate::error::status_for)).
//! * `GET /metrics` — the server's [`MetricsSnapshot`] as JSON (the same
//!   rendering `bench_serve` embeds in its report).
//! * `GET /healthz` — liveness probe, `200 ok`.
//!
//! **Disconnect cancels work.** While a request waits on its
//! [`Ticket`](naru_serve::Ticket), the handler polls the socket; a client
//! that hangs up has its ticket cancelled, so workers skip the abandoned
//! request (counted `cancelled`, never `served`).
//!
//! **Shutdown drains.** [`NetServer::shutdown`] stops accepting, lets
//! every live connection finish its in-flight request, joins the handler
//! pool, and only then drains the serve queue — no accepted work is lost,
//! and the final [`MetricsSnapshot`] satisfies the accounting identity.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use naru_query::wire::{decode_query_with, WireLimits};
use naru_serve::{Deadline, MetricsSnapshot, Priority, Server, SubmitOptions};

use crate::error::status_for;
use crate::http::{read_request, write_response, HttpLimits, ReadOutcome, Request};
use crate::wire::encode_served;

/// Front-end knobs. The defaults suit loopback tests and examples; a real
/// deployment mostly raises `handler_threads`.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` (port 0 picks a free port).
    pub addr: String,
    /// Connection-handler threads; each runs one connection at a time, so
    /// this bounds concurrent connections.
    pub handler_threads: usize,
    /// HTTP parser caps.
    pub limits: HttpLimits,
    /// Query-decoder caps.
    pub wire_limits: WireLimits,
    /// Socket read timeout and ticket-wait tick: how often an idle
    /// connection polls the shutdown flag, and how often a waiting request
    /// polls for client disconnect.
    pub poll_interval: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            handler_threads: 2,
            limits: HttpLimits::default(),
            wire_limits: WireLimits::default(),
            poll_interval: Duration::from_millis(25),
        }
    }
}

impl NetConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the handler-thread count (clamped to at least 1 at start).
    pub fn with_handler_threads(mut self, handler_threads: usize) -> Self {
        self.handler_threads = handler_threads;
        self
    }

    /// Sets the poll tick (clamped to at least 1ms at start).
    pub fn with_poll_interval(mut self, poll_interval: Duration) -> Self {
        self.poll_interval = poll_interval;
        self
    }
}

/// State shared by the accept thread and every handler thread.
struct Shared {
    serve: Server,
    limits: HttpLimits,
    wire_limits: WireLimits,
    poll_interval: Duration,
    shutdown: AtomicBool,
}

/// The running front end. Dropping it (or calling
/// [`NetServer::shutdown`]) stops accepting, drains connections, then
/// drains the serve queue.
pub struct NetServer {
    /// `Some` until `shutdown` consumes it; `Drop` handles the remainder.
    shared: Option<Arc<Shared>>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    handler_threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds the listener and spawns the accept + handler threads around
    /// an already-started [`Server`].
    pub fn start(serve: Server, config: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            serve,
            limits: config.limits,
            wire_limits: config.wire_limits,
            poll_interval: config.poll_interval.max(Duration::from_millis(1)),
            shutdown: AtomicBool::new(false),
        });

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let handler_threads: Vec<JoinHandle<()>> = (0..config.handler_threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let conn_rx = Arc::clone(&conn_rx);
                std::thread::spawn(move || handler_loop(&shared, &conn_rx))
            })
            .collect();

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            // `incoming` blocks; shutdown() wakes it with a dummy connect
            // after raising the flag, so the check always runs promptly.
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(stream) = stream {
                    // A send can only fail if every handler died; drop the
                    // connection rather than wedge the accept loop.
                    let _ = conn_tx.send(stream);
                }
            }
            // conn_tx drops here: handlers drain the backlog and exit.
        });

        Ok(NetServer { shared: Some(shared), local_addr, accept_thread: Some(accept_thread), handler_threads })
    }

    /// The bound address (with the actual port when `addr` asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A live snapshot of the underlying serve-layer counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.shared {
            Some(shared) => shared.serve.metrics(),
            None => EMPTY_SNAPSHOT,
        }
    }

    /// Graceful shutdown: stop accepting, drain live connections, join the
    /// handler pool, then drain the serve queue. Returns the final
    /// counters (for which the accounting identity holds exactly).
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_threads();
        match self.shared.take() {
            Some(shared) => drain_serve(shared),
            // Unreachable: `shared` is only taken here, and `shutdown`
            // consumes `self`.
            None => EMPTY_SNAPSHOT,
        }
    }

    /// Raises the shutdown flag, wakes the accept loop, joins every
    /// thread. Idempotent.
    fn stop_threads(&mut self) {
        if let Some(shared) = &self.shared {
            shared.shutdown.store(true, Ordering::Release);
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.handler_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_threads();
        // Dropping the last `Shared` reference drops the `Server`, whose
        // own Drop drains the queue and joins the workers.
        drop(self.shared.take());
    }
}

/// The all-zero snapshot returned from the unreachable already-consumed
/// branches of `metrics`/`shutdown`.
const EMPTY_SNAPSHOT: MetricsSnapshot = MetricsSnapshot {
    accepted: 0,
    rejected: 0,
    served: 0,
    failed: 0,
    shed: 0,
    cancelled: 0,
    batches: 0,
    fused_batches: 0,
    tier0_served: 0,
    tier1_served: 0,
    tier2_served: 0,
    relaxed_served: 0,
    degraded_served: 0,
    worker_respawns: 0,
    cache_hits: 0,
    cache_misses: 0,
    cache_evictions: 0,
};

/// Consumes the last `Shared` reference and drains the serve layer.
fn drain_serve(shared: Arc<Shared>) -> MetricsSnapshot {
    match Arc::try_unwrap(shared) {
        Ok(shared) => shared.serve.shutdown(),
        // Unreachable once every thread is joined; close-and-snapshot is
        // the safe fallback.
        Err(shared) => {
            shared.serve.close();
            shared.serve.metrics()
        }
    }
}

/// One handler thread: pull connections off the channel until the accept
/// thread drops the sender and the backlog drains.
fn handler_loop(shared: &Shared, conn_rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let stream = {
            let rx = conn_rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        match stream {
            Ok(stream) => handle_connection(shared, stream),
            Err(_) => break,
        }
    }
}

/// The keep-alive loop for one connection.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    if stream.set_read_timeout(Some(shared.poll_interval)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    loop {
        match read_request(&mut reader, &shared.limits) {
            Ok(ReadOutcome::Request(request)) => {
                let keep_alive = respond(shared, &request, &mut stream);
                if !keep_alive || shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            Ok(ReadOutcome::Closed) => break,
            Ok(ReadOutcome::Idle) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(err) => {
                if let Some((status, reason)) = err.status() {
                    let body = format!("{err}\n");
                    let _ = write_response(&mut stream, status, reason, "text/plain", body.as_bytes(), false);
                }
                break;
            }
        }
    }
}

/// Routes one request and writes its response. Returns whether the
/// connection should stay open.
fn respond(shared: &Shared, request: &Request, stream: &mut TcpStream) -> bool {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => write_ok(stream, request, "text/plain", "ok\n"),
        ("GET", "/metrics") => {
            let mut body = shared.serve.metrics().to_json();
            body.push('\n');
            write_ok(stream, request, "application/json", &body)
        }
        ("POST", "/estimate") => respond_estimate(shared, request, stream),
        (_, "/healthz" | "/metrics" | "/estimate") => {
            write_error(stream, request, 405, "Method Not Allowed", "method not allowed for this path\n")
        }
        (_, _) => write_error(stream, request, 404, "Not Found", "unknown path\n"),
    }
}

/// The `POST /estimate` path: headers → options, body → query, ticket →
/// response, with disconnect polling while the ticket waits.
fn respond_estimate(shared: &Shared, request: &Request, stream: &mut TcpStream) -> bool {
    let options = match submit_options(request) {
        Ok(options) => options,
        Err(message) => return write_error(stream, request, 400, "Bad Request", &message),
    };
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => return write_error(stream, request, 400, "Bad Request", "body is not valid UTF-8\n"),
    };
    let query = match decode_query_with(body, shared.wire_limits) {
        Ok(query) => query,
        Err(err) => return write_error(stream, request, 400, "Bad Request", &format!("{err}\n")),
    };

    let submitted = shared.serve.try_submit_with(query, options);
    let mut ticket = match submitted {
        Ok(ticket) => ticket,
        Err(err) => {
            let (status, reason) = status_for(&err);
            return write_error(stream, request, status, reason, &format!("{err}\n"));
        }
    };

    // Poll for client disconnect while the request queues/executes; a
    // vanished client cancels the ticket so workers skip the work.
    let response = loop {
        match ticket.wait_timeout(shared.poll_interval) {
            Ok(response) => break response,
            Err(pending) => {
                if client_gone(stream) {
                    pending.cancel();
                    return false;
                }
                ticket = pending;
            }
        }
    };

    match response {
        Ok(served) => write_ok(stream, request, "text/plain", &encode_served(&served)),
        Err(err) => {
            let (status, reason) = status_for(&err);
            write_error(stream, request, status, reason, &format!("{err}\n"))
        }
    }
}

/// Builds [`SubmitOptions`] from the `X-Naru-*` headers, or a 400 body.
fn submit_options(request: &Request) -> Result<SubmitOptions, String> {
    let mut options = SubmitOptions::new();
    if let Some(label) = request.header("x-naru-priority") {
        match Priority::from_label(&label.to_ascii_lowercase()) {
            Some(priority) => options = options.with_priority(priority),
            None => {
                return Err(format!("unknown priority `{label}` (expected interactive, batch, or best_effort)\n"));
            }
        }
    }
    if let Some(value) = request.header("x-naru-timeout-ms") {
        match value.trim().parse::<u64>() {
            Ok(ms) => options = options.with_deadline(Deadline::within(Duration::from_millis(ms))),
            Err(_) => return Err(format!("invalid X-Naru-Timeout-Ms `{value}` (expected milliseconds)\n")),
        }
    }
    Ok(options)
}

/// Whether the peer has hung up: a non-blocking peek seeing EOF (or a hard
/// error) means gone; pending bytes or `WouldBlock` mean alive.
fn client_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    if stream.set_nonblocking(false).is_err() {
        return true;
    }
    gone
}

fn write_ok(stream: &mut impl Write, request: &Request, content_type: &str, body: &str) -> bool {
    write_response(stream, 200, "OK", content_type, body.as_bytes(), request.keep_alive).is_ok() && request.keep_alive
}

fn write_error(stream: &mut impl Write, request: &Request, status: u16, reason: &'static str, body: &str) -> bool {
    write_response(stream, status, reason, "text/plain", body.as_bytes(), request.keep_alive).is_ok()
        && request.keep_alive
}
