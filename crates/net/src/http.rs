//! A hand-rolled, bounded HTTP/1.1 parser and response writer.
//!
//! Covers exactly what the front end needs: the request line, headers,
//! keep-alive semantics, and `Content-Length` bodies — no chunked transfer
//! encoding, no trailers, no upgrades. Every size is capped by
//! [`HttpLimits`] and every malformed input becomes a typed
//! [`ProtocolError`]; the parser never panics and never allocates
//! proportionally to anything the peer did not declare within the caps.
//!
//! The reader is written against `std::io::Read` byte streams (callers
//! wrap sockets in `BufReader`), and cooperates with socket read timeouts:
//! a timeout *between* requests surfaces as [`ReadOutcome::Idle`] so the
//! connection loop can poll its shutdown flag, while a timeout *inside* a
//! request only fails after a bounded number of consecutive stalled reads.

use std::io::{self, Read, Write};

use crate::error::ProtocolError;

/// Hard caps on what one request may ask the parser to buffer.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Longest accepted request/header/status line, in bytes.
    pub max_line_bytes: usize,
    /// Most header lines per request.
    pub max_headers: usize,
    /// Largest accepted `Content-Length`, in bytes.
    pub max_body_bytes: usize,
    /// Consecutive timed-out reads tolerated *mid-request* before the
    /// connection is declared dead. With the socket's read timeout as the
    /// tick length, `timeout x max_stall_reads` is the slow-client grace
    /// period.
    pub max_stall_reads: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self { max_line_bytes: 8 * 1024, max_headers: 64, max_body_bytes: 64 * 1024, max_stall_reads: 100 }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request target (path + optional query), as received.
    pub target: String,
    /// Header `(name, value)` pairs; names are lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 defaults to yes, HTTP/1.0 to no, `Connection` overrides).
    pub keep_alive: bool,
}

impl Request {
    /// The first value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// What one attempt to read a request produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out with no request bytes pending; the connection is
    /// still healthy. Lets the connection loop poll its shutdown flag.
    Idle,
}

/// Reads one request from the stream, enforcing `limits`.
pub fn read_request<R: Read>(reader: &mut R, limits: &HttpLimits) -> Result<ReadOutcome, ProtocolError> {
    let mut bytes = ByteSource { reader, limits, in_request: false, stalls: 0 };

    let request_line = match bytes.read_line()? {
        LineOutcome::Line(line) => line,
        LineOutcome::Eof => return Ok(ReadOutcome::Closed),
        LineOutcome::Idle => return Ok(ReadOutcome::Idle),
    };
    let (method, target, version) = parse_request_line(&request_line)?;
    let http11 = match version.as_str() {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ProtocolError::UnsupportedVersion { version: version.chars().take(16).collect() }),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match bytes.read_line()? {
            LineOutcome::Line(line) => line,
            LineOutcome::Eof | LineOutcome::Idle => return Err(ProtocolError::UnexpectedEof),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(ProtocolError::TooManyHeaders { max: limits.max_headers });
        }
        let text = String::from_utf8_lossy(&line);
        let (name, value) =
            text.split_once(':').ok_or(ProtocolError::MalformedHeader { position: headers.len() + 1 })?;
        let name = name.trim().to_ascii_lowercase();
        if name.is_empty() {
            return Err(ProtocolError::MalformedHeader { position: headers.len() + 1 });
        }
        headers.push((name, value.trim().to_owned()));
    }

    let connection = headers.iter().find(|(n, _)| n == "connection").map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => http11,
    };

    let content_length = headers.iter().find(|(n, _)| n == "content-length").map(|(_, v)| v.as_str());
    let body = match content_length {
        Some(value) => {
            let declared: usize = value.trim().parse().map_err(|_| ProtocolError::InvalidContentLength)?;
            if declared > limits.max_body_bytes {
                return Err(ProtocolError::BodyTooLarge { declared, max: limits.max_body_bytes });
            }
            bytes.read_exact_bytes(declared)?
        }
        None if matches!(method.as_str(), "POST" | "PUT" | "PATCH") => {
            return Err(ProtocolError::MissingContentLength);
        }
        None => Vec::new(),
    };

    Ok(ReadOutcome::Request(Request { method, target, headers, body, keep_alive }))
}

fn parse_request_line(line: &[u8]) -> Result<(String, String, String), ProtocolError> {
    let text = String::from_utf8_lossy(line);
    let mut parts = text.split_whitespace();
    match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(target), Some(version), None) => {
            Ok((method.to_ascii_uppercase(), target.to_owned(), version.to_owned()))
        }
        _ => Err(ProtocolError::MalformedRequestLine),
    }
}

/// A parsed HTTP response, as seen by the client side (used by the
/// blocking bench client and the loopback tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The numeric status code.
    pub status: u16,
    /// The reason phrase (may be empty).
    pub reason: String,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// The first value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one response from the stream (client side), enforcing `limits`.
pub fn read_response<R: Read>(reader: &mut R, limits: &HttpLimits) -> Result<Response, ProtocolError> {
    let mut bytes = ByteSource { reader, limits, in_request: true, stalls: 0 };
    let status_line = match bytes.read_line()? {
        LineOutcome::Line(line) => line,
        LineOutcome::Eof | LineOutcome::Idle => return Err(ProtocolError::UnexpectedEof),
    };
    let text = String::from_utf8_lossy(&status_line);
    let mut parts = text.splitn(3, ' ');
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(ProtocolError::UnsupportedVersion { version: version.chars().take(16).collect() });
    }
    let status: u16 = parts.next().unwrap_or_default().parse().map_err(|_| ProtocolError::MalformedRequestLine)?;
    let reason = parts.next().unwrap_or_default().to_owned();

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match bytes.read_line()? {
            LineOutcome::Line(line) => line,
            LineOutcome::Eof | LineOutcome::Idle => return Err(ProtocolError::UnexpectedEof),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(ProtocolError::TooManyHeaders { max: limits.max_headers });
        }
        let text = String::from_utf8_lossy(&line);
        let (name, value) =
            text.split_once(':').ok_or(ProtocolError::MalformedHeader { position: headers.len() + 1 })?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let declared: usize = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v.trim().parse().map_err(|_| ProtocolError::InvalidContentLength)?,
        None => 0,
    };
    if declared > limits.max_body_bytes {
        return Err(ProtocolError::BodyTooLarge { declared, max: limits.max_body_bytes });
    }
    let body = bytes.read_exact_bytes(declared)?;
    Ok(Response { status, reason, headers, body })
}

/// Writes one response. `keep_alive: false` adds `Connection: close`.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "" } else { "Connection: close\r\n" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{connection}\r\n",
        body.len(),
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

/// What one line-read attempt produced.
enum LineOutcome {
    /// A complete line, terminator stripped (`\r\n` or bare `\n`).
    Line(Vec<u8>),
    /// Clean EOF before the first byte of the line.
    Eof,
    /// Read timeout before the first byte of the *request* (only possible
    /// while `in_request` is false).
    Idle,
}

/// Byte-at-a-time reader with stall accounting. Byte-level granularity is
/// fine because callers hand in `BufReader`-wrapped streams.
struct ByteSource<'a, R: Read> {
    reader: &'a mut R,
    limits: &'a HttpLimits,
    /// Whether any byte of the current request has been consumed; gates
    /// the Idle-vs-stall interpretation of a timeout.
    in_request: bool,
    /// Consecutive timed-out reads since the last successful byte.
    stalls: usize,
}

/// One byte, or one of the boundary conditions.
enum ByteOutcome {
    Byte(u8),
    Eof,
    Idle,
}

impl<R: Read> ByteSource<'_, R> {
    fn read_byte(&mut self) -> Result<ByteOutcome, ProtocolError> {
        let mut byte = [0u8; 1];
        loop {
            match self.reader.read(&mut byte) {
                Ok(0) => return Ok(ByteOutcome::Eof),
                Ok(_) => {
                    self.in_request = true;
                    self.stalls = 0;
                    let [b] = byte;
                    return Ok(ByteOutcome::Byte(b));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                    if !self.in_request {
                        return Ok(ByteOutcome::Idle);
                    }
                    self.stalls += 1;
                    if self.stalls > self.limits.max_stall_reads {
                        return Err(ProtocolError::UnexpectedEof);
                    }
                }
                Err(e) => return Err(ProtocolError::io(&e)),
            }
        }
    }

    fn read_line(&mut self) -> Result<LineOutcome, ProtocolError> {
        let mut line: Vec<u8> = Vec::new();
        loop {
            match self.read_byte()? {
                ByteOutcome::Byte(b'\n') => {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(LineOutcome::Line(line));
                }
                ByteOutcome::Byte(b) => {
                    if line.len() >= self.limits.max_line_bytes {
                        return Err(ProtocolError::LineTooLong { max: self.limits.max_line_bytes });
                    }
                    line.push(b);
                }
                ByteOutcome::Eof if line.is_empty() => return Ok(LineOutcome::Eof),
                ByteOutcome::Eof => return Err(ProtocolError::UnexpectedEof),
                ByteOutcome::Idle => return Ok(LineOutcome::Idle),
            }
        }
    }

    fn read_exact_bytes(&mut self, len: usize) -> Result<Vec<u8>, ProtocolError> {
        let mut body = Vec::with_capacity(len);
        while body.len() < len {
            match self.read_byte()? {
                ByteOutcome::Byte(b) => body.push(b),
                ByteOutcome::Eof | ByteOutcome::Idle => return Err(ProtocolError::UnexpectedEof),
            }
        }
        Ok(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<ReadOutcome, ProtocolError> {
        read_request(&mut &bytes[..], &HttpLimits::default())
    }

    fn must_request(bytes: &[u8]) -> Request {
        match parse(bytes).unwrap() {
            ReadOutcome::Request(r) => r,
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_get_with_headers() {
        let r = must_request(b"GET /metrics HTTP/1.1\r\nHost: x\r\nX-Naru-Priority: batch\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/metrics");
        assert_eq!(r.header("x-naru-priority"), Some("batch"));
        assert_eq!(r.header("X-NARU-PRIORITY"), Some("batch"), "lookup is case-insensitive");
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = must_request(b"POST /estimate HTTP/1.1\r\nContent-Length: 6\r\n\r\n0 = 1\n");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"0 = 1\n");
    }

    #[test]
    fn connection_header_overrides_keep_alive_defaults() {
        assert!(!must_request(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
        assert!(!must_request(b"GET / HTTP/1.0\r\n\r\n").keep_alive, "HTTP/1.0 defaults to close");
        assert!(must_request(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive);
    }

    #[test]
    fn bare_newlines_are_tolerated() {
        let r = must_request(b"GET /healthz HTTP/1.1\nHost: x\n\n");
        assert_eq!(r.target, "/healthz");
    }

    #[test]
    fn clean_eof_is_closed_and_midline_eof_is_an_error() {
        assert_eq!(parse(b"").unwrap(), ReadOutcome::Closed);
        assert_eq!(parse(b"GET / HT").unwrap_err(), ProtocolError::UnexpectedEof);
        assert_eq!(parse(b"GET / HTTP/1.1\r\nHost: x\r\n").unwrap_err(), ProtocolError::UnexpectedEof);
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err(),
            ProtocolError::UnexpectedEof,
            "truncated body"
        );
    }

    #[test]
    fn malformed_inputs_surface_typed_errors() {
        assert_eq!(parse(b"GARBAGE\r\n\r\n").unwrap_err(), ProtocolError::MalformedRequestLine);
        assert_eq!(parse(b"GET / too many words here\r\n\r\n").unwrap_err(), ProtocolError::MalformedRequestLine);
        assert_eq!(
            parse(b"GET / HTTP/2\r\n\r\n").unwrap_err(),
            ProtocolError::UnsupportedVersion { version: "HTTP/2".into() }
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err(),
            ProtocolError::MalformedHeader { position: 1 }
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err(),
            ProtocolError::InvalidContentLength
        );
        assert_eq!(parse(b"POST / HTTP/1.1\r\n\r\n").unwrap_err(), ProtocolError::MissingContentLength);
    }

    #[test]
    fn limits_are_enforced() {
        let limits = HttpLimits { max_line_bytes: 32, max_headers: 2, max_body_bytes: 8, max_stall_reads: 4 };
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64));
        assert_eq!(
            read_request(&mut long_line.as_bytes(), &limits).unwrap_err(),
            ProtocolError::LineTooLong { max: 32 }
        );
        let many = b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
        assert_eq!(read_request(&mut &many[..], &limits).unwrap_err(), ProtocolError::TooManyHeaders { max: 2 });
        let big = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        assert_eq!(
            read_request(&mut &big[..], &limits).unwrap_err(),
            ProtocolError::BodyTooLarge { declared: 9, max: 8 }
        );
    }

    #[test]
    fn response_writer_and_reader_round_trip() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "application/json", b"{\"ok\":true}", true).unwrap();
        let parsed = read_response(&mut &out[..], &HttpLimits::default()).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.reason, "OK");
        assert_eq!(parsed.header("content-type"), Some("application/json"));
        assert_eq!(parsed.text(), "{\"ok\":true}");
        assert!(parsed.header("connection").is_none());

        let mut out = Vec::new();
        write_response(&mut out, 429, "Too Many Requests", "text/plain", b"overloaded", false).unwrap();
        let parsed = read_response(&mut &out[..], &HttpLimits::default()).unwrap();
        assert_eq!(parsed.status, 429);
        assert_eq!(parsed.header("connection"), Some("close"));
        assert_eq!(parsed.text(), "overloaded");
    }

    #[test]
    fn response_reader_rejects_garbage() {
        let limits = HttpLimits::default();
        assert_eq!(
            read_response(&mut &b"SPDY/3 200 OK\r\n\r\n"[..], &limits).unwrap_err(),
            ProtocolError::UnsupportedVersion { version: "SPDY/3".into() }
        );
        assert_eq!(
            read_response(&mut &b"HTTP/1.1 abc OK\r\n\r\n"[..], &limits).unwrap_err(),
            ProtocolError::MalformedRequestLine
        );
        assert_eq!(read_response(&mut &b""[..], &limits).unwrap_err(), ProtocolError::UnexpectedEof);
    }
}
