//! Typed protocol failures and the `ServeError` → HTTP status mapping.

use std::fmt;

use naru_serve::ServeError;

/// Why a connection's bytes could not be parsed into an HTTP request.
///
/// Every variant is a *peer* defect (malformed or oversized input) or a
/// transport failure; none of them is a server bug, and none of them
/// panics. The paired [`ProtocolError::status`] gives the HTTP response
/// the connection handler writes before closing (or `None` when the
/// transport is already unusable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The request line is not `METHOD SP TARGET SP VERSION`.
    MalformedRequestLine,
    /// The request line names an HTTP version other than 1.0/1.1.
    UnsupportedVersion {
        /// The version token as received (truncated to 16 chars).
        version: String,
    },
    /// A header line has no `:` separator or an empty name.
    MalformedHeader {
        /// 1-based position of the header line within the request.
        position: usize,
    },
    /// A single line (request line or header) exceeded the line cap.
    LineTooLong {
        /// The configured cap in bytes ([`HttpLimits::max_line_bytes`]).
        ///
        /// [`HttpLimits::max_line_bytes`]: crate::http::HttpLimits::max_line_bytes
        max: usize,
    },
    /// The request carried more header lines than the cap.
    TooManyHeaders {
        /// The configured cap ([`HttpLimits::max_headers`]).
        ///
        /// [`HttpLimits::max_headers`]: crate::http::HttpLimits::max_headers
        max: usize,
    },
    /// The `Content-Length` value is not a non-negative integer.
    InvalidContentLength,
    /// A body-bearing method arrived without a `Content-Length` header
    /// (chunked transfer encoding is not supported).
    MissingContentLength,
    /// The declared body length exceeds the body cap.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured cap ([`HttpLimits::max_body_bytes`]).
        ///
        /// [`HttpLimits::max_body_bytes`]: crate::http::HttpLimits::max_body_bytes
        max: usize,
    },
    /// The peer closed (or the read stalled past the grace period) in the
    /// middle of a request.
    UnexpectedEof,
    /// A transport read/write failed outright.
    Io {
        /// The [`std::io::ErrorKind`] of the failure, stringified for `Eq`.
        kind: String,
    },
}

impl ProtocolError {
    /// Shorthand for [`ProtocolError::Io`] from an I/O error.
    pub fn io(err: &std::io::Error) -> Self {
        Self::Io { kind: format!("{:?}", err.kind()) }
    }

    /// The HTTP status code + reason to answer with, or `None` when the
    /// connection is past answering (EOF / transport failure).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            Self::MalformedRequestLine | Self::MalformedHeader { .. } | Self::InvalidContentLength => {
                Some((400, "Bad Request"))
            }
            Self::MissingContentLength => Some((411, "Length Required")),
            Self::BodyTooLarge { .. } => Some((413, "Content Too Large")),
            Self::LineTooLong { .. } | Self::TooManyHeaders { .. } => Some((431, "Request Header Fields Too Large")),
            Self::UnsupportedVersion { .. } => Some((505, "HTTP Version Not Supported")),
            Self::UnexpectedEof | Self::Io { .. } => None,
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MalformedRequestLine => write!(f, "malformed request line"),
            Self::UnsupportedVersion { version } => write!(f, "unsupported HTTP version `{version}`"),
            Self::MalformedHeader { position } => write!(f, "malformed header at position {position}"),
            Self::LineTooLong { max } => write!(f, "line exceeds the {max}-byte limit"),
            Self::TooManyHeaders { max } => write!(f, "more than {max} header lines"),
            Self::InvalidContentLength => write!(f, "Content-Length is not a non-negative integer"),
            Self::MissingContentLength => write!(f, "body-bearing request without Content-Length"),
            Self::BodyTooLarge { declared, max } => {
                write!(f, "declared body of {declared} bytes exceeds the {max}-byte limit")
            }
            Self::UnexpectedEof => write!(f, "connection closed mid-request"),
            Self::Io { kind } => write!(f, "transport error ({kind})"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Maps a [`ServeError`] onto the HTTP status code + reason phrase the
/// front end answers with. The match is exhaustive and wildcard-free (and
/// lint-audited as such): adding a `ServeError` variant forces a decision
/// here.
///
/// | variant | status |
/// |---|---|
/// | `Overloaded` | 429 Too Many Requests |
/// | `ShuttingDown` | 503 Service Unavailable |
/// | `WorkerLost` | 502 Bad Gateway |
/// | `Panicked` | 500 Internal Server Error |
/// | `DeadlineExceeded` | 504 Gateway Timeout |
/// | `InvalidEstimate` | 500 Internal Server Error |
/// | `Config` | 500 Internal Server Error |
/// | `Estimate` | 422 Unprocessable Content |
pub fn status_for(err: &ServeError) -> (u16, &'static str) {
    match err {
        ServeError::Overloaded { capacity: _ } => (429, "Too Many Requests"),
        ServeError::ShuttingDown => (503, "Service Unavailable"),
        ServeError::WorkerLost => (502, "Bad Gateway"),
        ServeError::Panicked => (500, "Internal Server Error"),
        ServeError::DeadlineExceeded => (504, "Gateway Timeout"),
        ServeError::InvalidEstimate => (500, "Internal Server Error"),
        ServeError::Config(_) => (500, "Internal Server Error"),
        ServeError::Estimate(_) => (422, "Unprocessable Content"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_query::EstimateError;
    use naru_serve::ConfigError;

    #[test]
    fn serve_errors_map_to_distinct_lifecycle_statuses() {
        assert_eq!(status_for(&ServeError::Overloaded { capacity: 8 }).0, 429);
        assert_eq!(status_for(&ServeError::DeadlineExceeded).0, 504);
        assert_eq!(status_for(&ServeError::ShuttingDown).0, 503);
        assert_eq!(status_for(&ServeError::WorkerLost).0, 502);
        assert_eq!(status_for(&ServeError::Panicked).0, 500);
        assert_eq!(status_for(&ServeError::InvalidEstimate).0, 500);
        assert_eq!(status_for(&ServeError::Config(ConfigError::ZeroWorkers)).0, 500);
        let est = ServeError::Estimate(EstimateError::ColumnOutOfRange { column: 9, num_columns: 2 });
        assert_eq!(status_for(&est).0, 422);
    }

    #[test]
    fn protocol_errors_answerable_before_close_carry_a_status() {
        assert_eq!(ProtocolError::MalformedRequestLine.status(), Some((400, "Bad Request")));
        assert_eq!(ProtocolError::MissingContentLength.status().map(|s| s.0), Some(411));
        assert_eq!(ProtocolError::BodyTooLarge { declared: 9, max: 4 }.status().map(|s| s.0), Some(413));
        assert_eq!(ProtocolError::LineTooLong { max: 64 }.status().map(|s| s.0), Some(431));
        assert_eq!(ProtocolError::TooManyHeaders { max: 4 }.status().map(|s| s.0), Some(431));
        assert_eq!(ProtocolError::UnsupportedVersion { version: "HTTP/2".into() }.status().map(|s| s.0), Some(505));
        assert_eq!(ProtocolError::UnexpectedEof.status(), None);
        assert_eq!(ProtocolError::io(&std::io::Error::from(std::io::ErrorKind::BrokenPipe)).status(), None);
    }

    #[test]
    fn displays_carry_limits_and_context() {
        assert!(ProtocolError::LineTooLong { max: 8192 }.to_string().contains("8192"));
        assert!(ProtocolError::BodyTooLarge { declared: 100, max: 64 }.to_string().contains("100"));
        assert!(ProtocolError::MalformedHeader { position: 3 }.to_string().contains("3"));
        assert!(ProtocolError::UnsupportedVersion { version: "SPDY".into() }.to_string().contains("SPDY"));
    }
}
