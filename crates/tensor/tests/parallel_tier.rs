//! Forces the parallel kernel tier onto multiple threads — even on a
//! single-core container, where `available_parallelism()` is 1 and the
//! default dispatch would never spawn a second thread — and asserts the
//! threaded kernels are *bit-for-bit* identical to the blocked serial ones.
//!
//! This closes the ROADMAP gap left by the inference overhaul: the parallel
//! tier claims bit-identical results because row partitioning preserves
//! every output element's accumulation order, but CI never actually ran it
//! multi-threaded. With [`set_parallel_threads`] the partitioning is forced
//! to `FORCED_THREADS` regardless of hardware, and
//! [`KernelPolicy::Parallel`] routes the public entry points through it
//! regardless of the FLOP threshold.
//!
//! This lives in its own integration-test binary (own process) so the
//! process-wide policy mutation cannot race the unit tests.

use naru_tensor::ops::{
    matmul_a_bt_into_blocked, matmul_a_bt_into_parallel, matmul_at_b_into_blocked, matmul_at_b_into_parallel,
    matmul_into_blocked, matmul_into_parallel,
};
use naru_tensor::{
    kernel_policy, matmul, matmul_a_bt, matmul_at_b, parallel_threads, set_kernel_policy, set_parallel_threads,
    KernelPolicy, Matrix,
};

/// More threads than the CI container has cores, and more than the row
/// counts of several tested shapes, so chunking edge cases are exercised.
const FORCED_THREADS: usize = 4;

/// Both tests mutate the process-wide policy globals; serialize them so the
/// harness's parallel test execution cannot interleave the mutations.
static POLICY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn fill_a(m: usize, k: usize) -> Matrix {
    Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 17) % 23) as f32 * 0.314 - 1.6)
}

fn fill_b(k: usize, n: usize) -> Matrix {
    Matrix::from_fn(k, n, |r, c| ((r * 13 + c * 7) % 19) as f32 * 0.271 - 1.1)
}

/// Shapes straddling the tile size (64), the per-thread row minimum, the
/// forced thread count, and MADE-like inference shapes (short wide batches).
const SHAPES: &[(usize, usize, usize)] =
    &[(1, 1, 1), (2, 40, 9), (3, 70, 5), (17, 64, 65), (64, 33, 129), (130, 64, 1), (200, 96, 48)];

#[test]
fn forced_parallel_tier_is_bit_identical_to_blocked() {
    let _guard = POLICY_LOCK.lock().unwrap();
    set_parallel_threads(FORCED_THREADS);
    assert_eq!(parallel_threads(), FORCED_THREADS, "thread override must round-trip");

    for &(m, k, n) in SHAPES {
        let a = fill_a(m, k);
        let b = fill_b(k, n);
        let mut blocked = Matrix::zeros(0, 0);
        let mut parallel = Matrix::zeros(0, 0);

        matmul_into_blocked(&a, &b, &mut blocked);
        matmul_into_parallel(&a, &b, &mut parallel);
        assert_eq!(blocked.data(), parallel.data(), "matmul {m}x{k}x{n} diverged across threads");

        let bt = b.transpose();
        matmul_a_bt_into_blocked(&a, &bt, &mut blocked);
        matmul_a_bt_into_parallel(&a, &bt, &mut parallel);
        assert_eq!(blocked.data(), parallel.data(), "matmul_a_bt {m}x{k}x{n} diverged across threads");

        let at = a.transpose();
        matmul_at_b_into_blocked(&at, &b, &mut blocked);
        matmul_at_b_into_parallel(&at, &b, &mut parallel);
        assert_eq!(blocked.data(), parallel.data(), "matmul_at_b {m}x{k}x{n} diverged across threads");
    }

    set_parallel_threads(0);
}

#[test]
fn parallel_policy_dispatches_public_entry_points_through_threads() {
    let _guard = POLICY_LOCK.lock().unwrap();
    set_parallel_threads(FORCED_THREADS);
    set_kernel_policy(KernelPolicy::Parallel);
    assert_eq!(kernel_policy(), KernelPolicy::Parallel);

    for &(m, k, n) in SHAPES {
        let a = fill_a(m, k);
        let b = fill_b(k, n);

        let mut blocked = Matrix::zeros(0, 0);
        matmul_into_blocked(&a, &b, &mut blocked);
        // Below the Auto FLOP threshold these shapes would stay serial;
        // KernelPolicy::Parallel must thread them anyway, bit-identically.
        assert_eq!(matmul(&a, &b).data(), blocked.data(), "policy-dispatched matmul {m}x{k}x{n}");

        matmul_a_bt_into_blocked(&a, &b.transpose(), &mut blocked);
        assert_eq!(matmul_a_bt(&a, &b.transpose()).data(), blocked.data(), "policy-dispatched a_bt {m}x{k}x{n}");

        matmul_at_b_into_blocked(&a.transpose(), &b, &mut blocked);
        assert_eq!(matmul_at_b(&a.transpose(), &b).data(), blocked.data(), "policy-dispatched at_b {m}x{k}x{n}");
    }

    set_kernel_policy(KernelPolicy::Auto);
    set_parallel_threads(0);
}
