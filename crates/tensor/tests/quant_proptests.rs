//! Property-based tests for the quantized kernels: the documented error
//! bound of `quant_dot` / `matmul_a_qbt_into` against their exact f32
//! counterparts, the half-step round-trip guarantee of `QuantMatrix`, and
//! the bit-identity contracts between the register-blocked variants and
//! their scalar references — all across random shapes and values.

use naru_tensor::ops::naive;
use naru_tensor::{
    matmul_a_qbt_into, quant_dot, quant_dot4, quant_dot_error_bound, quant_rows_dot_into, Matrix, QuantMatrix,
};
use proptest::prelude::*;

/// Random activation/weight pair of one shared length. Activations span a
/// wider range than weights, like one-hot scaled inputs vs trained layers.
fn vec_pair(max_len: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (0..=max_len).prop_flat_map(|len| {
        (proptest::collection::vec(-4.0f32..4.0, len), proptest::collection::vec(-2.0f32..2.0, len))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every weight round-trips through quantization to within half a
    /// quantization step of its row: `|w - scale * q| <= scale / 2`.
    #[test]
    fn quantize_round_trips_within_half_a_step(
        dims in (1usize..12, 0usize..48),
        seed in 0u64..1000,
    ) {
        let (rows, cols) = dims;
        let m = Matrix::from_fn(rows, cols, |r, c| {
            (((r * 31 + c * 17 + seed as usize * 13) % 41) as f32 * 0.31 - 6.2).sin() * 2.0
        });
        let q = QuantMatrix::quantize(&m);
        let deq = q.dequantize();
        for r in 0..rows {
            let half_step = q.scale(r) * 0.5;
            for (orig, rec) in m.row(r).iter().zip(deq.row(r).iter()) {
                prop_assert!((orig - rec).abs() <= half_step + 1e-6, "row {}: {} vs {}", r, orig, rec);
            }
            // Exact zeros must stay exactly zero (the MADE mask invariant).
            for (orig, rec) in m.row(r).iter().zip(deq.row(r).iter()) {
                if *orig == 0.0 {
                    prop_assert_eq!(*rec, 0.0);
                }
            }
        }
    }

    /// `quant_dot` lands within the documented bound
    /// `(scale / 2) * sum_i |x_i|` of the exact f32 dot product, plus a
    /// small slack for f32 accumulation noise.
    #[test]
    fn quant_dot_within_documented_error_bound(xw in vec_pair(96)) {
        let (x, w) = xw;
        let exact: f32 = x.iter().zip(w.iter()).map(|(a, b)| a * b).sum();
        let m = Matrix::from_vec(1, w.len(), w);
        let q = QuantMatrix::quantize(&m);
        let approx = quant_dot(&x, q.row(0), q.scale(0));
        let bound = quant_dot_error_bound(&x, q.scale(0));
        prop_assert!(
            (exact - approx).abs() <= bound * 1.01 + 1e-3,
            "{} vs {} (bound {})", exact, approx, bound
        );
    }

    /// Every element of `A * QB^T` lands within the per-row documented
    /// bound of the exact `A * B^T` across random shapes.
    #[test]
    fn quant_matmul_within_documented_error_bound(
        dims in (1usize..10, 0usize..40, 1usize..14),
        seed in 0u64..1000,
    ) {
        let (m, k, n) = dims;
        let a = Matrix::from_fn(m, k, |r, c| {
            (((r * 29 + c * 23 + seed as usize * 7) % 43) as f32 * 0.29 - 6.0).sin() * 4.0
        });
        let b = Matrix::from_fn(n, k, |r, c| {
            (((r * 13 + c * 19 + seed as usize * 5) % 37) as f32 * 0.41 - 7.3).cos() * 2.0
        });
        let qb = QuantMatrix::quantize(&b);
        let reference = naive::matmul_a_bt(&a, &b);
        let mut c = Matrix::default();
        matmul_a_qbt_into(&a, &qb, &mut c);
        prop_assert_eq!(c.shape(), reference.shape());
        for i in 0..m {
            for j in 0..n {
                let bound = quant_dot_error_bound(a.row(i), qb.scale(j));
                prop_assert!(
                    (c.get(i, j) - reference.get(i, j)).abs() <= bound * 1.01 + 1e-3,
                    "elem ({}, {}): {} vs {} (bound {})", i, j, c.get(i, j), reference.get(i, j), bound
                );
            }
        }
    }

    /// The register-blocked `quant_dot4` is bit-identical to four
    /// standalone `quant_dot` calls on arbitrary lengths and values.
    #[test]
    fn quant_dot4_bit_identical_to_quant_dot(xw in vec_pair(80), seed in 0u64..1000) {
        let x = xw.0;
        let b = Matrix::from_fn(4, x.len(), |r, c| {
            (((r * 11 + c * 3 + seed as usize) % 31) as f32 * 0.37 - 4.9).sin() * 1.5
        });
        let qb = QuantMatrix::quantize(&b);
        let vals = quant_dot4(
            &x,
            qb.row(0), qb.row(1), qb.row(2), qb.row(3),
            [qb.scale(0), qb.scale(1), qb.scale(2), qb.scale(3)],
        );
        for (j, v) in vals.iter().enumerate() {
            let single = quant_dot(&x, qb.row(j), qb.scale(j));
            prop_assert!(v.to_bits() == single.to_bits(), "row {}: {} vs {}", j, v, single);
        }
    }

    /// `quant_rows_dot_into` over an arbitrary sub-range is bit-identical
    /// to one `quant_dot` per row.
    #[test]
    fn quant_rows_dot_into_bit_identical_per_row(
        xw in vec_pair(48),
        rows in 1usize..14,
        start_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let x = xw.0;
        let b = Matrix::from_fn(rows, x.len(), |r, c| {
            (((r * 17 + c * 7 + seed as usize * 3) % 29) as f32 * 0.43 - 5.1).cos() * 1.8
        });
        let qb = QuantMatrix::quantize(&b);
        let start = ((rows as f64) * start_frac) as usize;
        let range = start..rows;
        let mut out = vec![0.0f32; range.len()];
        quant_rows_dot_into(&x, &qb, range.clone(), &mut out);
        for (j, v) in out.iter().enumerate() {
            let r = range.start + j;
            let single = quant_dot(&x, qb.row(r), qb.scale(r));
            prop_assert!(v.to_bits() == single.to_bits(), "row {}: {} vs {}", r, v, single);
        }
    }
}
