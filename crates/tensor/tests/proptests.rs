//! Property-based tests for the tensor kernels.

use naru_tensor::ops::{
    matmul_a_bt_into, matmul_a_bt_into_blocked, matmul_a_bt_into_parallel, matmul_at_b_into, matmul_at_b_into_blocked,
    matmul_at_b_into_parallel, matmul_into, matmul_into_blocked, matmul_into_parallel, naive,
};
use naru_tensor::stats::{percentile, quantiles};
use naru_tensor::{log_softmax_rows, log_sum_exp, matmul, matmul_a_bt, matmul_at_b, softmax_rows, Matrix};
use proptest::prelude::*;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c).prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Asserts every optimized variant of the three orientations matches the
/// naive reference on `A (m x k) * B (k x n)` within `1e-4` relative.
fn assert_kernels_match_naive(a: &Matrix, b: &Matrix) -> Result<(), TestCaseError> {
    let reference = naive::matmul(a, b);
    let bt = b.transpose();
    let at = a.transpose();
    let reference_abt = naive::matmul_a_bt(a, &bt);
    let reference_atb = naive::matmul_at_b(&at, b);
    // The naive orientations themselves agree (sanity for the reference).
    for i in 0..reference.len() {
        prop_assert!((reference.data()[i] - reference_abt.data()[i]).abs() < 1e-3);
        prop_assert!((reference.data()[i] - reference_atb.data()[i]).abs() < 1e-3);
    }

    let close = |x: f32, y: f32| (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs()));
    let mut c = Matrix::default();
    type Kernel = fn(&Matrix, &Matrix, &mut Matrix);
    let ab: [(&str, Kernel); 3] =
        [("matmul_into", matmul_into), ("blocked", matmul_into_blocked), ("parallel", matmul_into_parallel)];
    for (name, kernel) in ab {
        kernel(a, b, &mut c);
        prop_assert_eq!(c.shape(), reference.shape());
        for i in 0..c.len() {
            prop_assert!(close(c.data()[i], reference.data()[i]), "{} diverges at {}", name, i);
        }
    }
    let abt: [(&str, Kernel); 3] = [
        ("matmul_a_bt_into", matmul_a_bt_into),
        ("a_bt blocked", matmul_a_bt_into_blocked),
        ("a_bt parallel", matmul_a_bt_into_parallel),
    ];
    for (name, kernel) in abt {
        kernel(a, &bt, &mut c);
        prop_assert_eq!(c.shape(), reference.shape());
        for i in 0..c.len() {
            prop_assert!(close(c.data()[i], reference.data()[i]), "{} diverges at {}", name, i);
        }
    }
    let atb: [(&str, Kernel); 3] = [
        ("matmul_at_b_into", matmul_at_b_into),
        ("at_b blocked", matmul_at_b_into_blocked),
        ("at_b parallel", matmul_at_b_into_parallel),
    ];
    for (name, kernel) in atb {
        kernel(&at, b, &mut c);
        prop_assert_eq!(c.shape(), reference.shape());
        for i in 0..c.len() {
            prop_assert!(close(c.data()[i], reference.data()[i]), "{} diverges at {}", name, i);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A B) C == A (B C) within floating-point tolerance.
    #[test]
    fn matmul_is_associative(
        a in matrix_strategy(6),
        bc in (1usize..6, 1usize..6),
    ) {
        let (k2, n) = bc;
        let b = Matrix::from_fn(a.cols(), k2, |r, c| ((r * 3 + c * 5) % 7) as f32 * 0.25 - 0.5);
        let c = Matrix::from_fn(k2, n, |r, col| ((r + col * 2) % 5) as f32 * 0.5 - 1.0);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        for i in 0..left.len() {
            prop_assert!((left.data()[i] - right.data()[i]).abs() < 1e-3);
        }
    }

    /// The three matmul orientations agree after transposition.
    #[test]
    fn matmul_orientations_agree(a in matrix_strategy(8), cols in 1usize..8) {
        let b = Matrix::from_fn(a.cols(), cols, |r, c| ((r * 11 + c * 7) % 9) as f32 * 0.3 - 1.0);
        let reference = matmul(&a, &b);
        let via_abt = matmul_a_bt(&a, &b.transpose());
        let via_atb = matmul_at_b(&a.transpose(), &b);
        for i in 0..reference.len() {
            prop_assert!((reference.data()[i] - via_abt.data()[i]).abs() < 1e-3);
            prop_assert!((reference.data()[i] - via_atb.data()[i]).abs() < 1e-3);
        }
    }

    /// Every blocked / parallel / `_into` kernel variant matches the naive
    /// reference within 1e-4 across random shapes and values.
    #[test]
    fn optimized_kernels_match_naive(
        dims in (1usize..33, 1usize..33, 1usize..33),
        seed in 0u64..1000,
    ) {
        let (m, k, n) = dims;
        let a = Matrix::from_fn(m, k, |r, c| {
            (((r * 31 + c * 17 + seed as usize * 13) % 41) as f32 * 0.31 - 6.2).sin() * 8.0
        });
        let b = Matrix::from_fn(k, n, |r, c| {
            (((r * 7 + c * 29 + seed as usize * 3) % 37) as f32 * 0.53 - 9.1).cos() * 8.0
        });
        assert_kernels_match_naive(&a, &b)?;
    }

    /// Shapes straddling the 64-wide tile boundary and the thread-partition
    /// minimum still match the reference.
    #[test]
    fn optimized_kernels_match_naive_around_block_size(
        m in prop_oneof![Just(63usize), Just(64), Just(65), Just(130)],
        k in prop_oneof![Just(1usize), Just(63), Just(65)],
        n in prop_oneof![Just(1usize), Just(64), Just(129)],
    ) {
        let a = Matrix::from_fn(m, k, |r, c| ((r * 13 + c * 7) % 23) as f32 * 0.4 - 2.0);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 5 + c * 11) % 19) as f32 * 0.3 - 1.5);
        assert_kernels_match_naive(&a, &b)?;
    }

    /// Softmax rows are valid probability distributions and invariant to a
    /// constant shift of the logits.
    #[test]
    fn softmax_rows_are_distributions(m in matrix_strategy(10), shift in -50.0f32..50.0) {
        let p = softmax_rows(&m);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
        let shifted = softmax_rows(&m.map(|v| v + shift));
        for i in 0..p.len() {
            prop_assert!((p.data()[i] - shifted.data()[i]).abs() < 1e-4);
        }
    }

    /// exp(log_softmax) equals softmax.
    #[test]
    fn log_softmax_consistent_with_softmax(m in matrix_strategy(8)) {
        let p = softmax_rows(&m);
        let lp = log_softmax_rows(&m);
        for i in 0..p.len() {
            prop_assert!((lp.data()[i].exp() - p.data()[i]).abs() < 1e-4);
        }
    }

    /// log_sum_exp is at least the max and at most max + ln(n).
    #[test]
    fn log_sum_exp_bounds(xs in proptest::collection::vec(-100.0f32..100.0, 1..50)) {
        let lse = log_sum_exp(&xs);
        let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(lse >= max - 1e-4);
        prop_assert!(lse <= max + (xs.len() as f32).ln() + 1e-4);
    }

    /// Transposition is an involution and preserves the multiset of values.
    #[test]
    fn transpose_involution(m in matrix_strategy(12)) {
        let tt = m.transpose().transpose();
        prop_assert_eq!(tt, m);
    }

    /// Percentiles are monotone in p and bounded by the data range.
    #[test]
    fn percentiles_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let qs = quantiles(&xs, &[0.0, 25.0, 50.0, 75.0, 95.0, 100.0]);
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(percentile(&xs, 0.0) >= min - 1e-9);
        prop_assert!(percentile(&xs, 100.0) <= max + 1e-9);
    }
}

/// Degenerate shapes the proptest strategies don't reach: single-row,
/// single-column, and genuinely empty (zero-sized dimension) operands.
#[test]
fn optimized_kernels_handle_edge_shapes() {
    let cases: &[(usize, usize, usize)] = &[
        (1, 9, 1), // 1 x k times k x 1
        (1, 1, 7), // single row out
        (9, 1, 1), // single col out
        (0, 5, 4), // no output rows
        (4, 0, 5), // empty reduction: all zeros
        (3, 4, 0), // no output cols
        (0, 0, 0), // fully empty
    ];
    for &(m, k, n) in cases {
        let a = Matrix::from_fn(m, k, |r, c| (r as f32 - c as f32) * 0.5 + 1.0);
        let b = Matrix::from_fn(k, n, |r, c| (r as f32 + c as f32) * 0.25 - 1.0);
        let reference = naive::matmul(&a, &b);
        let mut c = Matrix::default();
        for kernel in [matmul_into, matmul_into_blocked, matmul_into_parallel] {
            kernel(&a, &b, &mut c);
            assert_eq!(c.shape(), (m, n), "shape for {m}x{k}x{n}");
            assert_eq!(c.data(), reference.data(), "values for {m}x{k}x{n}");
        }
        let bt = b.transpose();
        for kernel in [matmul_a_bt_into, matmul_a_bt_into_blocked, matmul_a_bt_into_parallel] {
            kernel(&a, &bt, &mut c);
            assert_eq!(c.shape(), (m, n), "a_bt shape for {m}x{k}x{n}");
            for (got, want) in c.data().iter().zip(reference.data().iter()) {
                assert!((got - want).abs() < 1e-5, "a_bt values for {m}x{k}x{n}");
            }
        }
        let at = a.transpose();
        for kernel in [matmul_at_b_into, matmul_at_b_into_blocked, matmul_at_b_into_parallel] {
            kernel(&at, &b, &mut c);
            assert_eq!(c.shape(), (m, n), "at_b shape for {m}x{k}x{n}");
            assert_eq!(c.data(), reference.data(), "at_b values for {m}x{k}x{n}");
        }
    }
}
