//! Property-based tests for the tensor kernels.

use naru_tensor::stats::{percentile, quantiles};
use naru_tensor::{log_softmax_rows, log_sum_exp, matmul, matmul_a_bt, matmul_at_b, softmax_rows, Matrix};
use proptest::prelude::*;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c).prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A B) C == A (B C) within floating-point tolerance.
    #[test]
    fn matmul_is_associative(
        a in matrix_strategy(6),
        bc in (1usize..6, 1usize..6),
    ) {
        let (k2, n) = bc;
        let b = Matrix::from_fn(a.cols(), k2, |r, c| ((r * 3 + c * 5) % 7) as f32 * 0.25 - 0.5);
        let c = Matrix::from_fn(k2, n, |r, col| ((r + col * 2) % 5) as f32 * 0.5 - 1.0);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        for i in 0..left.len() {
            prop_assert!((left.data()[i] - right.data()[i]).abs() < 1e-3);
        }
    }

    /// The three matmul orientations agree after transposition.
    #[test]
    fn matmul_orientations_agree(a in matrix_strategy(8), cols in 1usize..8) {
        let b = Matrix::from_fn(a.cols(), cols, |r, c| ((r * 11 + c * 7) % 9) as f32 * 0.3 - 1.0);
        let reference = matmul(&a, &b);
        let via_abt = matmul_a_bt(&a, &b.transpose());
        let via_atb = matmul_at_b(&a.transpose(), &b);
        for i in 0..reference.len() {
            prop_assert!((reference.data()[i] - via_abt.data()[i]).abs() < 1e-3);
            prop_assert!((reference.data()[i] - via_atb.data()[i]).abs() < 1e-3);
        }
    }

    /// Softmax rows are valid probability distributions and invariant to a
    /// constant shift of the logits.
    #[test]
    fn softmax_rows_are_distributions(m in matrix_strategy(10), shift in -50.0f32..50.0) {
        let p = softmax_rows(&m);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
        let shifted = softmax_rows(&m.map(|v| v + shift));
        for i in 0..p.len() {
            prop_assert!((p.data()[i] - shifted.data()[i]).abs() < 1e-4);
        }
    }

    /// exp(log_softmax) equals softmax.
    #[test]
    fn log_softmax_consistent_with_softmax(m in matrix_strategy(8)) {
        let p = softmax_rows(&m);
        let lp = log_softmax_rows(&m);
        for i in 0..p.len() {
            prop_assert!((lp.data()[i].exp() - p.data()[i]).abs() < 1e-4);
        }
    }

    /// log_sum_exp is at least the max and at most max + ln(n).
    #[test]
    fn log_sum_exp_bounds(xs in proptest::collection::vec(-100.0f32..100.0, 1..50)) {
        let lse = log_sum_exp(&xs);
        let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(lse >= max - 1e-4);
        prop_assert!(lse <= max + (xs.len() as f32).ln() + 1e-4);
    }

    /// Transposition is an involution and preserves the multiset of values.
    #[test]
    fn transpose_involution(m in matrix_strategy(12)) {
        let tt = m.transpose().transpose();
        prop_assert_eq!(tt, m);
    }

    /// Percentiles are monotone in p and bounded by the data range.
    #[test]
    fn percentiles_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let qs = quantiles(&xs, &[0.0, 25.0, 50.0, 75.0, 95.0, 100.0]);
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(percentile(&xs, 0.0) >= min - 1e-9);
        prop_assert!(percentile(&xs, 100.0) <= max + 1e-9);
    }
}
