//! Per-row symmetric i8 weight quantization for the relaxed inference tier.
//!
//! A [`QuantMatrix`] mirrors an f32 weight [`Matrix`] with one `i8` per
//! weight plus one f32 scale per row: row `r` of the original matrix is
//! approximated as `scales[r] * data[r]`. Quantization is *symmetric*
//! (no zero-point), with the per-row scale chosen as `max_abs / 127`, so:
//!
//! * exact zeros stay exactly zero — MADE's masked-weight invariant (masked
//!   connections carry no information) survives quantization unchanged;
//! * every weight `w` round-trips to within half a quantization step:
//!   `|w - scale * q| <= scale / 2` (no clamping error: `|w| / scale <= 127`
//!   by construction, and `round(127.0) == 127`).
//!
//! That per-weight bound gives the documented **dot-product error bound**
//! checked by the property tests in `crates/tensor/tests/quant_proptests.rs`:
//! for an activation vector `x` and a weight row with scale `s`,
//!
//! ```text
//! |dot(x, w) - quant_dot(x, q, s)|  <=  (s / 2) * sum_i |x_i|
//! ```
//!
//! (plus f32 accumulation noise, which the tests absorb with a small
//! relative slack). [`quant_dot_error_bound`] computes the right-hand side.
//!
//! Accumulation happens in f32 — the quantized path trades weight precision
//! (and 4x the weight memory traffic) for speed, never accumulator
//! precision. It is selected at a higher level: `naru-nn` layers carry
//! optional `QuantMatrix` mirrors and the relaxed-precision inference mode
//! in `naru-core` routes forward passes through them.

use crate::matrix::Matrix;

/// A per-row symmetric i8 quantization of an f32 matrix.
///
/// Stored row-major like [`Matrix`]: `data[r * cols + c]` is the quantized
/// element `(r, c)` and `scales[r]` its dequantization factor.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantMatrix {
    /// Quantizes `m` row by row with symmetric per-row scales.
    ///
    /// An all-zero row gets scale `0.0` and all-zero codes, so it
    /// dequantizes exactly.
    pub fn quantize(m: &Matrix) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        // Indexed rather than `rows_iter()`: the iterator yields nothing for
        // zero-width matrices, but every row still needs a scale entry.
        for r in 0..rows {
            let row = m.row(r);
            let max_abs = row.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            if max_abs == 0.0 {
                scales.push(0.0);
                data.extend(std::iter::repeat_n(0i8, cols));
                continue;
            }
            let scale = max_abs / 127.0;
            let inv = 127.0 / max_abs;
            scales.push(scale);
            data.extend(row.iter().map(|&w| (w * inv).round().clamp(-127.0, 127.0) as i8));
        }
        Self { rows, cols, data, scales }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Quantized row `r` as a contiguous slice.
    // lint: allow_fn(index) - row-major addressing mirrors Matrix::row; r is bounded by rows() at every call site
    #[inline]
    pub fn row(&self, r: usize) -> &[i8] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Dequantization scale of row `r`.
    // lint: allow_fn(index) - scales has exactly one entry per row; r is bounded by rows() at every call site
    #[inline]
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// All per-row dequantization scales, one per row.
    #[inline]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reconstructs the f32 approximation `scales[r] * data[r]` row by row.
    // lint: allow_fn(index) - the loop bound is rows(), the invariant row()/scale() are indexed by
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let scale = self.scales[r];
            for (o, &q) in out.row_mut(r).iter_mut().zip(self.row(r).iter()) {
                *o = scale * q as f32;
            }
        }
        out
    }

    /// Bytes of storage: one `i8` per element plus one f32 scale per row.
    pub fn size_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }
}

/// Quantized dot product `scale * sum_i x[i] * q[i]` with f32 accumulation,
/// unrolled into eight independent lanes like [`crate::dot`] so the
/// compiler can vectorize the `i8 -> f32` widening multiply-adds.
///
/// # Panics
/// Panics (in debug builds) if the slices differ in length.
// lint: allow_fn(index) - lane indices are constant 0..8 over chunks_exact(8) slices; tails are zipped
#[inline]
pub fn quant_dot(x: &[f32], q: &[i8], scale: f32) -> f32 {
    debug_assert_eq!(x.len(), q.len(), "quant_dot length mismatch");
    const LANES: usize = 8;
    let split = (x.len() / LANES) * LANES;
    let (x_main, x_tail) = x.split_at(split);
    let (q_main, q_tail) = q.split_at(split);
    let mut acc = [0.0f32; LANES];
    for (xc, qc) in x_main.chunks_exact(LANES).zip(q_main.chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += xc[l] * qc[l] as f32;
        }
    }
    let mut tail = 0.0f32;
    for (xv, qv) in x_tail.iter().zip(q_tail.iter()) {
        tail += xv * *qv as f32;
    }
    scale * (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7])) + tail)
}

/// Four quantized dot products of `x` against rows `q0..q3` in a single
/// pass over `x` — the quantized counterpart of [`crate::dot4`]. Each row
/// keeps its own eight-lane accumulator array and tail sum, updated in
/// exactly the same order as a standalone [`quant_dot`] call, so the result
/// is **bit-identical** to four `quant_dot` calls while every loaded lane
/// of `x` is reused four times instead of once.
///
/// # Panics
/// Panics (in debug builds) if any row differs in length from `x`.
// lint: allow_fn(index) - lane indices are constant 0..8 over chunks_exact(8) slices; tails are zipped
#[inline]
pub fn quant_dot4(x: &[f32], q0: &[i8], q1: &[i8], q2: &[i8], q3: &[i8], scales: [f32; 4]) -> [f32; 4] {
    debug_assert!(
        q0.len() == x.len() && q1.len() == x.len() && q2.len() == x.len() && q3.len() == x.len(),
        "quant_dot4 length mismatch"
    );
    const LANES: usize = 8;
    let split = (x.len() / LANES) * LANES;
    let (x_main, x_tail) = x.split_at(split);
    let (q0_main, q0_tail) = q0.split_at(split);
    let (q1_main, q1_tail) = q1.split_at(split);
    let (q2_main, q2_tail) = q2.split_at(split);
    let (q3_main, q3_tail) = q3.split_at(split);
    let mut a0 = [0.0f32; LANES];
    let mut a1 = [0.0f32; LANES];
    let mut a2 = [0.0f32; LANES];
    let mut a3 = [0.0f32; LANES];
    let chunks = x_main
        .chunks_exact(LANES)
        .zip(q0_main.chunks_exact(LANES))
        .zip(q1_main.chunks_exact(LANES))
        .zip(q2_main.chunks_exact(LANES))
        .zip(q3_main.chunks_exact(LANES));
    for ((((xc, c0), c1), c2), c3) in chunks {
        for l in 0..LANES {
            let xv = xc[l];
            a0[l] += xv * c0[l] as f32;
            a1[l] += xv * c1[l] as f32;
            a2[l] += xv * c2[l] as f32;
            a3[l] += xv * c3[l] as f32;
        }
    }
    let mut t0 = 0.0f32;
    let mut t1 = 0.0f32;
    let mut t2 = 0.0f32;
    let mut t3 = 0.0f32;
    for ((((xv, v0), v1), v2), v3) in
        x_tail.iter().zip(q0_tail.iter()).zip(q1_tail.iter()).zip(q2_tail.iter()).zip(q3_tail.iter())
    {
        t0 += xv * *v0 as f32;
        t1 += xv * *v1 as f32;
        t2 += xv * *v2 as f32;
        t3 += xv * *v3 as f32;
    }
    let reduce = |a: &[f32; LANES]| ((a[0] + a[4]) + (a[1] + a[5])) + ((a[2] + a[6]) + (a[3] + a[7]));
    [
        scales[0] * (reduce(&a0) + t0),
        scales[1] * (reduce(&a1) + t1),
        scales[2] * (reduce(&a2) + t2),
        scales[3] * (reduce(&a3) + t3),
    ]
}

/// Computes `out[j] = quant_dot(x, qb.row(rows.start + j), ...)` for every
/// row in `rows`, register-blocked four output rows at a time via
/// [`quant_dot4`] with a [`quant_dot`] remainder — the shared matvec body
/// behind [`matmul_a_qbt_into`] and the quantized layer forwards in
/// `naru-nn`. `out` must already hold exactly `rows.len()` elements.
///
/// # Panics
/// Panics if `rows` is out of bounds or `out` has the wrong length.
// lint: allow_fn(index) - row indices are bounded by the asserted range; out chunks mirror the row blocks
pub fn quant_rows_dot_into(x: &[f32], qb: &QuantMatrix, rows: std::ops::Range<usize>, out: &mut [f32]) {
    // lint: allow(panic) - documented kernel contract, same as every matmul entry point
    assert!(rows.end <= qb.rows(), "quant_rows_dot_into row range {rows:?} out of bounds for {} rows", qb.rows());
    // lint: allow(panic) - documented kernel contract, same as every matmul entry point
    assert_eq!(out.len(), rows.len(), "quant_rows_dot_into output length mismatch");
    let base = rows.start;
    let blocks = rows.len() / 4;
    for b in 0..blocks {
        let r = base + b * 4;
        let vals = quant_dot4(
            x,
            qb.row(r),
            qb.row(r + 1),
            qb.row(r + 2),
            qb.row(r + 3),
            [qb.scale(r), qb.scale(r + 1), qb.scale(r + 2), qb.scale(r + 3)],
        );
        out[b * 4..b * 4 + 4].copy_from_slice(&vals);
    }
    for (j, slot) in out.iter_mut().enumerate().skip(blocks * 4) {
        *slot = quant_dot(x, qb.row(base + j), qb.scale(base + j));
    }
}

/// The documented worst-case quantization error of
/// [`quant_dot`] against the exact `dot(x, w)` it approximates:
/// `(scale / 2) * sum_i |x_i|`. Float accumulation noise comes on top;
/// callers comparing against this bound should allow a small slack.
pub fn quant_dot_error_bound(x: &[f32], scale: f32) -> f32 {
    0.5 * scale * x.iter().map(|v| v.abs()).sum::<f32>()
}

/// `C = A * QB^T`: the quantized counterpart of
/// [`crate::matmul_a_bt_into`], with every output row computed by the
/// register-blocked [`quant_rows_dot_into`] against the quantized rows of
/// `qb`. Writes into `c`, resizing it in place.
pub fn matmul_a_qbt_into(a: &Matrix, qb: &QuantMatrix, c: &mut Matrix) {
    // lint: allow(panic) - documented kernel contract: inner dimensions must agree, same as every matmul entry point
    assert_eq!(a.cols(), qb.cols(), "matmul_a_qbt inner dimension mismatch: {:?} * {:?}^T", a.shape(), qb.shape());
    let m = a.rows();
    let n = qb.rows();
    // lint: allow(no_alloc) - resize on a caller-retained buffer: allocates only on first use or growth, amortized to zero in the steady state
    c.resize(m, n);
    for i in 0..m {
        quant_rows_dot_into(a.row(i), qb, 0..n, c.row_mut(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_masked_weights_survive_quantization_exactly() {
        let m = Matrix::from_vec(2, 4, vec![0.5, 0.0, -1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let q = QuantMatrix::quantize(&m);
        let deq = q.dequantize();
        // Exact zeros stay exactly zero (the MADE mask invariant).
        assert_eq!(deq.get(0, 1), 0.0);
        assert_eq!(deq.get(0, 3), 0.0);
        // An all-zero row round-trips exactly with scale 0.
        assert_eq!(q.scale(1), 0.0);
        assert_eq!(deq.row(1), &[0.0; 4]);
        // Extremes hit +-127 codes and round-trip exactly.
        assert_eq!(q.row(0)[2], -127);
        assert!((deq.get(0, 2) - (-1.0)).abs() < 1e-6);
    }

    #[test]
    fn dequantize_stays_within_half_a_step() {
        let m = Matrix::from_fn(5, 37, |r, c| ((r * 31 + c * 17) % 23) as f32 * 0.173 - 1.9);
        let q = QuantMatrix::quantize(&m);
        let deq = q.dequantize();
        for r in 0..m.rows() {
            let half_step = q.scale(r) * 0.5;
            for (orig, rec) in m.row(r).iter().zip(deq.row(r).iter()) {
                assert!((orig - rec).abs() <= half_step + 1e-6, "row {r}: {orig} vs {rec}");
            }
        }
    }

    #[test]
    fn quant_dot_matches_dot_on_dequantized_weights() {
        for len in [0usize, 1, 7, 8, 9, 31, 64, 100] {
            let x: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).sin()).collect();
            let w: Vec<f32> = (0..len).map(|i| (i as f32 * 0.3).cos() * 0.8).collect();
            let m = Matrix::from_vec(1, len, w.clone());
            let q = QuantMatrix::quantize(&m);
            let exact: f32 = x.iter().zip(w.iter()).map(|(a, b)| a * b).sum();
            let approx = quant_dot(&x, q.row(0), q.scale(0));
            let bound = quant_dot_error_bound(&x, q.scale(0));
            assert!((exact - approx).abs() <= bound * 1.01 + 1e-5, "len {len}: {exact} vs {approx} (bound {bound})");
        }
    }

    #[test]
    fn matmul_a_qbt_matches_dequantized_matmul() {
        let a = Matrix::from_fn(6, 19, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.21 - 0.9);
        let b = Matrix::from_fn(9, 19, |r, c| ((r * 31 + c * 17) % 13) as f32 * 0.37 - 1.7);
        let qb = QuantMatrix::quantize(&b);
        let mut c = Matrix::full(2, 2, 9.0);
        matmul_a_qbt_into(&a, &qb, &mut c);
        assert_eq!(c.shape(), (6, 9));
        let reference = crate::ops::naive::matmul_a_bt(&a, &qb.dequantize());
        for i in 0..c.len() {
            assert!((c.data()[i] - reference.data()[i]).abs() < 1e-3, "elem {i}");
        }
    }

    #[test]
    fn quant_dot4_is_bit_identical_to_four_quant_dots() {
        for len in [0usize, 1, 7, 8, 9, 31, 64, 100] {
            let x: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).sin()).collect();
            let b = Matrix::from_fn(4, len, |r, c| ((r * 31 + c * 17) % 13) as f32 * 0.37 - 1.7);
            let qb = QuantMatrix::quantize(&b);
            let vals = quant_dot4(
                &x,
                qb.row(0),
                qb.row(1),
                qb.row(2),
                qb.row(3),
                [qb.scale(0), qb.scale(1), qb.scale(2), qb.scale(3)],
            );
            for (j, v) in vals.iter().enumerate() {
                let single = quant_dot(&x, qb.row(j), qb.scale(j));
                assert_eq!(v.to_bits(), single.to_bits(), "len {len} row {j}: {v} vs {single}");
            }
        }
    }

    #[test]
    fn quant_rows_dot_into_matches_per_row_quant_dot() {
        let x: Vec<f32> = (0..23).map(|i| (i as f32 * 0.41).cos()).collect();
        let b = Matrix::from_fn(11, 23, |r, c| ((r * 7 + c * 5) % 17) as f32 * 0.29 - 1.2);
        let qb = QuantMatrix::quantize(&b);
        // Full range and an offset sub-range, both with a non-multiple-of-4
        // remainder.
        for rows in [0..11usize, 3..10] {
            let mut out = vec![0.0f32; rows.len()];
            quant_rows_dot_into(&x, &qb, rows.clone(), &mut out);
            for (j, v) in out.iter().enumerate() {
                let r = rows.start + j;
                assert_eq!(v.to_bits(), quant_dot(&x, qb.row(r), qb.scale(r)).to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn size_bytes_counts_codes_and_scales() {
        let q = QuantMatrix::quantize(&Matrix::zeros(4, 10));
        assert_eq!(q.size_bytes(), 40 + 16);
        assert_eq!(q.shape(), (4, 10));
    }
}
