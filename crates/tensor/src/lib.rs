//! # naru-tensor
//!
//! Dense numeric kernels used by the rest of the workspace.
//!
//! This crate provides a deliberately small surface: a row-major [`Matrix`]
//! of `f32`, the handful of BLAS-like kernels needed for multi-layer
//! perceptron training (matrix multiplication in the three orientations
//! required by forward and backward passes, row-wise softmax /
//! log-softmax), and numeric helpers (log-sum-exp, quantiles, Box–Muller
//! normal sampling) shared by the statistical estimators.
//!
//! The matmul kernels come in three tiers — naive reference loops
//! ([`ops::naive`]), cache-blocked serial kernels with an unrolled dot
//! product, and row-partitioned `std::thread::scope` parallel kernels —
//! dispatched by a process-wide [`KernelPolicy`] plus a FLOP threshold.
//! The `_into` variants write into caller-provided buffers so inference
//! hot paths run allocation-free at steady state; see `ops` for details.

#![forbid(unsafe_code)]

pub mod matrix;
pub mod ops;
pub mod quant;
pub mod rng;
pub mod stats;

pub use matrix::Matrix;
pub use ops::{
    dot, dot4, kernel_policy, log_softmax_rows, log_softmax_rows_inplace, log_sum_exp, matmul, matmul_a_bt,
    matmul_a_bt_into, matmul_at_b, matmul_at_b_into, matmul_into, parallel_threads, set_kernel_policy,
    set_parallel_threads, softmax_rows, softmax_rows_inplace, KernelPolicy,
};
pub use quant::{matmul_a_qbt_into, quant_dot, quant_dot4, quant_dot_error_bound, quant_rows_dot_into, QuantMatrix};
pub use rng::NormalSampler;
pub use stats::{mean, percentile, quantiles, variance};
