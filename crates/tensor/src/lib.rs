//! # naru-tensor
//!
//! Dense numeric kernels used by the rest of the workspace.
//!
//! This crate provides a deliberately small surface: a row-major [`Matrix`]
//! of `f32`, the handful of BLAS-like kernels needed for multi-layer
//! perceptron training (matrix multiplication in the three orientations
//! required by forward and backward passes, row-wise softmax /
//! log-softmax), and numeric helpers (log-sum-exp, quantiles, Box–Muller
//! normal sampling) shared by the statistical estimators.
//!
//! Everything is written for clarity first and cache-friendliness second:
//! all kernels iterate in row-major order over contiguous slices so the
//! compiler can autovectorize the inner loops, which is sufficient for the
//! laptop-scale models this workspace trains.

pub mod matrix;
pub mod ops;
pub mod rng;
pub mod stats;

pub use matrix::Matrix;
pub use ops::{log_softmax_rows, log_sum_exp, matmul, matmul_a_bt, matmul_at_b, softmax_rows};
pub use rng::NormalSampler;
pub use stats::{mean, percentile, quantiles, variance};
