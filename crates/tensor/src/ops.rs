//! Matrix multiplication and row-wise softmax kernels.
//!
//! Three matmul orientations are provided because back-propagation through a
//! linear layer `Y = X W^T + b` needs all of them:
//!
//! * forward:              `Y  = X  W^T`  → [`matmul_a_bt`]
//! * gradient w.r.t. X:    `dX = dY W`    → [`matmul`]
//! * gradient w.r.t. W:    `dW = dY^T X`  → [`matmul_at_b`]
//!
//! Every orientation exists in three implementations:
//!
//! * the **naive** textbook loops in [`naive`], kept as the reference the
//!   property tests compare against;
//! * **blocked** serial kernels ([`matmul_into_blocked`] and friends) that
//!   tile the output so the working set stays cache-resident and unroll the
//!   dot-product inner loop into eight independent accumulators ([`dot`]) so
//!   the compiler can vectorize it;
//! * **parallel** kernels ([`matmul_into_parallel`] and friends) that
//!   partition the output rows across `std::thread::scope` threads, each
//!   running the blocked kernel on its slice. Because every output element
//!   is still accumulated in exactly the same order, the parallel kernels
//!   are bit-identical to the blocked ones.
//!
//! The public entry points ([`matmul`], [`matmul_into`], …) dispatch between
//! the implementations according to the global [`KernelPolicy`] and a
//! FLOP-count threshold ([`PARALLEL_FLOPS_THRESHOLD`]); the `_into` variants
//! write into a caller-provided [`Matrix`] so steady-state inference makes
//! no allocations at all.
//!
//! All kernels accumulate in `f32`; the models trained in this workspace are
//! small enough that this is numerically adequate (verified by the
//! gradient-check tests in `naru-nn`).

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::matrix::Matrix;

/// Which kernel implementations the public entry points use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPolicy {
    /// Always run the naive reference loops. Used by benchmarks to measure
    /// the pre-optimization baseline; never faster.
    Naive,
    /// Blocked serial kernels only, regardless of size.
    Blocked,
    /// Blocked kernels, switching to the threaded path for large products
    /// (the default).
    Auto,
    /// Always take the threaded path, regardless of size. Combined with
    /// [`set_parallel_threads`], this forces the parallel tier even on
    /// hardware that reports a single core — the parity tests use it to
    /// exercise multi-threaded row partitioning everywhere.
    Parallel,
    /// Opt into the relaxed quantized tier: layers that carry per-row i8
    /// weight mirrors (see [`crate::quant`] and `naru-nn`) route their
    /// forward passes through them. The plain f32 entry points in this
    /// module have no quantized implementation and fall back to the
    /// blocked kernels; the policy only changes behavior where a mirror
    /// exists, and results there are approximate (bounded error), so
    /// estimates computed under it are tagged `Provenance::Relaxed`.
    Quantized,
}

static KERNEL_POLICY: AtomicU8 = AtomicU8::new(2);

/// Sets the process-wide kernel policy. Intended for benchmarks and tests;
/// production code leaves the default ([`KernelPolicy::Auto`]) in place.
pub fn set_kernel_policy(policy: KernelPolicy) {
    KERNEL_POLICY.store(policy as u8, Ordering::Relaxed);
}

/// The current process-wide kernel policy.
pub fn kernel_policy() -> KernelPolicy {
    match KERNEL_POLICY.load(Ordering::Relaxed) {
        0 => KernelPolicy::Naive,
        1 => KernelPolicy::Blocked,
        3 => KernelPolicy::Parallel,
        4 => KernelPolicy::Quantized,
        _ => KernelPolicy::Auto,
    }
}

static PARALLEL_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides how many threads the parallel kernels partition rows across.
/// `0` restores the default (hardware parallelism, capped at 8). Intended
/// for benchmarks and tests — notably to force multi-threaded execution on
/// single-core CI hosts, where the default would fall back to one thread.
pub fn set_parallel_threads(threads: usize) {
    PARALLEL_THREADS_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// The current thread-count override (`0` = automatic).
pub fn parallel_threads() -> usize {
    PARALLEL_THREADS_OVERRIDE.load(Ordering::Relaxed)
}

/// Minimum number of multiply-adds (`m * n * k`) before [`KernelPolicy::Auto`]
/// switches to the threaded kernels. Below this, thread-spawn overhead
/// (~tens of microseconds per `std::thread::scope`) outweighs the win.
pub const PARALLEL_FLOPS_THRESHOLD: usize = 1 << 21;

/// Rows of the output tile processed per cache block.
const TILE_ROWS: usize = 64;
/// Columns of the output tile processed per cache block.
const TILE_COLS: usize = 64;
/// Minimum output rows a worker thread must receive to be worth spawning.
const MIN_ROWS_PER_THREAD: usize = 16;

fn max_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8))
}

/// Textbook reference implementations of the three matmul orientations.
///
/// These are the exact kernels the workspace shipped with before the blocked
/// and parallel variants existed. They are deliberately kept (and exercised
/// by the property tests in `crates/tensor/tests/proptests.rs`) as the
/// ground truth every optimized kernel must match.
pub mod naive {
    use crate::matrix::Matrix;

    /// `C = A * B` where `A` is `m x k` and `B` is `k x n`.
    ///
    /// # Panics
    /// Panics if inner dimensions do not match.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch: {:?} * {:?}", a.shape(), b.shape());
        let m = a.rows();
        let n = b.cols();
        let mut c = Matrix::zeros(m, n);
        // i-k-j loop order keeps the innermost loop streaming over contiguous
        // rows of both B and C.
        for i in 0..m {
            let a_row = a.row(i);
            let c_row = c.row_mut(i);
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = b.row(p);
                for j in 0..n {
                    c_row[j] += a_ip * b_row[j];
                }
            }
        }
        c
    }

    /// `C = A * B^T` where `A` is `m x k` and `B` is `n x k`.
    pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "matmul_a_bt inner dimension mismatch: {:?} * {:?}^T", a.shape(), b.shape());
        let m = a.rows();
        let n = b.rows();
        let mut c = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = a.row(i);
            let c_row = c.row_mut(i);
            for (j, out) in c_row.iter_mut().enumerate() {
                let b_row = b.row(j);
                let mut acc = 0.0f32;
                for p in 0..a_row.len() {
                    acc += a_row[p] * b_row[p];
                }
                *out = acc;
            }
        }
        c
    }

    /// `C = A^T * B` where `A` is `k x m` and `B` is `k x n`.
    pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "matmul_at_b inner dimension mismatch: {:?}^T * {:?}", a.shape(), b.shape());
        let k = a.rows();
        let m = a.cols();
        let n = b.cols();
        let mut c = Matrix::zeros(m, n);
        for p in 0..k {
            let a_row = a.row(p);
            let b_row = b.row(p);
            for (i, &a_pi) in a_row.iter().enumerate() {
                if a_pi == 0.0 {
                    continue;
                }
                let c_row = c.row_mut(i);
                for j in 0..n {
                    c_row[j] += a_pi * b_row[j];
                }
            }
        }
        c
    }
}

/// Dot product with the inner loop unrolled into eight independent
/// accumulator lanes, breaking the loop-carried dependence of the naive
/// `acc += a[p] * b[p]` form so the compiler can keep several FMAs in
/// flight (and vectorize the lanes).
///
/// # Panics
/// Panics (in debug builds) if the slices differ in length.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len(), "dot length mismatch");
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks = x.len() / LANES;
    let (x_main, x_tail) = x.split_at(chunks * LANES);
    let (y_main, y_tail) = y.split_at(chunks * LANES);
    for (xc, yc) in x_main.chunks_exact(LANES).zip(y_main.chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += xc[l] * yc[l];
        }
    }
    let mut tail = 0.0f32;
    for (xv, yv) in x_tail.iter().zip(y_tail.iter()) {
        tail += xv * yv;
    }
    reduce_lanes(&acc) + tail
}

/// The fixed lane-reduction order shared by [`dot`] and [`dot4`]. Keeping it
/// in one place guarantees the two kernels produce bit-identical sums for
/// the same inputs.
#[inline]
fn reduce_lanes(acc: &[f32; 8]) -> f32 {
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

/// Four dot products of `x` against `y0..y3` in a single pass over `x`.
///
/// This is the register-blocked micro-kernel behind the `A * B^T`
/// orientation: each output column keeps its own eight-lane accumulator
/// array and its own tail sum, updated in exactly the same order as a
/// standalone [`dot`] call — so `dot4(x, y0, y1, y2, y3)` is **bit-identical**
/// to `[dot(x, y0), dot(x, y1), dot(x, y2), dot(x, y3)]` — while every
/// loaded lane of `x` is reused four times instead of once. The per-column
/// accumulators are independent contiguous arrays the compiler can keep in
/// vector registers, and the shared iterator-chunked body auto-vectorizes
/// the same way [`dot`]'s does.
///
/// # Panics
/// Panics (in debug builds) if any slice differs in length from `x`.
#[inline]
pub fn dot4(x: &[f32], y0: &[f32], y1: &[f32], y2: &[f32], y3: &[f32]) -> [f32; 4] {
    debug_assert!(
        y0.len() == x.len() && y1.len() == x.len() && y2.len() == x.len() && y3.len() == x.len(),
        "dot4 length mismatch"
    );
    const LANES: usize = 8;
    let split = (x.len() / LANES) * LANES;
    let (x_main, x_tail) = x.split_at(split);
    let (y0_main, y0_tail) = y0.split_at(split);
    let (y1_main, y1_tail) = y1.split_at(split);
    let (y2_main, y2_tail) = y2.split_at(split);
    let (y3_main, y3_tail) = y3.split_at(split);
    let mut a0 = [0.0f32; LANES];
    let mut a1 = [0.0f32; LANES];
    let mut a2 = [0.0f32; LANES];
    let mut a3 = [0.0f32; LANES];
    let chunks = x_main
        .chunks_exact(LANES)
        .zip(y0_main.chunks_exact(LANES))
        .zip(y1_main.chunks_exact(LANES))
        .zip(y2_main.chunks_exact(LANES))
        .zip(y3_main.chunks_exact(LANES));
    for ((((xc, c0), c1), c2), c3) in chunks {
        for l in 0..LANES {
            let xv = xc[l];
            a0[l] += xv * c0[l];
            a1[l] += xv * c1[l];
            a2[l] += xv * c2[l];
            a3[l] += xv * c3[l];
        }
    }
    let mut t0 = 0.0f32;
    let mut t1 = 0.0f32;
    let mut t2 = 0.0f32;
    let mut t3 = 0.0f32;
    for ((((xv, v0), v1), v2), v3) in
        x_tail.iter().zip(y0_tail.iter()).zip(y1_tail.iter()).zip(y2_tail.iter()).zip(y3_tail.iter())
    {
        t0 += xv * v0;
        t1 += xv * v1;
        t2 += xv * v2;
        t3 += xv * v3;
    }
    [reduce_lanes(&a0) + t0, reduce_lanes(&a1) + t1, reduce_lanes(&a2) + t2, reduce_lanes(&a3) + t3]
}

/// `out[j] += s * x[j]` with a contiguous streaming inner loop.
#[inline]
fn axpy_slice(out: &mut [f32], s: f32, x: &[f32]) {
    for (o, &v) in out.iter_mut().zip(x.iter()) {
        *o += s * v;
    }
}

// --- blocked serial kernels (operate on a row range of C) ---------------

/// `C[lo..hi] = A[lo..hi] * B`, i-k-j order with the k loop tiled so the
/// touched rows of `B` stay cache-resident. `c_rows` holds rows `lo..hi` of
/// the output contiguously and is overwritten.
fn matmul_rows(a: &Matrix, b: &Matrix, c_rows: &mut [f32], lo: usize, hi: usize) {
    let n = b.cols();
    let k = a.cols();
    c_rows.iter_mut().for_each(|v| *v = 0.0);
    for kb in (0..k).step_by(TILE_COLS) {
        let kb_hi = (kb + TILE_COLS).min(k);
        for i in lo..hi {
            let a_row = &a.row(i)[kb..kb_hi];
            let c_row = &mut c_rows[(i - lo) * n..(i - lo + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                // One-hot / masked inputs are mostly zero; skipping them is a
                // big win and never changes the result.
                if a_ip == 0.0 {
                    continue;
                }
                axpy_slice(c_row, a_ip, b.row(kb + p));
            }
        }
    }
}

/// `C[lo..hi] = A[lo..hi] * B^T` with the output tiled `TILE_ROWS x
/// TILE_COLS` so each tile's `A` and `B` rows stay in L1/L2 while every
/// element is computed with the unrolled [`dot`].
fn matmul_a_bt_rows(a: &Matrix, b: &Matrix, c_rows: &mut [f32], lo: usize, hi: usize) {
    let n = b.rows();
    for ib in (lo..hi).step_by(TILE_ROWS) {
        let ib_hi = (ib + TILE_ROWS).min(hi);
        for jb in (0..n).step_by(TILE_COLS) {
            let jb_hi = (jb + TILE_COLS).min(n);
            for i in ib..ib_hi {
                let a_row = a.row(i);
                let c_row = &mut c_rows[(i - lo) * n..(i - lo + 1) * n];
                let c_tile = &mut c_row[jb..jb_hi];
                // Register-blocked body: four output columns per pass over
                // `a_row` via `dot4` (bit-identical to four `dot` calls),
                // then the per-element kernel for the ragged remainder.
                let mut j = 0usize;
                while j + 4 <= c_tile.len() {
                    let out = dot4(a_row, b.row(jb + j), b.row(jb + j + 1), b.row(jb + j + 2), b.row(jb + j + 3));
                    c_tile[j..j + 4].copy_from_slice(&out);
                    j += 4;
                }
                for (jj, out) in c_tile[j..].iter_mut().enumerate() {
                    *out = dot(a_row, b.row(jb + j + jj));
                }
            }
        }
    }
}

/// `C[lo..hi] = (A^T * B)[lo..hi]`: output row `i` is column `i` of `A`.
/// The p (reduction) loop stays outermost so `B` is streamed once per call
/// while the active block of `C` stays cache-resident.
fn matmul_at_b_rows(a: &Matrix, b: &Matrix, c_rows: &mut [f32], lo: usize, hi: usize) {
    let k = a.rows();
    let n = b.cols();
    c_rows.iter_mut().for_each(|v| *v = 0.0);
    for p in 0..k {
        let a_row = a.row(p);
        let b_row = b.row(p);
        for i in lo..hi {
            let a_pi = a_row[i];
            if a_pi == 0.0 {
                continue;
            }
            axpy_slice(&mut c_rows[(i - lo) * n..(i - lo + 1) * n], a_pi, b_row);
        }
    }
}

// --- shape checks and parallel driver -----------------------------------

fn check_matmul(a: &Matrix, b: &Matrix) -> (usize, usize, usize) {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch: {:?} * {:?}", a.shape(), b.shape());
    (a.rows(), b.cols(), a.cols())
}

fn check_a_bt(a: &Matrix, b: &Matrix) -> (usize, usize, usize) {
    assert_eq!(a.cols(), b.cols(), "matmul_a_bt inner dimension mismatch: {:?} * {:?}^T", a.shape(), b.shape());
    (a.rows(), b.rows(), a.cols())
}

fn check_at_b(a: &Matrix, b: &Matrix) -> (usize, usize, usize) {
    assert_eq!(a.rows(), b.rows(), "matmul_at_b inner dimension mismatch: {:?}^T * {:?}", a.shape(), b.shape());
    (a.cols(), b.cols(), a.rows())
}

/// Splits `c` into contiguous row chunks and runs `kernel` on each from a
/// scoped thread. Row-partitioning keeps every output element's
/// accumulation order identical to the serial kernels, so the parallel
/// path is deterministic and bit-identical to the blocked one.
fn par_row_partition(c: &mut Matrix, kernel: impl Fn(&mut [f32], usize, usize) + Sync) {
    let m = c.rows();
    let n = c.cols();
    let threads = match parallel_threads() {
        0 => max_threads().min(m / MIN_ROWS_PER_THREAD).max(1),
        forced => forced.min(m).max(1),
    };
    if threads <= 1 || m == 0 {
        kernel(c.data_mut(), 0, m);
        return;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, chunk) in c.data_mut().chunks_mut(rows_per * n.max(1)).enumerate() {
            let lo = t * rows_per;
            let hi = lo + chunk.len() / n.max(1);
            let kernel = &kernel;
            scope.spawn(move || kernel(chunk, lo, hi));
        }
    });
}

// --- public `_into` entry points ----------------------------------------

/// `C = A * B` written into `c` (resized as needed, allocation-free once
/// `c`'s capacity suffices). Dispatches per the global [`KernelPolicy`].
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, n, k) = check_matmul(a, b);
    // lint: allow(no_alloc) - resize on a caller-retained buffer: allocates only on first use or growth, amortized to zero in the steady state
    c.resize(m, n);
    match effective_policy(m, n, k) {
        Impl::Naive => *c = naive::matmul(a, b),
        Impl::Blocked => matmul_rows(a, b, c.data_mut(), 0, m),
        Impl::Parallel => par_row_partition(c, |chunk, lo, hi| matmul_rows(a, b, chunk, lo, hi)),
    }
}

/// `C = A * B^T` written into `c`. Dispatches per the global [`KernelPolicy`].
pub fn matmul_a_bt_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, n, k) = check_a_bt(a, b);
    // lint: allow(no_alloc) - resize on a caller-retained buffer: allocates only on first use or growth, amortized to zero in the steady state
    c.resize(m, n);
    match effective_policy(m, n, k) {
        Impl::Naive => *c = naive::matmul_a_bt(a, b),
        Impl::Blocked => matmul_a_bt_rows(a, b, c.data_mut(), 0, m),
        Impl::Parallel => par_row_partition(c, |chunk, lo, hi| matmul_a_bt_rows(a, b, chunk, lo, hi)),
    }
}

/// `C = A^T * B` written into `c`. Dispatches per the global [`KernelPolicy`].
pub fn matmul_at_b_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, n, k) = check_at_b(a, b);
    // lint: allow(no_alloc) - resize on a caller-retained buffer: allocates only on first use or growth, amortized to zero in the steady state
    c.resize(m, n);
    match effective_policy(m, n, k) {
        Impl::Naive => *c = naive::matmul_at_b(a, b),
        Impl::Blocked => matmul_at_b_rows(a, b, c.data_mut(), 0, m),
        Impl::Parallel => par_row_partition(c, |chunk, lo, hi| matmul_at_b_rows(a, b, chunk, lo, hi)),
    }
}

// --- explicit blocked / parallel variants (benchmarks & property tests) --

/// Blocked serial `C = A * B`, regardless of policy.
pub fn matmul_into_blocked(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, n, _) = check_matmul(a, b);
    c.resize(m, n);
    matmul_rows(a, b, c.data_mut(), 0, m);
}

/// Blocked serial `C = A * B^T`, regardless of policy.
pub fn matmul_a_bt_into_blocked(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, n, _) = check_a_bt(a, b);
    c.resize(m, n);
    matmul_a_bt_rows(a, b, c.data_mut(), 0, m);
}

/// Blocked serial `C = A^T * B`, regardless of policy.
pub fn matmul_at_b_into_blocked(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, n, _) = check_at_b(a, b);
    c.resize(m, n);
    matmul_at_b_rows(a, b, c.data_mut(), 0, m);
}

/// Threaded `C = A * B`, regardless of policy or size.
pub fn matmul_into_parallel(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, n, _) = check_matmul(a, b);
    c.resize(m, n);
    par_row_partition(c, |chunk, lo, hi| matmul_rows(a, b, chunk, lo, hi));
}

/// Threaded `C = A * B^T`, regardless of policy or size.
pub fn matmul_a_bt_into_parallel(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, n, _) = check_a_bt(a, b);
    c.resize(m, n);
    par_row_partition(c, |chunk, lo, hi| matmul_a_bt_rows(a, b, chunk, lo, hi));
}

/// Threaded `C = A^T * B`, regardless of policy or size.
pub fn matmul_at_b_into_parallel(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, n, _) = check_at_b(a, b);
    c.resize(m, n);
    par_row_partition(c, |chunk, lo, hi| matmul_at_b_rows(a, b, chunk, lo, hi));
}

enum Impl {
    Naive,
    Blocked,
    Parallel,
}

fn effective_policy(m: usize, n: usize, k: usize) -> Impl {
    match kernel_policy() {
        KernelPolicy::Naive => Impl::Naive,
        // The f32 entry points have no quantized implementation; under the
        // quantized policy they run the blocked kernels and only layers
        // holding i8 mirrors (in `naru-nn`) take the quantized path.
        KernelPolicy::Blocked | KernelPolicy::Quantized => Impl::Blocked,
        KernelPolicy::Parallel => Impl::Parallel,
        KernelPolicy::Auto => {
            if m.saturating_mul(n).saturating_mul(k) >= PARALLEL_FLOPS_THRESHOLD && m >= 2 * MIN_ROWS_PER_THREAD {
                Impl::Parallel
            } else {
                Impl::Blocked
            }
        }
    }
}

// --- allocating wrappers -------------------------------------------------

/// `C = A * B` where `A` is `m x k` and `B` is `k x n`.
///
/// # Panics
/// Panics if inner dimensions do not match.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(0, 0);
    matmul_into(a, b, &mut c);
    c
}

/// `C = A * B^T` where `A` is `m x k` and `B` is `n x k`.
///
/// This is the forward-pass orientation: each output element is a dot
/// product of two contiguous rows.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(0, 0);
    matmul_a_bt_into(a, b, &mut c);
    c
}

/// `C = A^T * B` where `A` is `k x m` and `B` is `k x n`.
///
/// This is the weight-gradient orientation (`dW = dY^T X`).
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(0, 0);
    matmul_at_b_into(a, b, &mut c);
    c
}

// --- softmax family ------------------------------------------------------

/// Numerically stable log-sum-exp of a slice.
///
/// Returns `-inf` for an empty slice, matching the convention that the sum
/// of zero exponentials is zero.
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return f32::NEG_INFINITY;
    }
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f32 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Row-wise softmax, returning a new matrix whose rows each sum to 1.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// In-place row-wise softmax.
pub fn softmax_rows_inplace(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        softmax_slice(row);
    }
}

/// In-place softmax over a single slice.
pub fn softmax_slice(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    } else {
        // All logits were -inf: fall back to uniform to stay a distribution.
        let uniform = 1.0 / row.len() as f32;
        for v in row.iter_mut() {
            *v = uniform;
        }
    }
}

/// Row-wise log-softmax, returning a new matrix.
pub fn log_softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    log_softmax_rows_inplace(&mut out);
    out
}

/// In-place row-wise log-softmax. Zero-width rows are a no-op, matching
/// [`softmax_rows_inplace`]'s guard.
pub fn log_softmax_rows_inplace(m: &mut Matrix) {
    if m.cols() == 0 {
        return;
    }
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let lse = log_sum_exp(row);
        for v in row.iter_mut() {
            *v -= lse;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_orientations_agree() {
        let a = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.5 - 1.0);
        let b = Matrix::from_fn(3, 5, |r, c| (r as f32 - c as f32) * 0.25);
        let c1 = matmul(&a, &b);
        let c2 = matmul_a_bt(&a, &b.transpose());
        let c3 = matmul_at_b(&a.transpose(), &b);
        for i in 0..c1.len() {
            assert!(approx_eq(c1.data()[i], c2.data()[i], 1e-5));
            assert!(approx_eq(c1.data()[i], c3.data()[i], 1e-5));
        }
    }

    #[test]
    fn blocked_and_parallel_match_naive_on_odd_shapes() {
        // Shapes straddling the tile size and thread-count boundaries.
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 70, 5), (65, 33, 129), (40, 8, 40), (130, 64, 1)] {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 17) % 13) as f32 * 0.37 - 1.7);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.21 - 0.9);
            let reference = naive::matmul(&a, &b);
            let mut c = Matrix::zeros(0, 0);
            matmul_into_blocked(&a, &b, &mut c);
            assert_eq!(c.shape(), reference.shape());
            for i in 0..c.len() {
                assert!(approx_eq(c.data()[i], reference.data()[i], 1e-4), "blocked {m}x{k}x{n} elem {i}");
            }
            matmul_into_parallel(&a, &b, &mut c);
            for i in 0..c.len() {
                assert!(approx_eq(c.data()[i], reference.data()[i], 1e-4), "parallel {m}x{k}x{n} elem {i}");
            }

            let bt = b.transpose();
            let mut c2 = Matrix::zeros(0, 0);
            matmul_a_bt_into_blocked(&a, &bt, &mut c2);
            for i in 0..c2.len() {
                assert!(approx_eq(c2.data()[i], reference.data()[i], 1e-4), "a_bt blocked {m}x{k}x{n}");
            }
            matmul_a_bt_into_parallel(&a, &bt, &mut c2);
            for i in 0..c2.len() {
                assert!(approx_eq(c2.data()[i], reference.data()[i], 1e-4), "a_bt parallel {m}x{k}x{n}");
            }

            let at = a.transpose();
            let mut c3 = Matrix::zeros(0, 0);
            matmul_at_b_into_blocked(&at, &b, &mut c3);
            for i in 0..c3.len() {
                assert!(approx_eq(c3.data()[i], reference.data()[i], 1e-4), "at_b blocked {m}x{k}x{n}");
            }
            matmul_at_b_into_parallel(&at, &b, &mut c3);
            for i in 0..c3.len() {
                assert!(approx_eq(c3.data()[i], reference.data()[i], 1e-4), "at_b parallel {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let a = Matrix::from_fn(8, 6, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(6, 4, |r, c| (r * c) as f32 * 0.5);
        // Pre-fill the output with garbage of a different shape.
        let mut c = Matrix::full(3, 17, 42.0);
        matmul_into(&a, &b, &mut c);
        assert_eq!(c.shape(), (8, 4));
        let expected = naive::matmul(&a, &b);
        for i in 0..c.len() {
            assert!(approx_eq(c.data()[i], expected.data()[i], 1e-5));
        }
    }

    #[test]
    fn dot_matches_sequential_sum() {
        for len in [0usize, 1, 7, 8, 9, 31, 64, 100] {
            let x: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).sin()).collect();
            let y: Vec<f32> = (0..len).map(|i| (i as f32 * 0.3).cos()).collect();
            let expected: f32 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
            assert!(approx_eq(dot(&x, &y), expected, 1e-5), "len {len}");
        }
    }

    #[test]
    fn kernel_policy_round_trips() {
        let original = kernel_policy();
        set_kernel_policy(KernelPolicy::Naive);
        assert_eq!(kernel_policy(), KernelPolicy::Naive);
        set_kernel_policy(KernelPolicy::Blocked);
        assert_eq!(kernel_policy(), KernelPolicy::Blocked);
        set_kernel_policy(KernelPolicy::Parallel);
        assert_eq!(kernel_policy(), KernelPolicy::Parallel);
        set_kernel_policy(KernelPolicy::Quantized);
        assert_eq!(kernel_policy(), KernelPolicy::Quantized);
        set_kernel_policy(KernelPolicy::Auto);
        assert_eq!(kernel_policy(), KernelPolicy::Auto);
        set_kernel_policy(original);
    }

    #[test]
    fn dot4_is_bit_identical_to_four_dots() {
        // The register-blocked micro-kernel must preserve each output's
        // accumulation order exactly — exact-mode estimates are asserted
        // bit-identical across releases, so this is not an approx check.
        for len in [0usize, 1, 5, 7, 8, 9, 16, 31, 63, 64, 65, 100, 130] {
            let x: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).sin()).collect();
            let ys: Vec<Vec<f32>> =
                (0..4).map(|k| (0..len).map(|i| ((i + 13 * k) as f32 * 0.3).cos() * 0.8).collect()).collect();
            let got = dot4(&x, &ys[0], &ys[1], &ys[2], &ys[3]);
            for k in 0..4 {
                let expected = dot(&x, &ys[k]);
                assert!(got[k].to_bits() == expected.to_bits(), "len {len} col {k}: {} vs {expected}", got[k]);
            }
        }
    }

    #[test]
    fn quantized_policy_runs_f32_entry_points_on_blocked_kernels() {
        let original = kernel_policy();
        let a = Matrix::from_fn(9, 21, |r, c| ((r * 5 + c * 3) % 7) as f32 * 0.4 - 1.0);
        let b = Matrix::from_fn(13, 21, |r, c| ((r * 3 + c) % 5) as f32 * 0.2 - 0.5);
        set_kernel_policy(KernelPolicy::Blocked);
        let blocked = matmul_a_bt(&a, &b);
        set_kernel_policy(KernelPolicy::Quantized);
        let quantized_policy = matmul_a_bt(&a, &b);
        set_kernel_policy(original);
        assert_eq!(blocked.data(), quantized_policy.data());
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 100.0]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!(approx_eq(s, 1.0, 1e-5));
        }
        assert!(p.get(0, 2) > p.get(0, 1) && p.get(0, 1) > p.get(0, 0));
        // Large logit dominates without overflow.
        assert!(p.get(1, 2) > 0.999);
    }

    #[test]
    fn softmax_all_neg_inf_falls_back_to_uniform() {
        let mut row = vec![f32::NEG_INFINITY; 4];
        softmax_slice(&mut row);
        for v in row {
            assert!(approx_eq(v, 0.25, 1e-6));
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let logits = Matrix::from_vec(1, 4, vec![0.3, -2.0, 1.5, 0.0]);
        let p = softmax_rows(&logits);
        let lp = log_softmax_rows(&logits);
        for i in 0..4 {
            assert!(approx_eq(lp.data()[i], p.data()[i].ln(), 1e-5));
        }
    }

    #[test]
    fn log_softmax_handles_zero_width_rows() {
        // Regression: zero-width rows used to be guarded only in
        // softmax_rows_inplace; log-softmax must be a no-op too, not panic
        // or poison the (empty) data.
        let mut m = Matrix::zeros(3, 0);
        log_softmax_rows_inplace(&mut m);
        assert_eq!(m.shape(), (3, 0));
        let out = log_softmax_rows(&Matrix::zeros(5, 0));
        assert_eq!(out.shape(), (5, 0));
        assert!(out.is_empty());
    }

    #[test]
    fn log_sum_exp_stability() {
        assert!(approx_eq(log_sum_exp(&[0.0, 0.0]), std::f32::consts::LN_2, 1e-6));
        // Huge values should not overflow.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!(approx_eq(v, 1000.0 + std::f32::consts::LN_2, 1e-4));
        assert_eq!(log_sum_exp(&[]), f32::NEG_INFINITY);
    }
}
