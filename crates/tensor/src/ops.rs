//! Matrix multiplication and row-wise softmax kernels.
//!
//! Three matmul orientations are provided because back-propagation through a
//! linear layer `Y = X W^T + b` needs all of them:
//!
//! * forward:              `Y  = X  W^T`  → [`matmul_a_bt`]
//! * gradient w.r.t. X:    `dX = dY W`    → [`matmul`]
//! * gradient w.r.t. W:    `dW = dY^T X`  → [`matmul_at_b`]
//!
//! All kernels accumulate in `f32`; the models trained in this workspace are
//! small enough that this is numerically adequate (verified by the
//! gradient-check tests in `naru-nn`).

use crate::matrix::Matrix;

/// `C = A * B` where `A` is `m x k` and `B` is `k x n`.
///
/// # Panics
/// Panics if inner dimensions do not match.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch: {:?} * {:?}", a.shape(), b.shape());
    let m = a.rows();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    // i-k-j loop order keeps the innermost loop streaming over contiguous
    // rows of both B and C, which autovectorizes well.
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            for j in 0..n {
                c_row[j] += a_ip * b_row[j];
            }
        }
    }
    c
}

/// `C = A * B^T` where `A` is `m x k` and `B` is `n x k`.
///
/// This is the forward-pass orientation: each output element is a dot
/// product of two contiguous rows.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_a_bt inner dimension mismatch: {:?} * {:?}^T", a.shape(), b.shape());
    let m = a.rows();
    let n = b.rows();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (j, out) in c_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for p in 0..a_row.len() {
                acc += a_row[p] * b_row[p];
            }
            *out = acc;
        }
    }
    c
}

/// `C = A^T * B` where `A` is `k x m` and `B` is `k x n`.
///
/// This is the weight-gradient orientation (`dW = dY^T X`).
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_at_b inner dimension mismatch: {:?}^T * {:?}", a.shape(), b.shape());
    let k = a.rows();
    let m = a.cols();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for p in 0..k {
        let a_row = a.row(p);
        let b_row = b.row(p);
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let c_row = c.row_mut(i);
            for j in 0..n {
                c_row[j] += a_pi * b_row[j];
            }
        }
    }
    c
}

/// Numerically stable log-sum-exp of a slice.
///
/// Returns `-inf` for an empty slice, matching the convention that the sum
/// of zero exponentials is zero.
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return f32::NEG_INFINITY;
    }
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f32 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Row-wise softmax, returning a new matrix whose rows each sum to 1.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// In-place row-wise softmax.
pub fn softmax_rows_inplace(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        softmax_slice(row);
    }
}

/// In-place softmax over a single slice.
pub fn softmax_slice(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    } else {
        // All logits were -inf: fall back to uniform to stay a distribution.
        let uniform = 1.0 / row.len() as f32;
        for v in row.iter_mut() {
            *v = uniform;
        }
    }
}

/// Row-wise log-softmax, returning a new matrix.
pub fn log_softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let lse = log_sum_exp(row);
        for v in row.iter_mut() {
            *v -= lse;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_orientations_agree() {
        let a = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.5 - 1.0);
        let b = Matrix::from_fn(3, 5, |r, c| (r as f32 - c as f32) * 0.25);
        let c1 = matmul(&a, &b);
        let c2 = matmul_a_bt(&a, &b.transpose());
        let c3 = matmul_at_b(&a.transpose(), &b);
        for i in 0..c1.len() {
            assert!(approx_eq(c1.data()[i], c2.data()[i], 1e-5));
            assert!(approx_eq(c1.data()[i], c3.data()[i], 1e-5));
        }
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 100.0]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!(approx_eq(s, 1.0, 1e-5));
        }
        assert!(p.get(0, 2) > p.get(0, 1) && p.get(0, 1) > p.get(0, 0));
        // Large logit dominates without overflow.
        assert!(p.get(1, 2) > 0.999);
    }

    #[test]
    fn softmax_all_neg_inf_falls_back_to_uniform() {
        let mut row = vec![f32::NEG_INFINITY; 4];
        softmax_slice(&mut row);
        for v in row {
            assert!(approx_eq(v, 0.25, 1e-6));
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let logits = Matrix::from_vec(1, 4, vec![0.3, -2.0, 1.5, 0.0]);
        let p = softmax_rows(&logits);
        let lp = log_softmax_rows(&logits);
        for i in 0..4 {
            assert!(approx_eq(lp.data()[i], p.data()[i].ln(), 1e-5));
        }
    }

    #[test]
    fn log_sum_exp_stability() {
        assert!(approx_eq(log_sum_exp(&[0.0, 0.0]), std::f32::consts::LN_2, 1e-6));
        // Huge values should not overflow.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!(approx_eq(v, 1000.0 + std::f32::consts::LN_2, 1e-4));
        assert_eq!(log_sum_exp(&[]), f32::NEG_INFINITY);
    }
}
