//! Random-number helpers.
//!
//! `rand` (the only RNG dependency allowed in this workspace) does not ship
//! a normal distribution without `rand_distr`, so the Gaussian sampling
//! needed for weight initialization and for the KDE baseline is implemented
//! here with the Box–Muller transform.

use rand::Rng;

/// Samples standard-normal variates via the Box–Muller transform, caching
/// the spare variate so consecutive calls cost one transcendental pair per
/// two samples.
#[derive(Debug, Default, Clone)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        Self { spare: None }
    }

    /// Draws one sample from `N(0, 1)`.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Box–Muller: two uniforms -> two independent standard normals.
        loop {
            let u1: f64 = rng.gen::<f64>();
            let u2: f64 = rng.gen::<f64>();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// Draws one sample from `N(mean, std^2)`.
    pub fn sample_scaled<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std: f64) -> f64 {
        mean + std * self.sample(rng)
    }
}

/// Draws an index from an unnormalized non-negative weight vector.
///
/// Returns `None` if the total weight is not positive. This is the core
/// primitive behind progressive sampling's per-column draws.
pub fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f32]) -> Option<usize> {
    let total: f64 = weights.iter().map(|&w| w.max(0.0) as f64).sum();
    if total <= 0.0 || !total.is_finite() {
        return None;
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        let w = w.max(0.0) as f64;
        if w <= 0.0 {
            continue;
        }
        if target < w {
            return Some(i);
        }
        target -= w;
    }
    // Floating-point slack: return the last positive-weight index.
    weights.iter().rposition(|&w| w > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_sampler_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sampler = NormalSampler::new();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn scaled_sampler_shifts_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sampler = NormalSampler::new();
        let n = 20_000;
        let mean = (0..n).map(|_| sampler.sample_scaled(&mut rng, 5.0, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.02);
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[sample_categorical(&mut rng, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn categorical_zero_weights_returns_none() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sample_categorical(&mut rng, &[0.0, 0.0]), None);
        assert_eq!(sample_categorical(&mut rng, &[]), None);
    }
}
