//! Row-major dense `f32` matrix.
//!
//! [`Matrix`] is the only tensor type in the workspace. It is intentionally
//! minimal: a shape plus a contiguous `Vec<f32>`. All neural-network layers
//! in `naru-nn` operate on batches laid out as one row per example.

use std::fmt;

/// A dense, row-major matrix of `f32` values.
///
/// Rows are contiguous in memory, so `data[r * cols + c]` addresses element
/// `(r, c)`. The type deliberately exposes its backing storage through
/// [`Matrix::data`] / [`Matrix::data_mut`] so hot loops in the layer
/// implementations can iterate over slices directly.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a matrix from an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length {} does not match shape {}x{}", data.len(), rows, cols);
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutable view of row `r` as a contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Reshapes to `rows x cols`, reusing the existing allocation where
    /// possible (no allocation when the new element count fits capacity).
    ///
    /// The element contents after a resize are unspecified — callers are
    /// expected to overwrite them (this is the buffer-reuse primitive behind
    /// the `_into` kernels and the inference workspaces).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies row `src` over row `dst` (used for in-place compaction of
    /// batch buffers). No-op when `src == dst`.
    pub fn copy_row_within(&mut self, src: usize, dst: usize) {
        debug_assert!(src < self.rows && dst < self.rows);
        if src != dst {
            self.data.copy_within(src * self.cols..(src + 1) * self.cols, dst * self.cols);
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sets every element to `value`, keeping the allocation.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// In-place element-wise addition: `self += other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// In-place scaled addition: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * *b;
        }
    }

    /// In-place scaling: `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|v| *v *= alpha);
    }

    /// In-place element-wise (Hadamard) product: `self *= other`.
    pub fn hadamard_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in hadamard_assign");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= *b;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.data.iter_mut().for_each(|v| *v = f(*v));
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, v| m.max(v.abs()))
    }

    /// Returns true if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Stacks the given row slices into a new matrix.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths or the input is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Matrix {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "row length mismatch in from_rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix — the natural starting state for `_into`
    /// output buffers, which are resized on first use.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self.get(r, c))?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_values() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 3, vec![1.0]);
    }

    #[test]
    fn transpose_is_involutive() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.get(4, 2), m.get(2, 4));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert!(a.data().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        a.scale(2.0);
        assert!(a.data().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        a.hadamard_assign(&b);
        assert_eq!(a.data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn map_and_sum() {
        let m = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        let relu = m.map(|v| v.max(0.0));
        assert_eq!(relu.data(), &[1.0, 0.0, 3.0, 0.0]);
        assert_eq!(relu.sum(), 4.0);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn from_rows_stacks() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_non_finite());
        m.set(1, 1, f32::NAN);
        assert!(m.has_non_finite());
    }
}
