//! Small statistics helpers shared by the evaluation harness.
//!
//! Percentiles here use the same convention as the paper's reporting code
//! (NumPy's linear interpolation), so the q-error tables in `naru-bench`
//! read exactly like Tables 3–5.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Percentile `p` in `[0, 100]` with linear interpolation between order
/// statistics (NumPy's default `linear` method).
///
/// Returns `NaN` for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_sorted(&sorted, p)
}

/// Percentile over an already-sorted slice. See [`percentile`].
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Convenience: computes several percentiles in one sort.
pub fn quantiles(xs: &[f64], ps: &[f64]) -> Vec<f64> {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    ps.iter().map(|&p| percentile_sorted(&sorted, p)).collect()
}

/// Maximum value; `NaN` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::NAN, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_matches_percentile() {
        let xs = [5.0, 1.0, 9.0, 3.0, 7.0];
        let qs = quantiles(&xs, &[0.0, 50.0, 95.0, 100.0]);
        assert_eq!(qs[0], 1.0);
        assert_eq!(qs[1], 5.0);
        assert_eq!(qs[3], 9.0);
        assert!((qs[2] - percentile(&xs, 95.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_slices() {
        assert!(percentile(&[], 50.0).is_nan());
        assert!(max(&[]).is_nan());
    }

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }
}
