//! Fixture-based rule tests: every rule family must catch its seeded
//! violation AND stay silent on the matching near-miss.

use naru_lint::{run_sources, Config, Report};

fn scoped_config() -> Config {
    Config {
        panic_scope: vec!["fixtures/".to_owned()],
        index_scope: vec!["fixtures/".to_owned()],
        accounting_files: vec!["accounting_violation.rs".to_owned(), "accounting_clean.rs".to_owned()],
        watched_enums: vec!["MiniServeError".to_owned()],
        lock_files: vec!["lock_violation.rs".to_owned(), "lock_clean.rs".to_owned()],
        ..Config::default()
    }
}

fn run_one(path: &str, src: &str, cfg: &Config) -> Report {
    run_sources(&[(path.to_owned(), src.to_owned())], cfg)
}

fn rules_of(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn no_alloc_catches_seeded_violations() {
    let report =
        run_one("fixtures/no_alloc_violation.rs", include_str!("fixtures/no_alloc_violation.rs"), &scoped_config());
    let no_alloc: Vec<_> = report.findings.iter().filter(|f| f.rule == "no_alloc").collect();
    // `to_vec` + `push` in scale_into; `format!` + `Vec::with_capacity` in
    // the directive-marked fn.
    assert_eq!(no_alloc.len(), 4, "findings: {:?}", report.findings);
    assert!(no_alloc.iter().any(|f| f.message.contains("to_vec") && f.message.contains("scale_into")));
    assert!(no_alloc.iter().any(|f| f.message.contains("format") && f.message.contains("marked_hot")));
    assert!(no_alloc.iter().any(|f| f.message.contains("Vec::with_capacity")));
}

#[test]
fn no_alloc_passes_the_near_miss() {
    let report = run_one("fixtures/no_alloc_clean.rs", include_str!("fixtures/no_alloc_clean.rs"), &scoped_config());
    assert!(report.is_clean(), "unexpected findings: {:?}", report.findings);
}

#[test]
fn panic_and_index_catch_seeded_violations() {
    let report = run_one("fixtures/panic_violation.rs", include_str!("fixtures/panic_violation.rs"), &scoped_config());
    let rules = rules_of(&report);
    // unwrap, assert!, unreachable! → panic; `values[0]` → index.
    assert_eq!(rules.iter().filter(|r| **r == "panic").count(), 3, "findings: {:?}", report.findings);
    assert_eq!(rules.iter().filter(|r| **r == "index").count(), 1, "findings: {:?}", report.findings);
}

#[test]
fn panic_passes_the_near_miss_and_audits_the_waiver() {
    let report = run_one("fixtures/panic_clean.rs", include_str!("fixtures/panic_clean.rs"), &scoped_config());
    assert!(report.is_clean(), "unexpected findings: {:?}", report.findings);
    // The contract assert's waiver is used exactly once and keeps its reason.
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].suppressed, 1);
    assert!(report.allows[0].reason.contains("caller bug"));
}

#[test]
fn malformed_and_unused_allows_are_findings() {
    let report = run_one("misc/allow_bad.rs", include_str!("fixtures/allow_bad.rs"), &scoped_config());
    let rules = rules_of(&report);
    assert_eq!(rules.iter().filter(|r| **r == "bad-allow").count(), 3, "findings: {:?}", report.findings);
    assert_eq!(rules.iter().filter(|r| **r == "unused-allow").count(), 1, "findings: {:?}", report.findings);
    assert!(report.allows.is_empty(), "no waiver should count as used");
}

#[test]
fn accounting_catches_seeded_violations() {
    let report =
        run_one("fixtures/accounting_violation.rs", include_str!("fixtures/accounting_violation.rs"), &scoped_config());
    let accounting: Vec<_> = report.findings.iter().filter(|f| f.rule == "accounting").collect();
    assert_eq!(accounting.len(), 3, "findings: {:?}", report.findings);
    assert!(accounting.iter().any(|f| f.message.contains("`_` arm")));
    assert!(accounting.iter().any(|f| f.message.contains("missing variant(s): DeadlineExceeded")));
    assert!(accounting.iter().any(|f| f.message.contains("lifecycle counter `served`")));
}

#[test]
fn accounting_passes_the_near_miss() {
    // Both fixtures run together so the clean file's matches resolve
    // against the enum definition in the violation file.
    let cfg = scoped_config();
    let files = vec![
        ("fixtures/accounting_violation.rs".to_owned(), include_str!("fixtures/accounting_violation.rs").to_owned()),
        ("fixtures/accounting_clean.rs".to_owned(), include_str!("fixtures/accounting_clean.rs").to_owned()),
    ];
    let report = run_sources(&files, &cfg);
    assert!(
        report.findings.iter().all(|f| f.path.ends_with("accounting_violation.rs")),
        "clean fixture produced findings: {:?}",
        report.findings
    );
}

#[test]
fn lock_catches_seeded_violations() {
    let report = run_one("fixtures/lock_violation.rs", include_str!("fixtures/lock_violation.rs"), &scoped_config());
    let lock: Vec<_> = report.findings.iter().filter(|f| f.rule == "lock").collect();
    assert_eq!(lock.len(), 2, "findings: {:?}", report.findings);
    assert!(lock.iter().any(|f| f.message.contains("Instant::now")));
    assert!(lock.iter().any(|f| f.message.contains(".estimate()")));
}

#[test]
fn lock_passes_the_near_miss() {
    let report = run_one("fixtures/lock_clean.rs", include_str!("fixtures/lock_clean.rs"), &scoped_config());
    assert!(report.is_clean(), "unexpected findings: {:?}", report.findings);
}

#[test]
fn json_report_round_trips_findings() {
    let report = run_one("fixtures/panic_violation.rs", include_str!("fixtures/panic_violation.rs"), &scoped_config());
    let json = report.to_json();
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("\"rule\": \"panic\""));
    assert!(json.contains("\"rule\": \"index\""));
    assert!(json.contains("fixtures/panic_violation.rs"));
}
