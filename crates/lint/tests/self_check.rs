//! The gate the CI job enforces, as a test: the real workspace must be
//! lint-clean under the default configuration, and every waiver must carry
//! its reason into the report.

use std::path::Path;

use naru_lint::{run_root, Config};

#[test]
fn workspace_is_clean_under_the_default_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run_root(&root, &Config::default()).expect("workspace sources readable");

    // Sanity: the walker actually visited the workspace (facade + crates).
    assert!(report.files_scanned > 40, "only {} files scanned", report.files_scanned);

    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(report.is_clean(), "workspace has lint findings:\n{}", rendered.join("\n"));

    // Waivers exist (the triage is real) and every one carries a reason.
    assert!(!report.allows.is_empty());
    assert!(report.allows.iter().all(|a| a.reason.chars().count() >= 8));

    // The rules genuinely ran: the serve and core sources are in scope.
    assert!(report.allows.iter().any(|a| a.path.starts_with("crates/serve/")));
    assert!(report.allows.iter().any(|a| a.path.starts_with("crates/core/")));
}
