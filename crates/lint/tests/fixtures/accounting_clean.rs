// Near-misses for the accounting rule: an exhaustive wildcard-free match
// over the watched enum, a guarded arm, and a wildcard match over an enum
// nobody watches.

pub fn describe(err: &crate::MiniServeError) -> &'static str {
    match err {
        crate::MiniServeError::Overloaded => "overloaded",
        crate::MiniServeError::ShuttingDown => "shutting down",
        crate::MiniServeError::WorkerLost => "worker lost",
        crate::MiniServeError::DeadlineExceeded => "deadline exceeded",
    }
}

pub enum UnwatchedState {
    Hot,
    Cold,
    Unknown,
}

pub fn temperature(state: &UnwatchedState) -> u8 {
    match state {
        UnwatchedState::Hot => 2,
        _ => 0,
    }
}
