// Seeded violations for the lock rule: a wall-clock read and a foreign call
// inside the queue's critical section.

use std::sync::Mutex;
use std::time::Instant;

use crate::estimator::Estimator;

pub struct Queue {
    state: Mutex<Vec<u64>>,
    estimator: Estimator,
}

impl Queue {
    pub fn drain_badly(&self) -> f64 {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let started = Instant::now();
        let answer = self.estimator.estimate(started);
        state.push(1);
        answer
    }
}
