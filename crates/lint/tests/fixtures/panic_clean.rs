// Near-misses for the panic and index rules: fallible access via `?` and
// `get`, a waived contract assert, panicking macros confined to tests, and
// `unwrap` quoted in a string literal.

pub fn first_doubled(values: &[u32]) -> Option<u32> {
    let first = values.first()?;
    values.get(0).map(|v| v + first)
}

pub fn checked(capacity: usize) -> usize {
    // lint: allow(panic) - documented constructor contract: zero capacity is a caller bug
    assert!(capacity > 0, "capacity must be positive");
    capacity
}

pub fn describes_unwrap() -> &'static str {
    "calling .unwrap() here would be a bug"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        assert_eq!(super::first_doubled(&[1, 2]).unwrap(), 2);
        let data = [1u32, 2];
        assert_eq!(data[0], 1);
    }
}
