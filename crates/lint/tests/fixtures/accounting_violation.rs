// Seeded violations for the accounting rule: a wildcard arm over a watched
// enum, a match missing a variant, and a lifecycle counter advanced outside
// its allowlisted file.

pub enum MiniServeError {
    Overloaded,
    ShuttingDown,
    WorkerLost,
    DeadlineExceeded,
}

pub fn describe(err: &MiniServeError) -> &'static str {
    match err {
        MiniServeError::Overloaded => "overloaded",
        MiniServeError::ShuttingDown => "shutting down",
        _ => "other",
    }
}

pub fn retryable(err: &MiniServeError) -> bool {
    match err {
        MiniServeError::Overloaded => true,
        MiniServeError::ShuttingDown => false,
        MiniServeError::WorkerLost => true,
    }
}

pub struct Counters {
    pub served: std::sync::atomic::AtomicU64,
}

pub fn sneak_increment(counters: &Counters) {
    counters.served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}
