// Malformed and unused escape hatches: each directive here is itself a
// finding (`bad-allow` / `unused-allow`).

// lint: allow(panic)
pub fn missing_reason(values: &[u32]) -> u32 {
    values.first().copied().unwrap_or(0)
}

// lint: allow(panic) - ok
pub fn reason_too_short(values: &[u32]) -> u32 {
    values.first().copied().unwrap_or(0)
}

// lint: allow(made_up_rule) - this rule id does not exist anywhere
pub fn unknown_rule() -> u32 {
    7
}

// lint: allow(panic) - nothing on the next line can panic, so this is dead weight
pub fn unused_waiver(values: &[u32]) -> u32 {
    values.first().copied().unwrap_or(0)
}
