// Near-misses for the no_alloc rule: allocation in a fn that never made the
// no-alloc promise, a genuinely in-place hot fn, and allocation confined to
// test code inside a hot fn's file.

/// Mentions `.to_vec()` and `Vec::new()` in documentation only.
pub fn scale(src: &[f32]) -> Vec<f32> {
    src.to_vec()
}

pub fn write_into(src: &[f32], out: &mut [f32]) {
    for (o, s) in out.iter_mut().zip(src) {
        *o = *s * 2.0;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn hot_paths_can_allocate_in_tests() {
        let grown: Vec<f32> = vec![1.0, 2.0].iter().map(|v| v * 2.0).collect();
        assert_eq!(grown.len(), 2);
    }
}
