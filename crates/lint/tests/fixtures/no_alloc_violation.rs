// Seeded violations for the no_alloc rule: a `*_into` fn and a
// directive-marked fn that both allocate.

pub fn scale_into(src: &[f32], out: &mut Vec<f32>) {
    let tmp: Vec<f32> = src.to_vec();
    out.clear();
    for v in tmp {
        out.push(v * 2.0);
    }
}

// lint: no_alloc
pub fn marked_hot(values: &[u64]) -> usize {
    let rendered = format!("{}", values.len());
    let buffer = Vec::with_capacity(rendered.len());
    buffer.len()
}
