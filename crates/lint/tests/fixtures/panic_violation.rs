// Seeded violations for the panic and index rules in a scoped path.

pub fn first_doubled(values: &[u32]) -> u32 {
    let first = values.first().unwrap();
    assert!(*first > 0, "positive input only");
    values[0] * 2
}

pub fn must_not_reach() -> u32 {
    unreachable!("seeded violation")
}
