// Near-miss for the lock rule: the clock is read before the lock, the
// guard is dropped before the foreign call, and only O(1) container and
// local-helper work happens inside the critical section.

use std::sync::Mutex;
use std::time::Instant;

pub struct Estimator;

impl Estimator {
    pub fn estimate(&self, _at: Instant) -> f64 {
        0.5
    }
}

pub struct Queue {
    state: Mutex<Vec<u64>>,
    estimator: Estimator,
}

impl Queue {
    fn lane_for(&self, item: u64) -> u64 {
        item % 3
    }

    pub fn drain_properly(&self) -> f64 {
        let started = Instant::now();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let lane = self.lane_for(7);
        state.push(lane);
        let _depth = state.len();
        drop(state);
        self.estimator.estimate(started)
    }
}
