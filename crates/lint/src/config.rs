//! Rule scoping: which files each rule family applies to.
//!
//! Paths are workspace-relative with `/` separators and matched by simple
//! prefix (directories) or suffix (single files), so the same `Config`
//! works from the repo root and from fixture tests that point the scopes at
//! synthetic paths.

/// Where each rule looks, plus the watched-enum and counter vocabulary of
/// the accounting rule.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directory prefixes whose non-test code must be panic-free
    /// (`unwrap`/`expect`/panicking macros).
    pub panic_scope: Vec<String>,
    /// Directory prefixes whose non-test code may not index slices without
    /// `get` (same default scope as `panic_scope`, separable for fixtures).
    pub index_scope: Vec<String>,
    /// File suffixes where every `match` over a watched enum must be
    /// wildcard-free and complete.
    pub accounting_files: Vec<String>,
    /// Enum names whose matches are checked for exhaustiveness.
    pub watched_enums: Vec<String>,
    /// Counter field names whose increments are restricted.
    pub counters: Vec<String>,
    /// File suffixes allowed to increment the atomic lifecycle counters.
    pub counter_files: Vec<String>,
    /// File suffixes allowed to advance the queue's `pushed` acceptance
    /// counter.
    pub accepted_counter_files: Vec<String>,
    /// File suffixes subject to the lock-discipline rule.
    pub lock_files: Vec<String>,
}

impl Default for Config {
    /// The repo's real invariants, matching the workspace layout.
    fn default() -> Self {
        // The quantized kernel modules join the serving-path crates: they
        // sit on the relaxed inference hot path, so they carry the same
        // panic-freedom and checked-indexing obligations (waivers must be
        // argued inline like everywhere else).
        let panic_free = vec![
            "crates/serve/src/".to_owned(),
            "crates/core/src/".to_owned(),
            "crates/net/src/".to_owned(),
            "crates/tensor/src/quant.rs".to_owned(),
            "crates/nn/src/quant.rs".to_owned(),
        ];
        Config {
            panic_scope: panic_free.clone(),
            index_scope: panic_free,
            accounting_files: vec![
                "crates/serve/src/server.rs".to_owned(),
                "crates/serve/src/stats.rs".to_owned(),
                "crates/serve/src/cache.rs".to_owned(),
                "crates/serve/src/error.rs".to_owned(),
                "crates/query/src/estimate.rs".to_owned(),
                "crates/net/src/error.rs".to_owned(),
            ],
            watched_enums: vec!["ServeError".to_owned(), "Provenance".to_owned()],
            counters: vec![
                "accepted".to_owned(),
                "served".to_owned(),
                "failed".to_owned(),
                "shed".to_owned(),
                "cancelled".to_owned(),
                "rejected".to_owned(),
            ],
            counter_files: vec!["crates/serve/src/server.rs".to_owned()],
            accepted_counter_files: vec!["crates/serve/src/queue.rs".to_owned()],
            lock_files: vec!["crates/serve/src/queue.rs".to_owned()],
        }
    }
}

impl Config {
    pub fn in_panic_scope(&self, path: &str) -> bool {
        self.panic_scope.iter().any(|p| path.starts_with(p))
    }

    pub fn in_index_scope(&self, path: &str) -> bool {
        self.index_scope.iter().any(|p| path.starts_with(p))
    }

    pub fn is_accounting_file(&self, path: &str) -> bool {
        self.accounting_files.iter().any(|f| path.ends_with(f))
    }

    pub fn is_counter_file(&self, path: &str) -> bool {
        self.counter_files.iter().any(|f| path.ends_with(f))
    }

    pub fn is_accepted_counter_file(&self, path: &str) -> bool {
        self.accepted_counter_files.iter().any(|f| path.ends_with(f))
    }

    pub fn is_lock_file(&self, path: &str) -> bool {
        self.lock_files.iter().any(|f| path.ends_with(f))
    }
}
