//! Findings, the run report, and its hand-rolled JSON serialization.

use std::fmt;

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (`no_alloc`, `panic`, `index`, `accounting`, `lock`,
    /// `bad-allow`, `unused-allow`).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// An escape hatch that actually suppressed something, kept for the report
/// so waivers stay auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsedAllow {
    pub rule: String,
    pub path: String,
    pub line: u32,
    pub reason: String,
    /// How many findings this directive suppressed.
    pub suppressed: u32,
}

/// The outcome of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub allows: Vec<UsedAllow>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Machine-readable report (stable field order, one finding per entry).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"tool\": \"naru-lint\",\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&f.rule),
                json_str(&f.path),
                f.line,
                json_str(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"suppressed\": {}, \"reason\": {}}}",
                json_str(&a.rule),
                json_str(&a.path),
                a.line,
                a.suppressed,
                json_str(&a.reason)
            ));
        }
        if !self.allows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_reports_cleanliness() {
        let mut report = Report { files_scanned: 2, ..Report::default() };
        assert!(report.is_clean());
        assert!(report.to_json().contains("\"clean\": true"));
        report.findings.push(Finding {
            rule: "panic".to_owned(),
            path: "a/b.rs".to_owned(),
            line: 7,
            message: "call to `.unwrap()` — \"quoted\"".to_owned(),
        });
        let json = report.to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"line\": 7"));
    }
}
