//! Panic-freedom: no `unwrap`/`expect`/panicking macros and no unchecked
//! slice indexing in the scoped crates' non-test code.
//!
//! The serving layer's availability story depends on worker panics being
//! *injected faults*, not latent bugs: every real panic site must either be
//! converted to a typed error or carry an auditable waiver.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::rules::push;
use crate::source::FileCtx;

/// Methods that panic on the error/none path.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that unconditionally (or assertively) panic. `debug_assert*` is
/// deliberately absent: it vanishes in release builds.
const PANIC_MACROS: &[&str] = &["panic", "unimplemented", "todo", "unreachable", "assert", "assert_eq", "assert_ne"];

/// Identifiers that may precede `[` without it being an index expression
/// (slice patterns, array types, `for x in arr [..]` never parses that way,
/// but keywords keep the check honest).
const NON_INDEX_PREFIX: &[&str] = &[
    "in", "as", "mut", "ref", "return", "break", "continue", "else", "match", "if", "while", "loop", "move", "dyn",
    "where", "for", "let", "use", "pub", "crate", "super", "static", "const", "enum", "struct", "fn", "impl", "trait",
    "type", "mod", "unsafe", "await", "yield", "box", "do",
];

pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    let panic_scope = cfg.in_panic_scope(&ctx.path);
    let index_scope = cfg.in_index_scope(&ctx.path);
    if !panic_scope && !index_scope {
        return;
    }
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.is_test_line(t.line) {
            continue;
        }
        if panic_scope {
            // `.unwrap(` / `.expect(`
            if t.is_punct(".")
                && toks.get(i + 1).is_some_and(|m| PANIC_METHODS.iter().any(|p| m.is_ident(p)))
                && toks.get(i + 2).is_some_and(|p| p.is_punct("("))
            {
                let m = &toks[i + 1].text;
                push(
                    out,
                    "panic",
                    ctx,
                    toks[i + 1].line,
                    format!("`.{m}()` can panic; return a typed error or annotate `lint: allow(panic) - <why it cannot fire>`"),
                );
            }
            // `panic!(` and friends
            if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|b| b.is_punct("!"))
            {
                push(
                    out,
                    "panic",
                    ctx,
                    t.line,
                    format!("`{}!` panics; non-test serving/core code must not (annotate `lint: allow(panic)` if provably unreachable)", t.text),
                );
            }
        }
        if index_scope && t.is_punct("[") && i > 0 {
            let prev = &toks[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !NON_INDEX_PREFIX.contains(&prev.text.as_str()),
                TokKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
                _ => false,
            };
            if indexes {
                let scope = ctx.enclosing_fn(i).map(|f| format!(" in `{}`", f.name)).unwrap_or_default();
                push(
                    out,
                    "index",
                    ctx,
                    t.line,
                    format!(
                        "unchecked slice index{scope} can panic; use `.get(..)` or annotate with an in-bounds argument"
                    ),
                );
            }
        }
    }
}
