//! The rule families and the escape-hatch (suppression) engine.
//!
//! Each rule emits raw findings; `analyze` then applies `lint: allow`
//! directives, turns malformed or unused directives into findings of their
//! own, and returns the surviving findings plus the audited allow list.

pub mod accounting;
pub mod lock;
pub mod no_alloc;
pub mod panic_free;

use std::collections::HashMap;

use crate::config::Config;
use crate::report::{Finding, UsedAllow};
use crate::source::{DirectiveKind, FileCtx};

/// Rule ids an `allow(...)` directive may name.
pub const RULE_IDS: &[&str] = &["no_alloc", "panic", "index", "accounting", "lock"];

/// Watched-enum variant table, collected across every scanned file.
pub type EnumTable = HashMap<String, Vec<String>>;

/// How far above a `fn` header an `allow_fn`/`no_alloc` directive may sit
/// (attributes and doc comments push the header down).
const FN_DIRECTIVE_REACH: u32 = 30;

/// Runs every rule on one file and applies the escape hatches.
pub fn analyze(ctx: &FileCtx, cfg: &Config, enums: &EnumTable) -> (Vec<Finding>, Vec<UsedAllow>) {
    let mut raw = Vec::new();
    no_alloc::check(ctx, cfg, &mut raw);
    panic_free::check(ctx, cfg, &mut raw);
    accounting::check(ctx, cfg, enums, &mut raw);
    lock::check(ctx, cfg, &mut raw);
    // Nested hot fns can be scanned through both the inner and outer span;
    // findings are identical, so dedup keeps diagnostics stable.
    raw.sort_by(|a, b| (a.line, &a.rule, &a.message).cmp(&(b.line, &b.rule, &b.message)));
    raw.dedup();
    apply_allows(ctx, raw)
}

/// One resolved `allow` directive and what it may suppress.
struct AllowSite {
    rules: Vec<String>,
    reason: String,
    line: u32,
    /// For line-scoped allows: the single line the directive covers.
    target_line: Option<u32>,
    /// For fn-scoped allows: the covered body line range (inclusive).
    fn_range: Option<(u32, u32)>,
    suppressed: u32,
}

fn apply_allows(ctx: &FileCtx, raw: Vec<Finding>) -> (Vec<Finding>, Vec<UsedAllow>) {
    let mut findings = Vec::new();
    let mut sites: Vec<AllowSite> = Vec::new();

    for directive in &ctx.directives {
        match &directive.kind {
            DirectiveKind::NoAlloc => {} // consumed by the no_alloc rule
            DirectiveKind::Malformed { message } => findings.push(Finding {
                rule: "bad-allow".to_owned(),
                path: ctx.path.clone(),
                line: directive.line,
                message: message.clone(),
            }),
            DirectiveKind::Allow { rules, fn_scope, reason } => {
                if let Some(bad) = rules.iter().find(|r| !RULE_IDS.contains(&r.as_str())) {
                    findings.push(Finding {
                        rule: "bad-allow".to_owned(),
                        path: ctx.path.clone(),
                        line: directive.line,
                        message: format!("allow names unknown rule `{bad}` (known: {})", RULE_IDS.join(", ")),
                    });
                    continue;
                }
                let (target_line, fn_range) = if *fn_scope {
                    (None, fn_target(ctx, directive.line))
                } else {
                    (Some(line_target(ctx, directive.line)), None)
                };
                if *fn_scope && fn_range.is_none() {
                    findings.push(Finding {
                        rule: "bad-allow".to_owned(),
                        path: ctx.path.clone(),
                        line: directive.line,
                        message: "allow_fn is not attached to any function".to_owned(),
                    });
                    continue;
                }
                sites.push(AllowSite {
                    rules: rules.clone(),
                    reason: reason.clone(),
                    line: directive.line,
                    target_line,
                    fn_range,
                    suppressed: 0,
                });
            }
        }
    }

    for finding in raw {
        let site = sites.iter_mut().find(|s| {
            s.rules.iter().any(|r| r == &finding.rule)
                && (s.target_line == Some(finding.line)
                    || s.fn_range.is_some_and(|(lo, hi)| (lo..=hi).contains(&finding.line)))
        });
        match site {
            Some(site) => site.suppressed += 1,
            None => findings.push(finding),
        }
    }

    let mut allows = Vec::new();
    for site in sites {
        if site.suppressed == 0 {
            findings.push(Finding {
                rule: "unused-allow".to_owned(),
                path: ctx.path.clone(),
                line: site.line,
                message: format!(
                    "allow({}) suppresses nothing — remove it or move it next to the finding",
                    site.rules.join(", ")
                ),
            });
        } else {
            allows.push(UsedAllow {
                rule: site.rules.join(", "),
                path: ctx.path.clone(),
                line: site.line,
                reason: site.reason,
                suppressed: site.suppressed,
            });
        }
    }
    findings.sort_by_key(|a| (a.line, a.rule.clone()));
    (findings, allows)
}

/// The line a line-scoped directive covers: its own line when code shares
/// it, otherwise the next line that carries a token.
fn line_target(ctx: &FileCtx, directive_line: u32) -> u32 {
    if ctx.token_lines.contains(&directive_line) {
        directive_line
    } else {
        ctx.token_lines.range(directive_line + 1..).next().copied().unwrap_or(directive_line)
    }
}

/// The body line range of the fn an fn-scoped directive covers: the
/// enclosing fn when the directive sits inside one, otherwise the next fn
/// header within reach.
pub(crate) fn fn_target(ctx: &FileCtx, directive_line: u32) -> Option<(u32, u32)> {
    if let Some(f) = ctx
        .fns
        .iter()
        .filter(|f| (f.header_line..=f.end_line).contains(&directive_line))
        .min_by_key(|f| f.end_line - f.header_line)
    {
        return Some((f.header_line, f.end_line));
    }
    ctx.fns
        .iter()
        .filter(|f| f.header_line >= directive_line && f.header_line - directive_line <= FN_DIRECTIVE_REACH)
        .min_by_key(|f| f.header_line)
        .map(|f| (f.header_line, f.end_line))
}

/// Pushes a finding (shared shorthand for the rule modules).
pub(crate) fn push(out: &mut Vec<Finding>, rule: &str, ctx: &FileCtx, line: u32, message: String) {
    out.push(Finding { rule: rule.to_owned(), path: ctx.path.clone(), line, message });
}
