//! Accounting exhaustiveness: matches over the lifecycle enums must name
//! every variant (no `_`, no catch-all binding), and the lifecycle counters
//! may only be advanced at the allowlisted call sites.
//!
//! The serving layer's invariant `served + failed + shed + cancelled ==
//! accepted` only holds while each counter has exactly one owner; this rule
//! makes both the matches and the increments structurally auditable.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::rules::{push, EnumTable};
use crate::source::FileCtx;

pub fn check(ctx: &FileCtx, cfg: &Config, enums: &EnumTable, out: &mut Vec<Finding>) {
    if cfg.is_accounting_file(&ctx.path) {
        check_matches(ctx, cfg, enums, out);
    }
    check_counters(ctx, cfg, out);
}

/// One arm's pattern token range (indices into `ctx.toks`).
struct Arm {
    start: usize,
    end: usize,
}

fn check_matches(ctx: &FileCtx, cfg: &Config, enums: &EnumTable, out: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("match") || ctx.is_test_line(t.line) {
            continue;
        }
        // Scrutinee runs to the arm block's `{` at bracket depth zero.
        let mut depth = 0i32;
        let mut open = None;
        let mut j = i + 1;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let Some(&close) = ctx.brace_match.get(&open) else { continue };
        let arms = collect_arms(ctx, open, close);

        // Which watched enums do the arm patterns name?
        let mut named: Vec<(String, Vec<String>)> = Vec::new(); // (enum, variants named)
        let mut has_wildcard = false;
        let mut has_binding = false;
        for arm in &arms {
            let pat = &toks[arm.start..arm.end];
            // Cut the pattern at a top-level `if` guard.
            let mut guard_cut = pat.len();
            let mut d = 0i32;
            for (k, t) in pat.iter().enumerate() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => d -= 1,
                        _ => {}
                    }
                } else if d == 0 && t.is_ident("if") {
                    guard_cut = k;
                    break;
                }
            }
            let pat = &pat[..guard_cut];
            // `_` lexes as an identifier.
            if pat.len() == 1 && pat[0].is_ident("_") {
                has_wildcard = true;
            }
            let idents: Vec<&crate::lexer::Tok> = pat.iter().filter(|t| t.kind == TokKind::Ident).collect();
            if pat.len() == 1 && idents.len() == 1 && idents[0].text.chars().next().is_some_and(char::is_lowercase) {
                has_binding = true;
            }
            if pat.len() == 2 && pat[0].is_ident("mut") && idents.len() == 2 {
                has_binding = true;
            }
            // `Enum::Variant` and `Self::Variant` references.
            for k in 0..pat.len().saturating_sub(2) {
                if pat[k].kind == TokKind::Ident && pat[k + 1].is_punct("::") && pat[k + 2].kind == TokKind::Ident {
                    let head = &pat[k].text;
                    let resolved = if cfg.watched_enums.iter().any(|e| e == head) {
                        Some(head.clone())
                    } else if head == "Self" {
                        ctx.enclosing_impl(arm.start)
                            .map(|s| s.type_name.clone())
                            .filter(|t| cfg.watched_enums.iter().any(|e| e == t))
                    } else {
                        None
                    };
                    if let Some(enum_name) = resolved {
                        let variant = pat[k + 2].text.clone();
                        match named.iter_mut().find(|(e, _)| *e == enum_name) {
                            Some((_, vs)) => {
                                if !vs.contains(&variant) {
                                    vs.push(variant);
                                }
                            }
                            None => named.push((enum_name, vec![variant])),
                        }
                    }
                }
            }
        }

        if named.is_empty() {
            continue; // not a watched match
        }
        let line = t.line;
        if has_wildcard {
            push(
                out,
                "accounting",
                ctx,
                line,
                format!(
                    "match naming watched enum {} has a `_` arm; name every variant so additions fail the lint",
                    named.iter().map(|(e, _)| e.as_str()).collect::<Vec<_>>().join(", ")
                ),
            );
        }
        if has_binding {
            push(
                out,
                "accounting",
                ctx,
                line,
                format!(
                    "match naming watched enum {} has a catch-all binding arm; name every variant explicitly",
                    named.iter().map(|(e, _)| e.as_str()).collect::<Vec<_>>().join(", ")
                ),
            );
        }
        for (enum_name, seen) in &named {
            let Some(all) = enums.get(enum_name) else { continue };
            let missing: Vec<&String> = all.iter().filter(|v| !seen.contains(v)).collect();
            if !missing.is_empty() && !has_wildcard && !has_binding {
                push(
                    out,
                    "accounting",
                    ctx,
                    line,
                    format!(
                        "match over {enum_name} is missing variant(s): {}",
                        missing.iter().map(|v| v.as_str()).collect::<Vec<_>>().join(", ")
                    ),
                );
            }
        }
    }
}

/// Splits a match body into arm pattern spans (`pattern => body,`).
fn collect_arms(ctx: &FileCtx, open: usize, close: usize) -> Vec<Arm> {
    let toks = &ctx.toks;
    let mut arms = Vec::new();
    let mut k = open + 1;
    while k < close {
        let start = k;
        let mut depth = 0i32;
        // Pattern runs to `=>` at relative depth zero.
        while k < close {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        if k >= close {
            break;
        }
        arms.push(Arm { start, end: k });
        // Body: a block (skip via brace table) or an expression to the comma.
        k += 1;
        if k < close && toks[k].is_punct("{") {
            k = ctx.brace_match.get(&k).copied().unwrap_or(close) + 1;
            if k < close && toks[k].is_punct(",") {
                k += 1;
            }
        } else {
            let mut d = 0i32;
            while k < close {
                let t = &toks[k];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => d -= 1,
                        "," if d == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
        }
    }
    arms
}

/// Lifecycle counters may only be advanced in the allowlisted files.
fn check_counters(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.is_test_line(t.line) {
            continue;
        }
        // `served.fetch_add(` / `served.store(` outside the metrics owner.
        if cfg.counters.iter().any(|c| c == &t.text)
            && toks.get(i + 1).is_some_and(|p| p.is_punct("."))
            && toks.get(i + 2).is_some_and(|m| m.is_ident("fetch_add") || m.is_ident("store"))
            && !cfg.is_counter_file(&ctx.path)
        {
            push(
                out,
                "accounting",
                ctx,
                t.line,
                format!("lifecycle counter `{}` may only be advanced in {}", t.text, cfg.counter_files.join(", ")),
            );
        }
        // The queue's `pushed` acceptance counter.
        if t.is_ident("pushed")
            && toks.get(i + 1).is_some_and(|p| p.is_punct("+=") || p.is_punct("."))
            && (toks[i + 1].is_punct("+=") || toks.get(i + 2).is_some_and(|m| m.is_ident("fetch_add")))
            && !cfg.is_accepted_counter_file(&ctx.path)
        {
            push(
                out,
                "accounting",
                ctx,
                t.line,
                format!(
                    "acceptance counter `pushed` may only be advanced in {}",
                    cfg.accepted_counter_files.join(", ")
                ),
            );
        }
    }
}
