//! No-alloc hot paths: functions that promise in-place operation
//! (`*_into`, `*_inplace`, or `// lint: no_alloc`) may not allocate or grow
//! containers.
//!
//! The progressive-sampling inner loop calls these functions per sample per
//! column; a stray `collect()` there turns a cache-friendly kernel into an
//! allocator benchmark.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::report::Finding;
use crate::rules::{fn_target, push};
use crate::source::{DirectiveKind, FileCtx};

/// Container types whose constructors allocate.
const ALLOC_TYPES: &[&str] =
    &["Vec", "String", "Box", "Rc", "Arc", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet"];

/// Associated functions on those types that allocate.
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from", "from_iter", "from_elem"];

/// Method calls that allocate or grow a container.
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "collect",
    "push",
    "push_back",
    "push_front",
    "extend",
    "extend_from_slice",
    "extend_from_within",
    "insert",
    "append",
    "resize",
    "resize_with",
    "reserve",
    "reserve_exact",
    "split_off",
    "repeat",
    "concat",
    "join",
    "into_boxed_slice",
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Whether the fn is bound by the no-alloc contract.
fn is_hot(name: &str) -> bool {
    name.ends_with("_into") || name.ends_with("_inplace")
}

pub fn check(ctx: &FileCtx, _cfg: &Config, out: &mut Vec<Finding>) {
    // `lint: no_alloc` directives opt additional fns in, by header line.
    let mut marked: BTreeSet<u32> = BTreeSet::new();
    for d in &ctx.directives {
        if matches!(d.kind, DirectiveKind::NoAlloc) {
            if let Some((header, _)) = fn_target(ctx, d.line) {
                marked.insert(header);
            }
        }
    }

    for f in &ctx.fns {
        if f.is_test || !(is_hot(&f.name) || marked.contains(&f.header_line)) {
            continue;
        }
        let toks = &ctx.toks;
        let mut i = f.body_open + 1;
        while i < f.body_close {
            let t = &toks[i];
            if ctx.is_test_line(t.line) {
                i += 1;
                continue;
            }
            // `.to_vec(` etc.
            if t.is_punct(".")
                && toks.get(i + 1).is_some_and(|m| ALLOC_METHODS.iter().any(|a| m.is_ident(a)))
                && toks.get(i + 2).is_some_and(|p| p.is_punct("("))
            {
                let m = &toks[i + 1].text;
                push(
                    out,
                    "no_alloc",
                    ctx,
                    toks[i + 1].line,
                    format!("`.{m}()` allocates or grows a container inside no-alloc fn `{}`", f.name),
                );
                i += 3;
                continue;
            }
            // `Vec::new(`, `Vec::<T>::with_capacity(`, `vec!`/`format!`
            if t.kind == crate::lexer::TokKind::Ident {
                if ALLOC_MACROS.contains(&t.text.as_str()) && toks.get(i + 1).is_some_and(|b| b.is_punct("!")) {
                    push(
                        out,
                        "no_alloc",
                        ctx,
                        t.line,
                        format!("`{}!` allocates inside no-alloc fn `{}`", t.text, f.name),
                    );
                    i += 2;
                    continue;
                }
                if ALLOC_TYPES.contains(&t.text.as_str()) && toks.get(i + 1).is_some_and(|p| p.is_punct("::")) {
                    // Optional turbofish between the type and the ctor.
                    let mut j = i + 2;
                    if toks.get(j).is_some_and(|p| p.is_punct("<")) {
                        let mut angle = 1i32;
                        j += 1;
                        while j < f.body_close && angle > 0 {
                            match toks[j].text.as_str() {
                                "<" => angle += 1,
                                "<<" => angle += 2,
                                ">" => angle -= 1,
                                ">>" => angle -= 2,
                                _ => {}
                            }
                            j += 1;
                        }
                        if !toks.get(j).is_some_and(|p| p.is_punct("::")) {
                            i += 1;
                            continue;
                        }
                        j += 1;
                    }
                    if toks.get(j).is_some_and(|m| ALLOC_CTORS.iter().any(|c| m.is_ident(c)))
                        && toks.get(j + 1).is_some_and(|p| p.is_punct("("))
                    {
                        push(
                            out,
                            "no_alloc",
                            ctx,
                            t.line,
                            format!("`{}::{}` allocates inside no-alloc fn `{}`", t.text, toks[j].text, f.name),
                        );
                        i = j + 2;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
}
