//! Lock discipline for the bounded queue: while a `MutexGuard` is live, no
//! wall-clock reads and no calls into code outside the queue module.
//!
//! The queue's critical sections must stay O(1): a foreign call (estimator,
//! cache, logging) or an `Instant::now()` syscall under the lock serializes
//! every producer and worker behind it.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::rules::push;
use crate::source::FileCtx;

/// Methods that are part of normal guard/container manipulation and stay
/// O(1)-ish on the locked state itself.
const METHOD_OK: &[&str] = &[
    "lock",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "expect",
    "into_inner",
    "map",
    "map_err",
    "and_then",
    "ok",
    "err",
    "wait",
    "wait_timeout",
    "wait_while",
    "wait_timeout_while",
    "notify_one",
    "notify_all",
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_front",
    "pop_back",
    "len",
    "is_empty",
    "clear",
    "drain",
    "iter",
    "iter_mut",
    "sum",
    "count",
    "take",
    "replace",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "clone",
    "min",
    "max",
    "clamp",
    "saturating_sub",
    "saturating_add",
    "checked_sub",
    "checked_add",
    "load",
    "store",
    "fetch_add",
    "is_some",
    "is_none",
    "is_some_and",
    "as_ref",
    "as_mut",
    "as_deref",
    "elapsed",
];

/// Keywords that look like a call prefix (`if (...)`, `while (...)`).
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "break", "continue", "else", "let", "in", "move", "as", "fn",
    "unsafe", "await",
];

/// A live guard binding.
struct Guard {
    name: Option<String>,
    depth: i32,
}

pub fn check(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.is_lock_file(&ctx.path) {
        return;
    }
    let local_fns: BTreeSet<&str> = ctx.fn_names.iter().map(String::as_str).collect();
    let toks = &ctx.toks;

    for f in &ctx.fns {
        if f.is_test {
            continue;
        }
        let mut guards: Vec<Guard> = Vec::new();
        let mut dropped: BTreeSet<String> = BTreeSet::new();
        let mut depth = 0i32;
        // `let` statement currently being scanned: candidate binding name.
        let mut pending_let: Option<String> = None;
        let mut i = f.body_open + 1;
        while i < f.body_close {
            let t = &toks[i];
            if ctx.is_test_line(t.line) {
                i += 1;
                continue;
            }
            match t.kind {
                TokKind::Punct => match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        guards.retain(|g| g.depth <= depth);
                    }
                    ";" => {
                        pending_let = None;
                        // Temporary (unbound) guards die with the statement.
                        guards.retain(|g| g.name.is_some() || g.depth < depth);
                    }
                    "." => {
                        // `.lock(` starts a guard; other method calls are
                        // checked while one is live.
                        if let Some(m) = toks.get(i + 1).filter(|m| m.kind == TokKind::Ident) {
                            if toks.get(i + 2).is_some_and(|p| p.is_punct("(")) {
                                if m.is_ident("lock") {
                                    guards.push(Guard { name: pending_let.clone(), depth });
                                    if let Some(name) = &pending_let {
                                        dropped.remove(name);
                                    }
                                } else if !guards.is_empty()
                                    && !METHOD_OK.contains(&m.text.as_str())
                                    && !local_fns.contains(m.text.as_str())
                                {
                                    push(
                                        out,
                                        "lock",
                                        ctx,
                                        m.line,
                                        format!(
                                            "method `.{}()` called while holding the queue lock in `{}`; move it outside the critical section",
                                            m.text, f.name
                                        ),
                                    );
                                }
                                i += 2;
                                continue;
                            }
                        }
                    }
                    _ => {}
                },
                TokKind::Ident => match t.text.as_str() {
                    "let" => {
                        // `let [mut] name = ...`
                        let mut j = i + 1;
                        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                            j += 1;
                        }
                        pending_let = toks.get(j).filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone());
                    }
                    "drop"
                        if toks.get(i + 1).is_some_and(|p| p.is_punct("("))
                            && toks.get(i + 3).is_some_and(|p| p.is_punct(")")) =>
                    {
                        if let Some(name) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                            if guards.iter().any(|g| g.name.as_deref() == Some(&name.text)) {
                                guards.retain(|g| g.name.as_deref() != Some(&name.text));
                                dropped.insert(name.text.clone());
                            }
                        }
                    }
                    name if dropped.contains(name) && toks.get(i + 1).is_some_and(|p| p.is_punct("=")) => {
                        // Reassignment revives a previously dropped guard.
                        guards.push(Guard { name: Some(name.to_owned()), depth });
                        dropped.remove(name);
                    }
                    "Instant"
                        if !guards.is_empty()
                            && toks.get(i + 1).is_some_and(|p| p.is_punct("::"))
                            && toks.get(i + 2).is_some_and(|m| m.is_ident("now")) =>
                    {
                        push(
                            out,
                            "lock",
                            ctx,
                            t.line,
                            format!(
                                "`Instant::now()` inside the critical section of `{}`; read the clock before taking the lock",
                                f.name
                            ),
                        );
                        i += 3;
                        continue;
                    }
                    name if !guards.is_empty() => {
                        // Free or path calls to foreign lowercase fns.
                        let lowercase = name.chars().next().is_some_and(char::is_lowercase);
                        let prev_dot = i > 0 && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::"));
                        if lowercase && !prev_dot {
                            let callee = if toks.get(i + 1).is_some_and(|p| p.is_punct("(")) {
                                Some(name)
                            } else if toks.get(i + 1).is_some_and(|p| p.is_punct("::"))
                                && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
                                && toks.get(i + 3).is_some_and(|p| p.is_punct("("))
                            {
                                Some(toks[i + 2].text.as_str())
                            } else {
                                None
                            };
                            if let Some(callee) = callee {
                                let callee_lower = callee.chars().next().is_some_and(char::is_lowercase);
                                if callee_lower
                                    && !CALL_KEYWORDS.contains(&name)
                                    && !CALL_KEYWORDS.contains(&callee)
                                    && !METHOD_OK.contains(&callee)
                                    && callee != "drop"
                                    && !local_fns.contains(callee)
                                {
                                    push(
                                        out,
                                        "lock",
                                        ctx,
                                        t.line,
                                        format!(
                                            "call to `{callee}()` while holding the queue lock in `{}`; move it outside the critical section",
                                            f.name
                                        ),
                                    );
                                }
                            }
                        }
                    }
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
    }
}
