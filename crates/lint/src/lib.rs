//! naru-lint: the workspace invariant checker.
//!
//! Four rule families guard the properties the estimator's serving story
//! depends on but `rustc`/clippy cannot see:
//!
//! * **no_alloc** — fns named `*_into`/`*_inplace` (or marked
//!   `lint: no_alloc`) may not allocate or grow containers;
//! * **panic** / **index** — non-test code in `crates/serve` and
//!   `crates/core` may not `unwrap`/`expect`/`panic!` or index slices
//!   without `get`;
//! * **accounting** — matches over `ServeError`/`Provenance` in the
//!   designated metrics/cache files must name every variant, and the
//!   lifecycle counters may only be advanced at their allowlisted sites;
//! * **lock** — the bounded queue may not call foreign code or read the
//!   wall clock while holding its mutex.
//!
//! Escape hatch (all rules): `lint: allow(rule, ...) - <reason>` on (or
//! directly above) the offending line, or `lint: allow_fn(rule, ...) -
//! <reason>` to waive a whole function. Reasons are mandatory, at least 8
//! characters, and surface in the JSON report so waivers stay auditable.
//! Malformed or unused directives are findings themselves.
//!
//! The crate has no dependencies — the lexer is hand-rolled — so the lint
//! binary builds in the same offline sandbox as the rest of the workspace.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use config::Config;
pub use report::{Finding, Report, UsedAllow};

use rules::EnumTable;
use source::FileCtx;

/// Lints in-memory sources: `(workspace-relative path, contents)` pairs.
/// This is the whole engine; the disk walker just feeds it.
pub fn run_sources(files: &[(String, String)], cfg: &Config) -> Report {
    let ctxs: Vec<FileCtx> = files.iter().map(|(path, src)| FileCtx::parse(path, src)).collect();

    // Pre-pass: watched-enum variant tables come from wherever the enum is
    // actually defined (ServeError in serve, Provenance in query).
    let mut enums = EnumTable::new();
    for ctx in &ctxs {
        for def in &ctx.enums {
            if cfg.watched_enums.iter().any(|e| e == &def.name) {
                enums.entry(def.name.clone()).or_insert_with(|| def.variants.clone());
            }
        }
    }

    let mut report = Report { files_scanned: ctxs.len(), ..Report::default() };
    for ctx in &ctxs {
        let (findings, allows) = rules::analyze(ctx, cfg, &enums);
        report.findings.extend(findings);
        report.allows.extend(allows);
    }
    report.findings.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    report.allows.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report
}

/// Walks the workspace under `root` and lints every first-party source
/// file: `src/` at the root (the facade) plus `crates/*/src/`. Vendored
/// shims, tests/, benches/, and examples/ are out of scope — the rules
/// encode invariants of the library and serving code.
pub fn run_root(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut files: Vec<(String, String)> = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&crates_dir)?.filter_map(|e| e.ok()).map(|e| e.path()).filter(|p| p.is_dir()).collect();
        entries.sort();
        for krate in entries {
            roots.push(krate.join("src"));
        }
    }
    for dir in roots {
        if dir.is_dir() {
            collect_rs(&dir, root, &mut files)?;
        }
    }
    files.sort();
    Ok(run_sources(&files, cfg))
}

/// Recursively collects `.rs` files under `dir`, storing root-relative
/// paths with `/` separators.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_table_crosses_files() {
        let cfg = Config {
            accounting_files: vec!["b.rs".to_owned()],
            watched_enums: vec!["E".to_owned()],
            panic_scope: Vec::new(),
            index_scope: Vec::new(),
            ..Config::default()
        };
        let files = vec![
            ("a.rs".to_owned(), "pub enum E { X, Y, Z }".to_owned()),
            ("b.rs".to_owned(), "fn f(e: &E) -> u8 { match e { E::X => 1, E::Y => 2 } }".to_owned()),
        ];
        let report = run_sources(&files, &cfg);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("missing variant(s): Z"));
    }
}
