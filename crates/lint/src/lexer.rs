//! A minimal hand-rolled Rust lexer — just enough token structure for the
//! lint rules, in the same vendored-shim spirit as the rest of the
//! workspace (no external dependencies).
//!
//! The lexer produces a flat token stream plus the line comments (the rules
//! read `lint:` directives out of those). It understands the lexical
//! constructs that would otherwise break a naive scanner: nested block
//! comments, raw/byte strings, char literals vs. lifetimes, and multi-char
//! operators. It does **not** build an AST — the rules work on token
//! patterns plus the lightweight structure recovered in [`crate::source`].

/// Token classification. `text` is only meaningful for `Ident`, `Number`
/// and `Punct`; string/char literals keep their span but drop their content
/// (no rule reads it, and literals must never trigger findings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished here).
    Ident,
    /// A lifetime such as `'a` (without the quote in `text`).
    Lifetime,
    /// Numeric literal.
    Number,
    /// String literal (plain, raw, byte, or raw byte).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Operator or delimiter; multi-char operators are one token.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// A `//`-style comment (including `///` and `//!` doc comments), with its
/// full text starting at the slashes.
#[derive(Debug, Clone)]
pub struct LineComment {
    pub line: u32,
    pub text: String,
}

/// Lexer output: the token stream plus every line comment.
#[derive(Debug)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<LineComment>,
}

/// Multi-character operators, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] = &[
    "..=", "::", "->", "=>", "..", "&&", "||", "<<", ">>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "^=",
    "|=", "&=",
];

/// Lexes `src` into tokens and line comments. Malformed input never panics;
/// the lexer simply resynchronizes (lint runs on work-in-progress trees).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if chars[i + 1] == '/' {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                comments.push(LineComment { line, text: chars[start..i].iter().collect() });
                continue;
            }
            if chars[i + 1] == '*' {
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
        }
        // Raw strings (r"", r#""#), byte strings (b"", br#""#), byte chars (b'').
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            let mut is_raw = c == 'r';
            if c == 'b' && j < n && chars[j] == 'r' {
                is_raw = true;
                j += 1;
            }
            if is_raw {
                let mut hashes = 0usize;
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && chars[j] == '"' {
                    let start_line = line;
                    j += 1;
                    while j < n {
                        if chars[j] == '\n' {
                            line += 1;
                            j += 1;
                            continue;
                        }
                        if chars[j] == '"' {
                            let mut k = j + 1;
                            let mut h = 0usize;
                            while k < n && h < hashes && chars[k] == '#' {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                j = k;
                                break;
                            }
                        }
                        j += 1;
                    }
                    toks.push(Tok { kind: TokKind::Str, text: String::new(), line: start_line });
                    i = j;
                    continue;
                }
                // `r`/`br` not followed by a raw string: plain identifier.
            } else if j < n && chars[j] == '"' {
                let (end, end_line) = scan_string(&chars, j, line);
                toks.push(Tok { kind: TokKind::Str, text: String::new(), line });
                line = end_line;
                i = end;
                continue;
            } else if j < n && chars[j] == '\'' {
                let (end, end_line) = scan_char(&chars, j, line);
                toks.push(Tok { kind: TokKind::Char, text: String::new(), line });
                line = end_line;
                i = end;
                continue;
            }
        }
        if c == '"' {
            let (end, end_line) = scan_string(&chars, i, line);
            toks.push(Tok { kind: TokKind::Str, text: String::new(), line });
            line = end_line;
            i = end;
            continue;
        }
        if c == '\'' {
            // Lifetime if followed by an identifier char that is not itself
            // a closing quote (`'a` vs `'a'`).
            let is_lifetime = i + 1 < n
                && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_')
                && !(i + 2 < n && chars[i + 2] == '\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                toks.push(Tok { kind: TokKind::Lifetime, text: chars[i + 1..j].iter().collect(), line });
                i = j;
                continue;
            }
            let (end, end_line) = scan_char(&chars, i, line);
            toks.push(Tok { kind: TokKind::Char, text: String::new(), line });
            line = end_line;
            i = end;
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let mut j = i;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, text: chars[i..j].iter().collect(), line });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            // Fractional part, but never consume a `..` range operator.
            if j < n && chars[j] == '.' && j + 1 < n && chars[j + 1].is_ascii_digit() {
                j += 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
            }
            toks.push(Tok { kind: TokKind::Number, text: chars[i..j].iter().collect(), line });
            i = j;
            continue;
        }
        // Punctuation: maximal munch over the multi-char operator table.
        let mut matched = false;
        for op in MULTI_PUNCT {
            let len = op.chars().count();
            if i + len <= n && chars[i..i + len].iter().collect::<String>() == **op {
                toks.push(Tok { kind: TokKind::Punct, text: (*op).to_owned(), line });
                i += len;
                matched = true;
                break;
            }
        }
        if !matched {
            toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
            i += 1;
        }
    }

    Lexed { toks, comments }
}

/// Scans a plain string literal starting at the opening quote. Returns the
/// index past the closing quote and the updated line counter.
fn scan_string(chars: &[char], start: usize, mut line: u32) -> (usize, u32) {
    let mut j = start + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => return (j + 1, line),
            '\n' => {
                line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, line)
}

/// Scans a char (or byte-char) literal starting at the opening quote.
fn scan_char(chars: &[char], start: usize, mut line: u32) -> (usize, u32) {
    let mut j = start + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\'' => return (j + 1, line),
            '\n' => {
                // Malformed literal; resynchronize at the newline.
                line += 1;
                return (j + 1, line);
            }
            _ => j += 1,
        }
    }
    (j, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_and_multichar_puncts() {
        let toks = kinds("let x: Vec<u8> = a.b_c(1.5, 0..n)?;");
        assert!(toks.contains(&(TokKind::Ident, "b_c".into())));
        assert!(toks.contains(&(TokKind::Number, "1.5".into())));
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
        let toks = kinds("a::b => c -> d += e");
        let puncts: Vec<String> = toks.iter().filter(|(k, _)| *k == TokKind::Punct).map(|(_, t)| t.clone()).collect();
        assert_eq!(puncts, ["::", "=>", "->", "+="]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let lexed = lex("x // trailing note\n/* block\n still block */ y");
        assert_eq!(lexed.toks.len(), 2);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].text, "// trailing note");
        assert_eq!(lexed.toks[1].line, 3);
    }

    #[test]
    fn strings_chars_and_lifetimes() {
        let toks = kinds(r##"'a' b'\n' "s\"t" r#"raw "inner""# 'static x"##);
        let counts = |k: TokKind| toks.iter().filter(|(tk, _)| *tk == k).count();
        assert_eq!(counts(TokKind::Char), 2);
        assert_eq!(counts(TokKind::Str), 2);
        assert_eq!(counts(TokKind::Lifetime), 1);
        assert_eq!(counts(TokKind::Ident), 1);
    }

    #[test]
    fn nested_block_comments_and_line_tracking() {
        let lexed = lex("a\n/* outer /* inner */ still */\nb");
        assert_eq!(lexed.toks[0].line, 1);
        assert_eq!(lexed.toks[1].line, 3);
    }

    #[test]
    fn unwrap_in_a_string_is_not_a_token() {
        let lexed = lex("let msg = \"call .unwrap() here\";");
        assert!(!lexed.toks.iter().any(|t| t.is_ident("unwrap")));
    }
}
