//! CLI for naru-lint.
//!
//! ```text
//! naru-lint [--check] [--root DIR] [--json PATH] [--list-rules]
//! ```
//!
//! `--check` exits non-zero when findings remain (CI gate). `--json PATH`
//! writes the machine-readable report. Without `--root`, the workspace root
//! is discovered by walking up from the current directory to the first
//! `Cargo.toml` with a `[workspace]` table.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use naru_lint::{rules, Config, Report};

fn main() -> ExitCode {
    let mut check = false;
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;

    let mut argv = env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => match argv.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--json" => match argv.next() {
                Some(path) => json = Some(PathBuf::from(path)),
                None => return usage("--json needs a file path"),
            },
            "--list-rules" => {
                for rule in rules::RULE_IDS {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("naru-lint: no workspace root found (pass --root)");
            return ExitCode::FAILURE;
        }
    };

    let report = match naru_lint::run_root(&root, &Config::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("naru-lint: failed to read sources under {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = json {
        if let Err(e) = fs::write(&path, report.to_json()) {
            eprintln!("naru-lint: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    print_report(&report);
    if check && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_report(report: &Report) {
    for finding in &report.findings {
        println!("{finding}");
    }
    let waived: u32 = report.allows.iter().map(|a| a.suppressed).sum();
    println!(
        "naru-lint: {} file(s) scanned, {} finding(s), {} waived by {} allow directive(s)",
        report.files_scanned,
        report.findings.len(),
        waived,
        report.allows.len()
    );
}

/// Walks up from the current directory to the first workspace `Cargo.toml`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("naru-lint: {error}");
    }
    eprintln!("usage: naru-lint [--check] [--root DIR] [--json PATH] [--list-rules]");
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
