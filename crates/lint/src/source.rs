//! Lightweight structure recovered from the token stream: test regions,
//! function and impl spans, enum definitions, and `lint:` directives.
//!
//! This is deliberately not a parser. The rules only need to know (a) which
//! lines are test code, (b) which function a token belongs to and what that
//! function is called, (c) which impl block a `match` lives in (so `Self::`
//! patterns resolve), (d) the variant lists of watched enums, and (e) where
//! the escape-hatch directives sit. All of that falls out of one linear
//! scan plus a precomputed brace-matching table.

use std::collections::{BTreeSet, HashMap};

use crate::lexer::{lex, LineComment, Tok, TokKind};

/// A function item: its name and the token span of its body (indices of the
/// opening and closing brace).
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Line of the `fn` keyword.
    pub header_line: u32,
    /// Token index of the body `{`.
    pub body_open: usize,
    /// Token index of the body `}`.
    pub body_close: usize,
    /// Last line of the body.
    pub end_line: u32,
    /// Whether the fn itself carried `#[test]`/`#[cfg(test)]`.
    pub is_test: bool,
}

/// An `impl` block: the self type's last path segment and its body span.
#[derive(Debug, Clone)]
pub struct ImplSpan {
    pub type_name: String,
    pub body_open: usize,
    pub body_close: usize,
}

/// An `enum` definition with its variant names, used by the accounting
/// rule's exhaustiveness check.
#[derive(Debug, Clone)]
pub struct EnumDef {
    pub name: String,
    pub variants: Vec<String>,
}

/// A parsed `lint:` directive (always from a plain `//` comment — doc
/// comments are inert so rule documentation can quote the syntax).
#[derive(Debug, Clone)]
pub struct Directive {
    pub line: u32,
    pub kind: DirectiveKind,
}

#[derive(Debug, Clone)]
pub enum DirectiveKind {
    /// `lint: no_alloc` — opt the enclosing (or next) fn into the
    /// no-alloc-hot-path rule.
    NoAlloc,
    /// `lint: allow(rule, ...) - reason` or `lint: allow_fn(rule, ...) - reason`.
    Allow { rules: Vec<String>, fn_scope: bool, reason: String },
    /// A directive that failed to parse; the message says why. Always a
    /// finding — the escape hatch must stay auditable.
    Malformed { message: String },
}

/// Everything the rules need to know about one file.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub toks: Vec<Tok>,
    pub comments: Vec<LineComment>,
    /// For each `{` token index, the index of its matching `}`.
    pub brace_match: HashMap<usize, usize>,
    /// Inclusive line ranges of `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(u32, u32)>,
    pub fns: Vec<FnSpan>,
    /// Every `fn` name declared in the file, including bodiless trait
    /// methods (which have no span).
    pub fn_names: BTreeSet<String>,
    pub impls: Vec<ImplSpan>,
    pub enums: Vec<EnumDef>,
    pub directives: Vec<Directive>,
    /// Every line that carries at least one token (used to decide whether a
    /// directive comment stands alone on its line).
    pub token_lines: BTreeSet<u32>,
}

/// Identifiers that may legally precede an item keyword like `fn`/`impl`.
fn item_prefix(tok: Option<&Tok>) -> bool {
    match tok {
        None => true,
        Some(t) => match t.kind {
            TokKind::Punct => matches!(t.text.as_str(), "{" | "}" | ";" | "]" | ")"),
            TokKind::Ident => {
                matches!(t.text.as_str(), "pub" | "const" | "async" | "unsafe" | "extern" | "default" | "crate")
            }
            _ => false,
        },
    }
}

impl FileCtx {
    /// Lexes and scans `src`. `path` should be workspace-relative.
    pub fn parse(path: &str, src: &str) -> FileCtx {
        let lexed = lex(src);
        let toks = lexed.toks;
        let brace_match = match_braces(&toks);
        let token_lines: BTreeSet<u32> = toks.iter().map(|t| t.line).collect();
        let mut ctx = FileCtx {
            path: path.replace('\\', "/"),
            toks,
            comments: lexed.comments,
            brace_match,
            test_ranges: Vec::new(),
            fns: Vec::new(),
            fn_names: BTreeSet::new(),
            impls: Vec::new(),
            enums: Vec::new(),
            directives: Vec::new(),
            token_lines,
        };
        ctx.scan_items();
        ctx.parse_directives();
        ctx
    }

    /// Whether `line` belongs to `#[cfg(test)]`/`#[test]` code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// The innermost fn whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns.iter().filter(|f| f.body_open <= i && i <= f.body_close).min_by_key(|f| f.body_close - f.body_open)
    }

    /// The innermost impl whose body contains token index `i`.
    pub fn enclosing_impl(&self, i: usize) -> Option<&ImplSpan> {
        self.impls.iter().filter(|s| s.body_open <= i && i <= s.body_close).min_by_key(|s| s.body_close - s.body_open)
    }

    /// One linear scan recovering fns, impls, enums, and test regions.
    fn scan_items(&mut self) {
        let toks = &self.toks;
        let n = toks.len();
        let mut i = 0;
        let mut pending_test = false;
        let mut prev_code: Option<usize> = None;
        while i < n {
            let t = &toks[i];
            // Attributes: scan to the matching `]`, remember `test` markers.
            if t.is_punct("#") && i + 1 < n && toks[i + 1].is_punct("[") {
                let mut depth = 0usize;
                let mut j = i + 1;
                let mut saw_test = false;
                while j < n {
                    if toks[j].is_punct("[") {
                        depth += 1;
                    } else if toks[j].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if toks[j].is_ident("test") {
                        saw_test = true;
                    }
                    j += 1;
                }
                pending_test |= saw_test;
                i = j + 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "fn" if item_prefix(prev_code.map(|p| &toks[p])) => {
                        if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                            self.fn_names.insert(name.text.clone());
                        }
                        if let Some(span) = self.scan_fn(i, pending_test) {
                            if pending_test {
                                self.test_ranges.push((span.header_line, span.end_line));
                            }
                            self.fns.push(span);
                        }
                        pending_test = false;
                    }
                    "impl" if item_prefix(prev_code.map(|p| &toks[p])) => {
                        if let Some((span, end_line)) = self.scan_impl(i) {
                            if pending_test {
                                self.test_ranges.push((t.line, end_line));
                            }
                            self.impls.push(span);
                        }
                        pending_test = false;
                    }
                    "enum" if item_prefix(prev_code.map(|p| &toks[p])) => {
                        if let Some((def, close)) = self.scan_enum(i) {
                            if pending_test {
                                self.test_ranges.push((t.line, toks[close].line));
                            }
                            self.enums.push(def);
                        }
                        pending_test = false;
                    }
                    "mod" | "struct" | "trait" | "union"
                        if pending_test && item_prefix(prev_code.map(|p| &toks[p])) =>
                    {
                        if let Some((_, close)) = self.item_body(i) {
                            // The whole test item is one range; nothing
                            // inside needs separate spans.
                            self.test_ranges.push((t.line, toks[close].line));
                        }
                        pending_test = false;
                    }
                    _ => {}
                }
            } else if t.is_punct(";") {
                // `#[cfg(test)] use ...;` and friends: the attr spends
                // itself on the statement.
                pending_test = false;
            }
            prev_code = Some(i);
            i += 1;
        }
    }

    /// From a `fn` keyword, recovers the name and body span (if any).
    fn scan_fn(&self, fn_idx: usize, is_test: bool) -> Option<FnSpan> {
        let toks = &self.toks;
        let name_tok = toks.get(fn_idx + 1)?;
        if name_tok.kind != TokKind::Ident {
            return None; // `fn(usize) -> bool` type position
        }
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut j = fn_idx + 2;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" if paren == 0 && bracket == 0 => {
                        let close = *self.brace_match.get(&j)?;
                        return Some(FnSpan {
                            name: name_tok.text.clone(),
                            header_line: toks[fn_idx].line,
                            body_open: j,
                            body_close: close,
                            end_line: toks[close].line,
                            is_test,
                        });
                    }
                    ";" if paren == 0 && bracket == 0 => return None, // bodiless trait method
                    _ => {}
                }
            }
            j += 1;
        }
        None
    }

    /// From an `impl` keyword, recovers the self type name and body span.
    fn scan_impl(&self, impl_idx: usize) -> Option<(ImplSpan, u32)> {
        let toks = &self.toks;
        let mut angle = 0i32;
        let mut segments: Vec<String> = Vec::new();
        let mut after_for: Option<usize> = None;
        let mut j = impl_idx + 1;
        while j < toks.len() {
            let t = &toks[j];
            match t.kind {
                TokKind::Punct => match t.text.as_str() {
                    "<" | "<=" => angle += 1,
                    "<<" => angle += 2,
                    ">" | ">=" => angle -= 1,
                    ">>" => angle -= 2,
                    "{" if angle <= 0 => {
                        let close = *self.brace_match.get(&j)?;
                        let chosen = match after_for {
                            Some(k) => segments.get(k..).unwrap_or(&[]),
                            None => &segments[..],
                        };
                        let type_name = chosen.last().cloned()?;
                        return Some((ImplSpan { type_name, body_open: j, body_close: close }, toks[close].line));
                    }
                    _ => {}
                },
                TokKind::Ident if angle == 0 => {
                    if t.text == "for" {
                        after_for = Some(segments.len());
                    } else if t.text != "where" && t.text != "dyn" && t.text != "mut" {
                        segments.push(t.text.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// From an `enum` keyword, recovers the name and variant list.
    fn scan_enum(&self, enum_idx: usize) -> Option<(EnumDef, usize)> {
        let toks = &self.toks;
        let name = toks.get(enum_idx + 1).filter(|t| t.kind == TokKind::Ident)?.text.clone();
        let (open, close) = self.item_body(enum_idx)?;
        let mut variants = Vec::new();
        let mut depth = 0i32;
        let mut expecting = true;
        let mut j = open + 1;
        while j < close {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    "," if depth == 0 => expecting = true,
                    "#" if depth == 0 && toks.get(j + 1).is_some_and(|t| t.is_punct("[")) => {
                        // Skip variant attributes such as `#[default]`.
                        let mut b = 0i32;
                        j += 1;
                        while j < close {
                            if toks[j].is_punct("[") {
                                b += 1;
                            } else if toks[j].is_punct("]") {
                                b -= 1;
                                if b == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                    }
                    _ => {}
                }
            } else if t.kind == TokKind::Ident && depth == 0 && expecting {
                variants.push(t.text.clone());
                expecting = false;
            }
            j += 1;
        }
        Some((EnumDef { name, variants }, close))
    }

    /// Finds the `{ ... }` body of the item starting at token `i`, skipping
    /// anything before the first top-level `{`.
    fn item_body(&self, i: usize) -> Option<(usize, usize)> {
        let toks = &self.toks;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" if paren == 0 && bracket == 0 => {
                        let close = *self.brace_match.get(&j)?;
                        return Some((j, close));
                    }
                    ";" if paren == 0 && bracket == 0 => return None,
                    _ => {}
                }
            }
            j += 1;
        }
        None
    }

    /// Parses `lint:` directives out of plain `//` comments. Doc comments
    /// (`///`, `//!`) are skipped so documentation can quote the syntax.
    fn parse_directives(&mut self) {
        for comment in &self.comments {
            let text = &comment.text;
            if text.starts_with("///") || text.starts_with("//!") {
                continue;
            }
            let body = text.trim_start_matches('/').trim_start();
            let Some(rest) = body.strip_prefix("lint:") else { continue };
            let rest = rest.trim();
            let kind = parse_directive_body(rest);
            self.directives.push(Directive { line: comment.line, kind });
        }
    }
}

/// Parses the text after `lint:` in a directive comment.
fn parse_directive_body(rest: &str) -> DirectiveKind {
    if rest == "no_alloc" {
        return DirectiveKind::NoAlloc;
    }
    let (fn_scope, after) = if let Some(a) = rest.strip_prefix("allow_fn") {
        (true, a)
    } else if let Some(a) = rest.strip_prefix("allow") {
        (false, a)
    } else {
        return DirectiveKind::Malformed {
            message: format!("unknown lint directive `{rest}` (expected `no_alloc`, `allow(...)`, or `allow_fn(...)`)"),
        };
    };
    let after = after.trim_start();
    let Some(after) = after.strip_prefix('(') else {
        return DirectiveKind::Malformed { message: "allow directive is missing its `(rule, ...)` list".to_owned() };
    };
    let Some(close) = after.find(')') else {
        return DirectiveKind::Malformed { message: "allow directive is missing the closing `)`".to_owned() };
    };
    let rules: Vec<String> = after[..close].split(',').map(|r| r.trim().to_owned()).filter(|r| !r.is_empty()).collect();
    if rules.is_empty() {
        return DirectiveKind::Malformed { message: "allow directive names no rules".to_owned() };
    }
    let tail = after[close + 1..].trim_start();
    let reason = tail
        .strip_prefix('\u{2014}') // em dash
        .or_else(|| tail.strip_prefix('\u{2013}')) // en dash
        .or_else(|| tail.strip_prefix('-'))
        .or_else(|| tail.strip_prefix(':'))
        .map(str::trim);
    match reason {
        Some(r) if r.chars().count() >= 8 => DirectiveKind::Allow { rules, fn_scope, reason: r.to_owned() },
        Some(_) => DirectiveKind::Malformed {
            message: "allow directive needs a real reason (at least 8 characters) after the dash".to_owned(),
        },
        None => {
            DirectiveKind::Malformed { message: "allow directive needs `- <reason>` after the rule list".to_owned() }
        }
    }
}

/// Builds the `{` → `}` matching table.
fn match_braces(toks: &[Tok]) -> HashMap<usize, usize> {
    let mut map = HashMap::new();
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            if let Some(open) = stack.pop() {
                map.insert(open, i);
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
pub enum Color { Red, Green { v: u8 }, Blue(u8) }

impl std::fmt::Display for Color {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "color")
    }
}

pub fn encode_into(out: &mut [u8]) {
    out[0] = 1;
}

#[cfg(test)]
mod tests {
    fn helper() { let _ = "x".to_owned(); }
}
"#;

    #[test]
    fn recovers_enums_impls_fns_and_test_regions() {
        let ctx = FileCtx::parse("demo.rs", SRC);
        assert_eq!(ctx.enums.len(), 1);
        assert_eq!(ctx.enums[0].name, "Color");
        assert_eq!(ctx.enums[0].variants, ["Red", "Green", "Blue"]);
        assert_eq!(ctx.impls.len(), 1);
        assert_eq!(ctx.impls[0].type_name, "Color");
        let names: Vec<&str> = ctx.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"fmt"));
        assert!(names.contains(&"encode_into"));
        // `helper` sits inside #[cfg(test)] mod tests: its lines are test lines.
        let helper_line = SRC.lines().position(|l| l.contains("fn helper")).unwrap() as u32 + 1;
        assert!(ctx.is_test_line(helper_line));
        let encode_line = SRC.lines().position(|l| l.contains("fn encode_into")).unwrap() as u32 + 1;
        assert!(!ctx.is_test_line(encode_line));
    }

    #[test]
    fn directives_parse_and_doc_comments_are_inert() {
        let src = "\
// lint: no_alloc\n\
// lint: allow(panic) - the mutex can only be poisoned by a prior panic\n\
// lint: allow(panic)\n\
/// lint: allow(panic) - quoted in documentation, must not parse\n\
fn f() {}\n";
        let ctx = FileCtx::parse("demo.rs", src);
        assert_eq!(ctx.directives.len(), 3);
        assert!(matches!(ctx.directives[0].kind, DirectiveKind::NoAlloc));
        match &ctx.directives[1].kind {
            DirectiveKind::Allow { rules, fn_scope, reason } => {
                assert_eq!(rules, &["panic"]);
                assert!(!fn_scope);
                assert!(reason.contains("poisoned"));
            }
            other => panic!("expected allow, got {other:?}"),
        }
        assert!(matches!(ctx.directives[2].kind, DirectiveKind::Malformed { .. }));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let ctx = FileCtx::parse("demo.rs", "type F = fn(usize) -> bool; fn real() {}");
        assert_eq!(ctx.fns.len(), 1);
        assert_eq!(ctx.fns[0].name, "real");
    }
}
