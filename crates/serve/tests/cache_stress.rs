//! Concurrency stress test for the sharded estimate cache: hammer it from
//! many threads with interleaved hits, misses, inserts, and evictions, and
//! check the counter invariants that the serving metrics rely on.
//!
//! Invariants checked after the churn:
//!
//! * every lookup bumps exactly one counter: `hits + misses == lookups`;
//! * every *distinct* key ever inserted is either still resident or was
//!   evicted exactly once: `len + evictions == distinct_inserts`;
//! * occupancy never exceeds the sharded capacity bound
//!   (`num_shards * ceil(capacity / num_shards)`);
//! * a hit always returns the exact estimate stored for that key (no
//!   cross-key or torn reads), re-tagged `CacheHit`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use naru_query::{Estimate, Predicate, Provenance, Query, QueryKey};
use naru_serve::EstimateCache;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NUM_THREADS: usize = 8;
const KEYS_PER_THREAD: u32 = 100;
const LOOKUPS_PER_THREAD: usize = 3_000;
const CAPACITY: usize = 64;
const SHARDS: usize = 8;

fn key_for(v: u32) -> QueryKey {
    let query = Query::new(vec![Predicate::eq(0, v), Predicate::le(1, v % 50)]);
    QueryKey::new(&query, 4).expect("stress keys compile")
}

/// The estimate stored under key `v`, derived from `v` so any reader can
/// verify a hit's payload without shared state.
fn estimate_for(v: u32) -> Estimate {
    Estimate::closed_form(f64::from(v % 97) / 97.0, 10_000, Duration::from_micros(3))
}

#[test]
fn concurrent_churn_preserves_counter_invariants() {
    let cache = EstimateCache::new(CAPACITY, SHARDS);
    let total_keys = NUM_THREADS as u32 * KEYS_PER_THREAD;
    let lookups = AtomicU64::new(0);
    let verified_hits = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..NUM_THREADS {
            let cache = &cache;
            let lookups = &lookups;
            let verified_hits = &verified_hits;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xCAFE + t as u64);
                let base = t as u32 * KEYS_PER_THREAD;
                let mut next_insert = 0u32;
                for i in 0..LOOKUPS_PER_THREAD {
                    // Interleave: this thread inserts its own disjoint key
                    // range exactly once each, while probing the whole key
                    // space (so most lookups race other threads' inserts
                    // and evictions).
                    if i % 4 == 0 && next_insert < KEYS_PER_THREAD {
                        let v = base + next_insert;
                        cache.insert(key_for(v), estimate_for(v));
                        next_insert += 1;
                    }
                    let probe = rng.gen_range(0..total_keys);
                    lookups.fetch_add(1, Ordering::Relaxed);
                    if let Some(hit) = cache.get(&key_for(probe)) {
                        assert_eq!(hit.provenance, Provenance::CacheHit);
                        assert_eq!(
                            hit.selectivity,
                            estimate_for(probe).selectivity,
                            "hit for key {probe} returned another key's payload"
                        );
                        verified_hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Finish this thread's insert quota even if the loop's
                // modulo pacing didn't (it always does; belt and braces).
                while next_insert < KEYS_PER_THREAD {
                    let v = base + next_insert;
                    cache.insert(key_for(v), estimate_for(v));
                    next_insert += 1;
                }
            });
        }
    });

    let lookups = lookups.load(Ordering::Relaxed);
    assert_eq!(lookups, (NUM_THREADS * LOOKUPS_PER_THREAD) as u64);
    assert_eq!(cache.hits() + cache.misses(), lookups, "every lookup bumps exactly one counter");
    assert_eq!(cache.hits(), verified_hits.load(Ordering::Relaxed), "every hit was payload-verified");
    assert!(cache.hits() > 0, "the churn must produce some hits");
    assert!(cache.evictions() > 0, "800 distinct keys through 64 slots must evict");

    // Each distinct key was inserted exactly once, so it is either still
    // resident or was evicted exactly once.
    assert_eq!(cache.len() as u64 + cache.evictions(), u64::from(total_keys), "resident + evicted == inserted");

    // Sharded capacity bound: ceil(64 / 8) = 8 per shard, 8 shards.
    let per_shard = CAPACITY.div_ceil(SHARDS);
    assert!(
        cache.len() <= cache.num_shards() * per_shard,
        "occupancy {} exceeds the sharded bound {}",
        cache.len(),
        cache.num_shards() * per_shard
    );
}
