//! Chaos suite: drive the server through injected failure and prove the
//! request-lifecycle invariants hold under fire.
//!
//! Each test turns on one (or several) [`FaultInjection`] knobs and asserts
//! the properties the serving layer claims:
//!
//! * the accounting identity `served + failed + shed + cancelled ==
//!   accepted` holds exactly once the server drains — no request is ever
//!   double-counted or leaked, whatever dies in between;
//! * the watchdog respawns workers that die to a panic, and the pool keeps
//!   serving;
//! * an expired-deadline request is shed without the estimator ever
//!   running;
//! * a cancelled (or dropped) ticket's request is skipped, not executed;
//! * a poisoned (non-finite) estimate is rejected and never cached;
//! * graceful shutdown still drains and answers everything.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use naru_core::{ConditionalDensity, Engine, IndependentDensity};
use naru_query::{Predicate, Query};
use naru_serve::{FaultInjection, Priority, ServeConfig, ServeError, Server, SubmitOptions, Ticket};
use naru_tensor::Matrix;

/// A density that counts how many conditional evaluations ever ran, so
/// tests can prove the estimator was (or was not) executed.
struct CountingDensity {
    inner: IndependentDensity,
    calls: Arc<AtomicU64>,
}

impl CountingDensity {
    fn engine(calls: Arc<AtomicU64>) -> Engine {
        Engine::new(Self { inner: IndependentDensity::uniform(&[6, 4]), calls }, 1_000).with_samples(16)
    }
}

impl ConditionalDensity for CountingDensity {
    fn num_columns(&self) -> usize {
        self.inner.num_columns()
    }

    fn domain_sizes(&self) -> &[usize] {
        self.inner.domain_sizes()
    }

    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.conditionals(tuples, col)
    }
}

/// Blocks density evaluation until opened and counts entries, so a test
/// can hold the single worker mid-request deterministically.
#[derive(Default)]
struct Gate {
    state: Mutex<(bool, usize)>,
    cv: Condvar,
}

impl Gate {
    fn enter(&self) {
        let mut state = self.state.lock().unwrap();
        state.1 += 1;
        self.cv.notify_all();
        while !state.0 {
            state = self.cv.wait(state).unwrap();
        }
    }

    fn open(&self) {
        self.state.lock().unwrap().0 = true;
        self.cv.notify_all();
    }

    fn wait_entered(&self, n: usize) {
        let mut state = self.state.lock().unwrap();
        while state.1 < n {
            state = self.cv.wait(state).unwrap();
        }
    }

    fn entered(&self) -> usize {
        self.state.lock().unwrap().1
    }
}

struct GatedDensity {
    inner: IndependentDensity,
    gate: Arc<Gate>,
}

impl GatedDensity {
    fn engine(gate: Arc<Gate>) -> Engine {
        Engine::new(Self { inner: IndependentDensity::uniform(&[6, 4]), gate }, 1_000).with_samples(16)
    }
}

impl ConditionalDensity for GatedDensity {
    fn num_columns(&self) -> usize {
        self.inner.num_columns()
    }

    fn domain_sizes(&self) -> &[usize] {
        self.inner.domain_sizes()
    }

    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        if col == 0 {
            self.gate.enter();
        }
        self.inner.conditionals(tuples, col)
    }
}

fn plain_engine() -> Engine {
    Engine::new(IndependentDensity::uniform(&[8, 4]), 1_000).with_samples(64)
}

fn query() -> Query {
    Query::new(vec![Predicate::le(0, 3), Predicate::ge(1, 1)])
}

fn assert_identity(metrics: &naru_serve::MetricsSnapshot) {
    assert_eq!(
        metrics.accounted(),
        metrics.accepted,
        "identity violated: served={} failed={} shed={} cancelled={} accepted={}",
        metrics.served,
        metrics.failed,
        metrics.shed,
        metrics.cancelled,
        metrics.accepted
    );
}

#[test]
fn injected_panics_are_contained_and_accounted() {
    let faults = FaultInjection::default().with_panic_probability(0.3).with_seed(7);
    let server =
        Server::start(plain_engine(), ServeConfig::default().with_workers(2).with_max_batch(4).with_faults(faults))
            .unwrap();
    let tickets: Vec<Ticket> = (0..200).map(|_| server.submit(query()).unwrap()).collect();
    let mut served = 0u64;
    let mut panicked = 0u64;
    for ticket in tickets {
        match ticket.wait() {
            Ok(_) => served += 1,
            Err(ServeError::Panicked) => panicked += 1,
            Err(other) => panic!("unexpected failure mode: {other:?}"),
        }
    }
    assert!(served > 0, "p=0.3 must let most requests through");
    assert!(panicked > 0, "p=0.3 over 200 requests must inject at least one panic");
    let metrics = server.shutdown();
    assert_eq!(metrics.accepted, 200);
    assert_eq!(metrics.served, served);
    assert_eq!(metrics.failed, panicked);
    assert_identity(&metrics);
    assert_eq!(metrics.worker_respawns, 0, "contained panics must not kill workers");
}

#[test]
fn watchdog_respawns_dead_workers_and_the_pool_keeps_serving() {
    let faults = FaultInjection::default().with_death_probability(0.2).with_seed(11);
    let server =
        Server::start(plain_engine(), ServeConfig::default().with_workers(2).with_max_batch(1).with_faults(faults))
            .unwrap();
    // Batches of 1 with p(death)=0.2: ~30 deaths expected over 150
    // requests. Submit-and-wait in waves so dead workers must be replaced
    // for progress to continue.
    let mut served = 0u64;
    let mut lost = 0u64;
    for _ in 0..15 {
        let tickets: Vec<Ticket> = (0..10).map(|_| server.submit(query()).unwrap()).collect();
        for ticket in tickets {
            match ticket.wait() {
                Ok(_) => served += 1,
                Err(ServeError::WorkerLost) => lost += 1,
                Err(other) => panic!("unexpected failure mode: {other:?}"),
            }
        }
    }
    assert!(served > 0);
    assert!(lost > 0, "p=0.2 over 150 batches must kill at least one worker");
    let metrics = server.shutdown();
    assert!(metrics.worker_respawns > 0, "the watchdog must have respawned dead workers");
    assert_eq!(metrics.served, served);
    assert_eq!(metrics.failed, lost);
    assert_identity(&metrics);
}

#[test]
fn stalls_shed_expired_deadlines_but_break_nothing() {
    let faults = FaultInjection::default().with_stall(0.8, Duration::from_millis(10)).with_seed(3);
    let server =
        Server::start(plain_engine(), ServeConfig::default().with_workers(1).with_max_batch(2).with_faults(faults))
            .unwrap();
    // Half the requests carry a deadline far shorter than the injected
    // stalls; queued behind stalling batches, many of them must expire.
    let mut tickets: Vec<(bool, Ticket)> = Vec::new();
    for i in 0..60 {
        let options = if i % 2 == 0 {
            SubmitOptions::new().deadline_within(Duration::from_millis(1))
        } else {
            SubmitOptions::new()
        };
        tickets.push((i % 2 == 0, server.submit_with(query(), options).unwrap()));
    }
    let mut shed = 0u64;
    for (has_deadline, ticket) in tickets {
        match ticket.wait() {
            Ok(_) => {}
            Err(ServeError::DeadlineExceeded) => {
                assert!(has_deadline, "only deadline-carrying requests may be shed");
                shed += 1;
            }
            Err(other) => panic!("unexpected failure mode: {other:?}"),
        }
    }
    assert!(shed > 0, "10ms stalls must expire some 1ms deadlines");
    let metrics = server.shutdown();
    assert_eq!(metrics.shed, shed);
    assert_identity(&metrics);
}

#[test]
fn poisoned_estimates_are_rejected_and_never_cached() {
    let faults = FaultInjection::default().with_poison_probability(1.0).with_seed(5);
    let server = Server::start(
        plain_engine(),
        ServeConfig::default().with_workers(2).with_cache_capacity(32).with_cache_shards(4).with_faults(faults),
    )
    .unwrap();
    for _ in 0..20 {
        assert_eq!(server.estimate(&query()).unwrap_err(), ServeError::InvalidEstimate);
    }
    assert_eq!(server.cache_len(), 0, "a poisoned estimate must never enter the cache");
    let metrics = server.shutdown();
    assert_eq!(metrics.served, 0);
    assert_eq!(metrics.failed, 20);
    assert_identity(&metrics);
}

#[test]
fn expired_deadlines_are_shed_without_executing_the_estimator() {
    let calls = Arc::new(AtomicU64::new(0));
    let server = Server::start(
        CountingDensity::engine(Arc::clone(&calls)),
        ServeConfig::default().with_workers(2).with_max_batch(4),
    )
    .unwrap();
    // Every deadline is already expired at submit time: the queue must
    // shed each request at dequeue, before any density evaluation.
    let tickets: Vec<Ticket> = (0..10)
        .map(|_| server.submit_with(query(), SubmitOptions::new().deadline_within(Duration::ZERO)).unwrap())
        .collect();
    for ticket in tickets {
        assert_eq!(ticket.wait().unwrap_err(), ServeError::DeadlineExceeded);
    }
    let metrics = server.shutdown();
    assert_eq!(calls.load(Ordering::Relaxed), 0, "an expired request must never reach the model");
    assert_eq!(metrics.shed, 10);
    assert_eq!(metrics.served, 0);
    assert_identity(&metrics);
}

#[test]
fn forced_saturation_rejects_try_submit_but_not_blocking_submit() {
    let faults = FaultInjection::default().with_forced_saturation(true);
    let server = Server::start(plain_engine(), ServeConfig::default().with_workers(1).with_faults(faults)).unwrap();
    for _ in 0..5 {
        assert!(matches!(server.try_submit(query()), Err(ServeError::Overloaded { .. })));
    }
    // Blocking submits bypass the forced-saturation admission gate.
    assert!(server.estimate(&query()).is_ok());
    let metrics = server.shutdown();
    assert_eq!(metrics.rejected, 5);
    assert_eq!(metrics.accepted, 1);
    assert_eq!(metrics.served, 1);
    assert_identity(&metrics);
}

#[test]
fn cancelled_tickets_skip_the_walk_entirely() {
    let gate = Arc::new(Gate::default());
    let server = Server::start(
        GatedDensity::engine(Arc::clone(&gate)),
        ServeConfig::default().with_workers(1).with_max_batch(1),
    )
    .unwrap();
    let q = Query::new(vec![Predicate::le(0, 2)]);
    // The head request parks the only worker on the gate...
    let head = server.submit(q.clone()).unwrap();
    gate.wait_entered(1);
    // ...four more queue up behind it, then are abandoned (two explicitly,
    // two by drop) while the worker is still parked.
    let queued: Vec<Ticket> = (0..4).map(|_| server.submit(q.clone()).unwrap()).collect();
    for (i, ticket) in queued.into_iter().enumerate() {
        if i % 2 == 0 {
            ticket.cancel();
        } else {
            drop(ticket);
        }
    }
    gate.open();
    head.wait().unwrap();
    let metrics = server.shutdown();
    assert_eq!(gate.entered(), 1, "cancelled requests must never start a walk");
    assert_eq!(metrics.cancelled, 4);
    assert_eq!(metrics.served, 1);
    assert_eq!(metrics.accepted, 5);
    assert_identity(&metrics);
}

#[test]
fn shutdown_drains_and_accounts_everything_under_combined_chaos() {
    let faults = FaultInjection::default()
        .with_panic_probability(0.1)
        .with_death_probability(0.05)
        .with_stall(0.2, Duration::from_millis(1))
        .with_poison_probability(0.1)
        .with_seed(23);
    let server = Server::start(
        plain_engine(),
        ServeConfig::default().with_workers(3).with_max_batch(4).with_queue_capacity(256).with_faults(faults),
    )
    .unwrap();
    // Mixed priorities, sprinkled deadlines, a few abandoned tickets —
    // then shutdown mid-storm. Every kept ticket must still resolve.
    let mut kept: Vec<Ticket> = Vec::new();
    for i in 0..120 {
        let options = SubmitOptions::new()
            .with_priority(match i % 3 {
                0 => Priority::Interactive,
                1 => Priority::Batch,
                _ => Priority::BestEffort,
            })
            .deadline_within(if i % 5 == 0 { Duration::from_millis(2) } else { Duration::from_secs(60) });
        let ticket = server.submit_with(query(), options).unwrap();
        if i % 7 == 0 {
            ticket.cancel();
        } else {
            kept.push(ticket);
        }
    }
    server.close();
    for ticket in kept {
        match ticket.wait() {
            Ok(_) => {}
            Err(
                ServeError::Panicked
                | ServeError::WorkerLost
                | ServeError::InvalidEstimate
                | ServeError::DeadlineExceeded,
            ) => {}
            Err(other) => panic!("unexpected failure mode: {other:?}"),
        }
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.accepted, 120);
    assert_identity(&metrics);
    assert!(metrics.served > 0, "chaos at these rates must not starve the pool completely");
}
