//! # naru-serve
//!
//! The serving layer: turns the lock-free
//! [`Engine`](naru_core::Engine)/[`Session`](naru_core::Session) estimation
//! substrate into an actual request-scheduling service.
//!
//! A [`Server`] owns one shared `Engine` and a pool of worker threads, each
//! holding its own `Session`. Clients submit [`Query`](naru_query::Query)s
//! from any thread:
//!
//! * **admission control** — the request queue is bounded; [`Server::try_submit`]
//!   rejects with [`ServeError::Overloaded`] when it is full (shed load at
//!   the edge), while [`Server::submit`] blocks until space frees up
//!   (backpressure);
//! * **tiered execution** — each worker answers through a
//!   [`TieredSession`](naru_core::TieredSession): queries the engine's
//!   statistics sidecar can prove exactly are answered in microseconds
//!   (tier 0), histogram sketches take narrow queries within a q-error
//!   budget (tier 1), and only the residual runs the model's progressive
//!   sampler (tier 2). Every [`Estimate`](naru_query::Estimate) carries a
//!   [`Provenance`](naru_query::Provenance) tag and the per-tier
//!   [`MetricsSnapshot`] counters (`tier0_served` / `tier1_served` /
//!   `tier2_served`) partition `served` accordingly. Engines without
//!   statistics serve everything at tier 2, bit-identical to before;
//! * **estimate caching** — with
//!   [`ServeConfig::cache_capacity`] `> 0`, submissions first consult a
//!   bounded, sharded cache keyed by order-normalized
//!   [`QueryKey`](naru_query::QueryKey)s. A hit resolves the ticket at
//!   submit time with the cached [`Estimate`](naru_query::Estimate)
//!   re-tagged [`Provenance::CacheHit`](naru_query::Provenance) — no queue
//!   slot, no worker, and no `accepted` increment (hits bypass admission
//!   control). [`MetricsSnapshot::cache_hits`] / `cache_misses` /
//!   `cache_evictions` track the cache; determinism makes hits
//!   bit-identical to recomputation;
//! * **micro-batching** — a worker opportunistically drains up to
//!   [`ServeConfig::max_batch`] queued requests and answers them through a
//!   single batched estimate call, amortizing per-wakeup overhead under
//!   load without adding latency when the queue is shallow. Within a
//!   micro-batch, model-tier queries sharing a column prefix reuse the
//!   sampler's partial per-column state (prefix memoization), so
//!   repetitive batches cost far less than their query count suggests;
//! * **rich responses** — every answered request carries the full
//!   [`Estimate`](naru_query::Estimate) plus [`ServeStats`] (queue wait,
//!   execution time, worker id, batch size), and failures are typed
//!   [`ServeError`]s — an overload, a shutdown, or a per-query
//!   [`EstimateError`](naru_query::EstimateError) — never a panic or a
//!   silent drop. Even a *panicking* density is contained: the worker
//!   catches it, answers the poisoning request with
//!   [`ServeError::Panicked`], and keeps serving everything else;
//! * **priorities and deadlines** — every submission may carry
//!   [`SubmitOptions`]: a [`Priority`] class ([`Priority::Interactive`] /
//!   [`Priority::Batch`] / [`Priority::BestEffort`]) with per-class
//!   admission caps and strict dequeue ordering, and an optional
//!   [`Deadline`]. A request whose deadline expires while it queues is
//!   *shed* at dequeue — answered [`ServeError::DeadlineExceeded`] without
//!   ever running the estimator;
//! * **cancellation** — a [`Ticket`] can be cancelled (or simply dropped);
//!   workers skip abandoned requests before doing any work, and
//!   [`Ticket::wait_timeout`] bounds how long a caller blocks;
//! * **graceful degradation** — with a [`DegradePolicy`] attached, a
//!   request whose remaining deadline budget (or the observed queue depth)
//!   makes the full model walk unaffordable is answered through a cheaper
//!   rung — a reduced-sample walk, or the statistics sketch outright — and
//!   tagged [`Provenance::Degraded`](naru_query::Provenance::Degraded)
//!   (counted in [`MetricsSnapshot::degraded_served`], never cached);
//! * **supervision and chaos testing** — a watchdog thread respawns
//!   workers that die to a panic ([`MetricsSnapshot::worker_respawns`]),
//!   and [`FaultInjection`] provides runtime knobs (injected panics,
//!   worker deaths, stalls, poisoned estimates, forced saturation) that the
//!   chaos test suite uses to prove the lifecycle invariants under fire;
//! * **graceful shutdown** — [`Server::shutdown`] (or dropping the server)
//!   stops admission, drains every accepted request to completion, and
//!   joins the workers: no accepted request is ever lost. After the drain
//!   the accounting identity holds exactly:
//!   `served + failed + shed + cancelled == accepted`
//!   ([`MetricsSnapshot::accounted`]).
//!
//! Full-quality estimates are deterministic: sessions re-seed per query, so
//! a served answer is bit-for-bit identical to a direct sequential
//! `Session` call with the same engine knobs, regardless of worker count,
//! scheduling order, or batch boundaries.
//!
//! ```
//! use naru_core::{Engine, IndependentDensity};
//! use naru_query::{Predicate, Query};
//! use naru_serve::{ServeConfig, Server};
//!
//! // Any trained artifact works; a closed-form density keeps the example fast.
//! let engine = Engine::new(IndependentDensity::uniform(&[8, 8]), 10_000).with_samples(64);
//! let server = Server::start(engine, ServeConfig::default().with_workers(2).with_max_batch(4)).unwrap();
//!
//! let ticket = server.try_submit(Query::new(vec![Predicate::le(0, 3)])).unwrap();
//! let served = ticket.wait().unwrap();
//! assert!(served.estimate.selectivity > 0.0);
//! println!("~{} rows, waited {:?} in queue on worker {}",
//!     served.estimate.cardinality(), served.stats.queue_wait, served.stats.worker);
//!
//! let metrics = server.shutdown();
//! assert_eq!(metrics.served, 1);
//! assert_eq!(metrics.accounted(), metrics.accepted);
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod error;
pub mod fault;
pub mod policy;
pub mod queue;
pub mod request;
pub mod server;
pub mod stats;

pub use cache::EstimateCache;
pub use error::{ConfigError, ServeError};
pub use fault::FaultInjection;
pub use policy::{DegradePolicy, Route};
pub use queue::{BoundedQueue, Disposition, Scheduled, TryPushError};
pub use request::{Deadline, Priority, SubmitOptions};
pub use server::{ServeConfig, ServedEstimate, Server, Ticket};
pub use stats::{MetricsSnapshot, ServeStats};
