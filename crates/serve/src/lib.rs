//! # naru-serve
//!
//! The serving layer: turns the lock-free
//! [`Engine`](naru_core::Engine)/[`Session`](naru_core::Session) estimation
//! substrate into an actual request-scheduling service.
//!
//! A [`Server`] owns one shared `Engine` and a pool of worker threads, each
//! holding its own `Session`. Clients submit [`Query`](naru_query::Query)s
//! from any thread:
//!
//! * **admission control** — the request queue is bounded; [`Server::try_submit`]
//!   rejects with [`ServeError::Overloaded`] when it is full (shed load at
//!   the edge), while [`Server::submit`] blocks until space frees up
//!   (backpressure);
//! * **micro-batching** — a worker opportunistically drains up to
//!   [`ServeConfig::max_batch`] queued requests and answers them through a
//!   single `Session::estimate_batch` call, amortizing per-wakeup overhead
//!   under load without adding latency when the queue is shallow;
//! * **rich responses** — every answered request carries the full
//!   [`Estimate`](naru_query::Estimate) plus [`ServeStats`] (queue wait,
//!   execution time, worker id, batch size), and failures are typed
//!   [`ServeError`]s — an overload, a shutdown, or a per-query
//!   [`EstimateError`](naru_query::EstimateError) — never a panic or a
//!   silent drop. Even a *panicking* density is contained: the worker
//!   catches it, answers the poisoning request with
//!   [`ServeError::Panicked`], and keeps serving everything else;
//! * **graceful shutdown** — [`Server::shutdown`] (or dropping the server)
//!   stops admission, drains every accepted request to completion, and
//!   joins the workers: no accepted request is ever lost.
//!
//! Estimates are deterministic: sessions re-seed per query, so a served
//! answer is bit-for-bit identical to a direct sequential `Session` call
//! with the same engine knobs, regardless of worker count, scheduling
//! order, or batch boundaries.
//!
//! ```
//! use naru_core::{Engine, IndependentDensity};
//! use naru_query::{Predicate, Query};
//! use naru_serve::{ServeConfig, Server};
//!
//! // Any trained artifact works; a closed-form density keeps the example fast.
//! let engine = Engine::new(IndependentDensity::uniform(&[8, 8]), 10_000).with_samples(64);
//! let server = Server::start(engine, ServeConfig::default().with_workers(2).with_max_batch(4));
//!
//! let ticket = server.try_submit(Query::new(vec![Predicate::le(0, 3)])).unwrap();
//! let served = ticket.wait().unwrap();
//! assert!(served.estimate.selectivity > 0.0);
//! println!("~{} rows, waited {:?} in queue on worker {}",
//!     served.estimate.cardinality(), served.stats.queue_wait, served.stats.worker);
//!
//! let metrics = server.shutdown();
//! assert_eq!(metrics.served, 1);
//! ```

pub mod error;
pub mod queue;
pub mod server;
pub mod stats;

pub use error::ServeError;
pub use queue::{BoundedQueue, TryPushError};
pub use server::{ServeConfig, ServedEstimate, Server, Ticket};
pub use stats::{MetricsSnapshot, ServeStats};
