//! Graceful degradation: trade estimate quality for latency when the full
//! model walk is unaffordable.
//!
//! Naru's progressive-sampling estimates are inherently anytime and
//! approximate, and the tiered pipeline already produces cheap sketch
//! answers — so under deadline or overload pressure the server should
//! *degrade* to a faster rung rather than fail. A [`DegradePolicy`] encodes
//! the ladder:
//!
//! 1. **full** — the ordinary tiered estimate (stats fast paths, then the
//!    full-sample model walk);
//! 2. **reduced** — the model walk with
//!    [`DegradePolicy::reduced_samples`] paths: model-shaped, cheaper,
//!    noisier;
//! 3. **sketch** — no model at all: the statistics sidecar's histogram
//!    sketch answers past its usual q-error gate (or, without stats, a
//!    minimal [`DegradePolicy::sketch_fallback_samples`]-path walk).
//!
//! The rung is chosen per request at *dequeue* time, from the request's
//! remaining deadline budget and the queue depth the worker observes.
//! Answers from rungs 2 and 3 are tagged
//! [`Provenance::Degraded`](naru_query::Provenance::Degraded) so callers
//! can tell (and the server never caches them).

use std::time::Duration;

/// The degradation rung chosen for one request at dequeue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Full quality: the ordinary tiered estimate.
    Full,
    /// Reduced-sample model walk ([`DegradePolicy::reduced_samples`]).
    Reduced,
    /// Stats-only sketch answer (model skipped entirely).
    Sketch,
}

/// When and how far to degrade. Attached to the server via
/// [`ServeConfig::with_degrade`](crate::ServeConfig::with_degrade); a
/// server without a policy never degrades.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradePolicy {
    /// A request whose remaining deadline budget is at or below this is
    /// routed to the reduced-sample rung instead of the full walk.
    pub full_walk_budget: Duration,
    /// A request whose remaining budget is at or below this skips the
    /// model entirely and takes the sketch rung. Should be below
    /// [`DegradePolicy::full_walk_budget`] to make the ladder monotone.
    pub sketch_budget: Duration,
    /// Sample-path count of the reduced rung. Must be at least 1
    /// (validated at [`Server::start`](crate::Server::start)).
    pub reduced_samples: usize,
    /// Queue depth (observed at dequeue, after draining the batch) at or
    /// above which even deadline-less requests take the reduced rung.
    /// `usize::MAX` (the default) disables depth-based degradation.
    pub reduced_depth: usize,
    /// Queue depth at or above which deadline-less requests take the
    /// sketch rung. `usize::MAX` disables.
    pub sketch_depth: usize,
    /// Sample-path count used when a sketch-rung request reaches an engine
    /// without a statistics sidecar. Must be at least 1.
    pub sketch_fallback_samples: usize,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        Self {
            full_walk_budget: Duration::from_millis(25),
            sketch_budget: Duration::from_millis(2),
            reduced_samples: 250,
            reduced_depth: usize::MAX,
            sketch_depth: usize::MAX,
            sketch_fallback_samples: 64,
        }
    }
}

impl DegradePolicy {
    /// Sets the remaining-budget threshold below which the full walk is
    /// replaced by the reduced rung.
    pub fn with_full_walk_budget(mut self, budget: Duration) -> Self {
        self.full_walk_budget = budget;
        self
    }

    /// Sets the remaining-budget threshold below which the model is
    /// skipped entirely.
    pub fn with_sketch_budget(mut self, budget: Duration) -> Self {
        self.sketch_budget = budget;
        self
    }

    /// Sets the reduced rung's sample count.
    pub fn with_reduced_samples(mut self, samples: usize) -> Self {
        self.reduced_samples = samples;
        self
    }

    /// Sets the queue-depth watermarks for depth-based degradation
    /// (`usize::MAX` disables a rung).
    pub fn with_depth_watermarks(mut self, reduced: usize, sketch: usize) -> Self {
        self.reduced_depth = reduced;
        self.sketch_depth = sketch;
        self
    }

    /// Sets the stats-less sketch-rung fallback sample count.
    pub fn with_sketch_fallback_samples(mut self, samples: usize) -> Self {
        self.sketch_fallback_samples = samples;
        self
    }

    /// Picks the rung for a request with `remaining` deadline budget
    /// (`None` = no deadline) observed against `depth` queued requests.
    /// Deadline pressure wins over depth pressure; the tighter rung wins
    /// overall.
    pub fn route(&self, remaining: Option<Duration>, depth: usize) -> Route {
        if let Some(remaining) = remaining {
            if remaining <= self.sketch_budget {
                return Route::Sketch;
            }
            if remaining <= self.full_walk_budget {
                return Route::Reduced;
            }
        }
        if depth >= self.sketch_depth {
            return Route::Sketch;
        }
        if depth >= self.reduced_depth {
            return Route::Reduced;
        }
        Route::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_budget_picks_the_rung() {
        let policy = DegradePolicy::default();
        assert_eq!(policy.route(None, 0), Route::Full);
        assert_eq!(policy.route(Some(Duration::from_secs(1)), 0), Route::Full);
        assert_eq!(policy.route(Some(Duration::from_millis(10)), 0), Route::Reduced);
        assert_eq!(policy.route(Some(Duration::from_millis(1)), 0), Route::Sketch);
        assert_eq!(policy.route(Some(Duration::ZERO), 0), Route::Sketch);
    }

    #[test]
    fn queue_depth_degrades_deadline_less_requests() {
        let policy = DegradePolicy::default().with_depth_watermarks(8, 32);
        assert_eq!(policy.route(None, 7), Route::Full);
        assert_eq!(policy.route(None, 8), Route::Reduced);
        assert_eq!(policy.route(None, 32), Route::Sketch);
        // A comfortable deadline does not undo depth pressure.
        assert_eq!(policy.route(Some(Duration::from_secs(60)), 8), Route::Reduced);
        // But a tight deadline wins over a shallow queue.
        assert_eq!(policy.route(Some(Duration::from_millis(1)), 0), Route::Sketch);
    }

    #[test]
    fn default_policy_never_degrades_on_depth_alone() {
        let policy = DegradePolicy::default();
        assert_eq!(policy.route(None, usize::MAX - 1), Route::Full);
    }
}
