//! Per-request scheduling statistics and whole-server counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How one request moved through the server, layered onto the
/// [`Estimate`](naru_query::Estimate) it produced.
///
/// `queue_wait` is the time between submission and the moment a worker
/// dequeued the request's batch; `execution` is the estimate's own
/// wall-clock time (a request later in a micro-batch additionally waits for
/// its predecessors inside the batch, which shows up in the end-to-end
/// latency a client measures but not in either field here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Time the estimator spent producing the answer.
    pub execution: Duration,
    /// Id (0-based) of the worker that served the request.
    pub worker: usize,
    /// Size of the micro-batch the request was drained into.
    pub batch_size: usize,
}

/// Monotonic whole-server counters, updated lock-free by submitters and
/// workers. The `accepted` count lives in the queue itself (incremented
/// inside its critical section, atomically with the enqueue), so a worker
/// can never serve a request before it is counted as accepted.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub rejected: AtomicU64,
    pub served: AtomicU64,
    pub failed: AtomicU64,
    pub shed: AtomicU64,
    pub cancelled: AtomicU64,
    pub batches: AtomicU64,
    pub fused_batches: AtomicU64,
    pub tier0_served: AtomicU64,
    pub tier1_served: AtomicU64,
    pub tier2_served: AtomicU64,
    pub relaxed_served: AtomicU64,
    pub degraded_served: AtomicU64,
    pub worker_respawns: AtomicU64,
}

impl Metrics {
    /// Snapshots the worker-side counters; the caller fills `accepted` from
    /// the queue and the `cache_*` fields from the cache **after** this
    /// read (service implies prior acceptance, so reading completions first
    /// keeps `completed() <= accepted` invariant under concurrent traffic).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            accepted: 0,
            rejected: self.rejected.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            fused_batches: self.fused_batches.load(Ordering::Relaxed),
            tier0_served: self.tier0_served.load(Ordering::Relaxed),
            tier1_served: self.tier1_served.load(Ordering::Relaxed),
            tier2_served: self.tier2_served.load(Ordering::Relaxed),
            relaxed_served: self.relaxed_served.load(Ordering::Relaxed),
            degraded_served: self.degraded_served.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
        }
    }
}

/// A point-in-time copy of the server's counters.
///
/// The cache counters deserve a precise reading:
///
/// * `cache_hits` — submissions answered directly from the estimate cache.
///   Hits bypass admission control: they consume no queue slot and are
///   **not** part of `accepted` or `served`, so the steady-state invariant
///   is `hits + accepted == submissions` (modulo rejections).
/// * `cache_misses` — cache lookups that found nothing; the request then
///   went through the normal queue → worker path.
/// * `cache_evictions` — entries displaced by FIFO eviction to stay within
///   [`ServeConfig::cache_capacity`](crate::ServeConfig::cache_capacity).
///
/// All three stay `0` when the cache is disabled (the default). The
/// `tier*_served` + `relaxed_served` + `degraded_served` counters split
/// `served` by the [`Provenance`](naru_query::Provenance) of each
/// worker-produced answer: `tier0_served + tier1_served + tier2_served +
/// relaxed_served + degraded_served == served`.
///
/// The request-lifecycle **accounting identity**: every request admitted
/// into the queue leaves it in exactly one of four ways, so after the
/// server drains (shutdown, or any quiescent moment)
///
/// ```text
/// served + failed + shed + cancelled == accepted
/// ```
///
/// ([`MetricsSnapshot::accounted`] computes the left-hand side). The chaos
/// suite drives the server through injected panics, worker deaths, stalls,
/// and poisoned estimates and asserts the identity holds exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests admitted into the queue (by either submit flavor).
    pub accepted: u64,
    /// Requests refused by admission control (`try_submit` on a full queue
    /// or a full priority class).
    pub rejected: u64,
    /// Requests answered with an [`Estimate`](naru_query::Estimate).
    pub served: u64,
    /// Requests answered with a typed estimation error.
    pub failed: u64,
    /// Accepted requests shed unexecuted because their deadline expired
    /// before a worker reached them (answered `DeadlineExceeded`).
    pub shed: u64,
    /// Accepted requests abandoned by their submitter (ticket cancelled or
    /// dropped) and skipped unexecuted.
    pub cancelled: u64,
    /// Micro-batches executed across all workers.
    pub batches: u64,
    /// Micro-batches answered through the cross-request fused batch walk
    /// (one prefix-memoizing `estimate_batch` call over the whole drained
    /// batch); always `0` when
    /// [`ServeConfig::fused_batching`](crate::ServeConfig::fused_batching)
    /// is off.
    pub fused_batches: u64,
    /// Served answers proven exactly by table statistics (tier 0).
    pub tier0_served: u64,
    /// Served answers from histogram sketches within budget (tier 1).
    pub tier1_served: u64,
    /// Served answers from the model's progressive sampler (tier 2).
    pub tier2_served: u64,
    /// Served answers from the tier-2 walk in relaxed (quantized-weight)
    /// precision, tagged [`Provenance::Relaxed`](naru_query::Provenance).
    pub relaxed_served: u64,
    /// Served answers produced through a degraded rung (reduced-sample walk
    /// or forced sketch) under deadline or overload pressure.
    pub degraded_served: u64,
    /// Worker threads respawned by the supervisor after a crash.
    pub worker_respawns: u64,
    /// Submissions answered from the estimate cache (bypassing the queue).
    pub cache_hits: u64,
    /// Cache lookups that fell through to the worker path.
    pub cache_misses: u64,
    /// Cache entries displaced by FIFO eviction.
    pub cache_evictions: u64,
}

impl MetricsSnapshot {
    /// Requests that received *some* response (success or typed error).
    pub fn completed(&self) -> u64 {
        self.served + self.failed
    }

    /// Every way an accepted request can leave the queue:
    /// `served + failed + shed + cancelled`. Equals `accepted` once the
    /// server has drained (and never exceeds it).
    pub fn accounted(&self) -> u64 {
        self.served + self.failed + self.shed + self.cancelled
    }

    /// Fraction of cache lookups that hit, or `None` before any lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let lookups = self.cache_hits + self.cache_misses;
        (lookups > 0).then(|| self.cache_hits as f64 / lookups as f64)
    }

    /// Renders the snapshot as a pretty-printed JSON object. The one
    /// canonical rendering, shared by the network front end's `/metrics`
    /// endpoint and `bench_serve`'s report, so the two never drift: every
    /// counter field plus the derived `accounted` and `cache_hit_rate`
    /// (`null` before any cache lookup).
    pub fn to_json(&self) -> String {
        self.to_json_indented(0)
    }

    /// [`MetricsSnapshot::to_json`] with every line indented by `level`
    /// two-space steps, so callers can embed the object inside a larger
    /// JSON document at the right depth. The first line (`{`) is *not*
    /// indented — it lands wherever the caller writes it.
    pub fn to_json_indented(&self, level: usize) -> String {
        let pad = "  ".repeat(level + 1);
        let mut out = String::from("{\n");
        let fields: [(&str, u64); 17] = [
            ("accepted", self.accepted),
            ("rejected", self.rejected),
            ("served", self.served),
            ("failed", self.failed),
            ("shed", self.shed),
            ("cancelled", self.cancelled),
            ("accounted", self.accounted()),
            ("batches", self.batches),
            ("fused_batches", self.fused_batches),
            ("tier0_served", self.tier0_served),
            ("tier1_served", self.tier1_served),
            ("tier2_served", self.tier2_served),
            ("relaxed_served", self.relaxed_served),
            ("degraded_served", self.degraded_served),
            ("worker_respawns", self.worker_respawns),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
        ];
        for (key, value) in fields {
            out.push_str(&format!("{pad}\"{key}\": {value},\n"));
        }
        out.push_str(&format!("{pad}\"cache_evictions\": {},\n", self.cache_evictions));
        match self.cache_hit_rate() {
            Some(rate) => out.push_str(&format!("{pad}\"cache_hit_rate\": {rate:.4}\n")),
            None => out.push_str(&format!("{pad}\"cache_hit_rate\": null\n")),
        }
        out.push_str(&"  ".repeat(level));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = Metrics::default();
        m.served.store(4, Ordering::Relaxed);
        m.failed.store(1, Ordering::Relaxed);
        m.batches.store(2, Ordering::Relaxed);
        m.shed.store(3, Ordering::Relaxed);
        m.cancelled.store(2, Ordering::Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.accepted, 0, "accepted is filled from the queue by the caller");
        assert_eq!(snap.rejected, 0);
        assert_eq!(snap.completed(), 5);
        assert_eq!(snap.accounted(), 10, "accounted = served + failed + shed + cancelled");
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.cache_hits, 0, "cache counters are filled from the cache by the caller");
        assert_eq!(snap.cache_hit_rate(), None);
    }

    #[test]
    fn cache_hit_rate_counts_both_outcomes() {
        let mut snap = Metrics::default().snapshot();
        snap.cache_hits = 3;
        snap.cache_misses = 1;
        assert_eq!(snap.cache_hit_rate(), Some(0.75));
    }

    #[test]
    fn to_json_renders_every_counter_and_derived_fields() {
        let m = Metrics::default();
        m.served.store(4, Ordering::Relaxed);
        m.shed.store(1, Ordering::Relaxed);
        let mut snap = m.snapshot();
        snap.accepted = 5;
        snap.cache_hits = 1;
        snap.cache_misses = 3;
        let json = snap.to_json();
        for field in [
            "\"accepted\": 5",
            "\"served\": 4",
            "\"shed\": 1",
            "\"accounted\": 5",
            "\"cancelled\": 0",
            "\"fused_batches\": 0",
            "\"tier2_served\": 0",
            "\"relaxed_served\": 0",
            "\"worker_respawns\": 0",
            "\"cache_evictions\": 0",
            "\"cache_hit_rate\": 0.2500",
        ] {
            assert!(json.contains(field), "missing {field} in:\n{json}");
        }
        assert!(json.starts_with("{\n") && json.ends_with('}'));
        // No trailing comma before the closing brace.
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn to_json_indented_nests_cleanly() {
        let snap = Metrics::default().snapshot();
        let json = snap.to_json_indented(2);
        assert!(json.contains("\n      \"accepted\": 0"), "fields sit at level+1:\n{json}");
        assert!(json.ends_with("\n    }"), "closing brace sits at level:\n{json}");
        assert!(json.contains("\"cache_hit_rate\": null"));
    }
}
