//! A bounded MPMC queue with admission control and drain-on-close.
//!
//! The serving layer's scheduling core: submitters push from any thread
//! (either rejecting when full — admission control — or blocking until
//! space frees up), workers pop *batches* so one dequeue can feed an entire
//! `estimate_batch` call, and closing the queue wakes everyone while still
//! letting workers drain the accepted backlog — the property behind the
//! server's graceful, no-request-lost shutdown.
//!
//! Implemented with a `Mutex<VecDeque>` plus two condition variables
//! (`not_empty` for workers, `not_full` for blocked submitters). The
//! workspace is dependency-free, so no crossbeam; the queue is short and
//! the critical sections are a few pointer moves, which is plenty for
//! millisecond-scale estimation work items.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a non-blocking push was refused. The item is handed back so the
/// caller can report it (or retry) without cloning.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue is closed to new items.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Items ever successfully pushed, counted inside the critical section
    /// so acceptance and enqueueing are one atomic step (a consumer can
    /// never observe an item whose acceptance is not yet counted).
    pushed: u64,
}

/// Bounded multi-producer multi-consumer FIFO queue.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        Self {
            state: Mutex::new(QueueState { items: VecDeque::with_capacity(capacity), closed: false, pushed: 0 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Total items ever accepted (successfully pushed), updated atomically
    /// with the enqueue itself.
    pub fn total_pushed(&self) -> u64 {
        self.state.lock().expect("queue lock poisoned").pushed
    }

    /// The maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock poisoned").closed
    }

    /// Admission-controlled push: never blocks, refusing with
    /// [`TryPushError::Full`] at capacity or [`TryPushError::Closed`] after
    /// shutdown began.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        state.pushed += 1;
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space. Returns the item back as `Err` if
    /// the queue closed before space opened up.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                state.pushed += 1;
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue lock poisoned");
        }
    }

    /// Pops up to `max` items into `out` (cleared first), blocking until at
    /// least one item is available. Returns `false` — and leaves `out`
    /// empty — only once the queue is closed *and* fully drained, so every
    /// accepted item is handed to exactly one consumer before workers stop.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> bool {
        out.clear();
        let mut state = self.state.lock().expect("queue lock poisoned");
        while state.items.is_empty() {
            if state.closed {
                return false;
            }
            state = self.not_empty.wait(state).expect("queue lock poisoned");
        }
        let take = max.max(1).min(state.items.len());
        out.extend(state.items.drain(..take));
        let more_left = !state.items.is_empty();
        drop(state);
        // Wake every blocked submitter (multiple slots just freed), and one
        // more worker if items remain.
        self.not_full.notify_all();
        if more_left {
            self.not_empty.notify_one();
        }
        true
    }

    /// Closes the queue: subsequent pushes fail, blocked pushers wake with
    /// their item handed back, and consumers drain the backlog before
    /// observing closure.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_rejects_at_capacity_and_after_close() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(matches!(q.try_push(3), Err(TryPushError::Full(3))));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2, "rejected pushes must not count as accepted");
        q.close();
        assert!(matches!(q.try_push(4), Err(TryPushError::Closed(4))));
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn pop_batch_drains_in_fifo_order_up_to_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(3, &mut out));
        assert_eq!(out, vec![0, 1, 2]);
        assert!(q.pop_batch(3, &mut out));
        assert_eq!(out, vec![3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn close_lets_consumers_drain_then_stop() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        let mut out = Vec::new();
        assert!(q.pop_batch(1, &mut out));
        assert_eq!(out, vec!["a"]);
        assert!(q.pop_batch(8, &mut out));
        assert_eq!(out, vec!["b"]);
        assert!(!q.pop_batch(1, &mut out));
        assert!(out.is_empty());
        assert!(q.is_closed());
    }

    #[test]
    fn blocking_push_waits_for_space_and_errors_on_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).unwrap();

        // A consumer that frees one slot after a beat.
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                let mut out = Vec::new();
                assert!(q.pop_batch(1, &mut out));
                out
            })
        };
        // Blocks until the consumer drains, then succeeds.
        q.push(1u32).unwrap();
        assert_eq!(consumer.join().unwrap(), vec![0]);

        // A pusher blocked at close time gets its item back.
        let blocked = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2u32))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(blocked.join().unwrap(), Err(2));
    }
}
