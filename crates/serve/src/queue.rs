//! A bounded MPMC queue with priority classes, per-class admission
//! control, dead-item shedding, and drain-on-close.
//!
//! The serving layer's scheduling core: submitters push from any thread
//! (either rejecting when full — admission control — or blocking until
//! space frees up), workers pop *batches* so one dequeue can feed an entire
//! `estimate_batch` call, and closing the queue wakes everyone while still
//! letting workers drain the accepted backlog — the property behind the
//! server's graceful, no-request-lost shutdown.
//!
//! Items implement [`Scheduled`]: each carries a [`Priority`] class and a
//! live/expired/abandoned [`Disposition`]. The queue keeps one FIFO lane
//! per class; consumers always drain the highest non-empty class first, and
//! each class has its own admission cap so background floods cannot evict
//! interactive work. Items whose disposition has gone non-live by dequeue
//! time (deadline expired, ticket cancelled) are *shed* at the dequeue
//! boundary — handed back separately so the consumer can account for them
//! without ever paying to execute them.
//!
//! Implemented with a `Mutex<[VecDeque; 3]>` plus two condition variables
//! (`not_empty` for workers, `not_full` for blocked submitters). The
//! workspace is dependency-free, so no crossbeam; the queue is short and
//! the critical sections are a few pointer moves, which is plenty for
//! millisecond-scale estimation work items.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::request::{Priority, NUM_PRIORITIES};

/// What a queued item is worth by the time a consumer reaches it.
///
/// Checked at the *dequeue* boundary: the queue never scans for dead items
/// proactively, it just refuses to hand them to a consumer as work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Still worth executing.
    Live,
    /// The item's deadline passed while it queued; executing it would waste
    /// a worker cycle on an answer nobody can use.
    Expired,
    /// The submitter gave up (cancelled or dropped its ticket); nobody is
    /// listening for the answer.
    Abandoned,
}

/// Scheduling metadata the queue reads from its items.
///
/// The defaults (interactive, always live) make any plain payload behave
/// exactly like the pre-priority FIFO queue.
pub trait Scheduled {
    /// The admission class and dequeue lane for this item.
    fn priority(&self) -> Priority {
        Priority::Interactive
    }

    /// Whether the item is still worth executing, re-evaluated every time
    /// the queue considers handing it out.
    fn disposition(&self) -> Disposition {
        Disposition::Live
    }
}

/// Why a non-blocking push was refused. The item is handed back so the
/// caller can report it (or retry) without cloning.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue (or the item's priority class) is at capacity.
    Full(T),
    /// The queue is closed to new items.
    Closed(T),
}

struct QueueState<T> {
    /// One FIFO lane per [`Priority`] class, indexed by `priority as usize`.
    lanes: [VecDeque<T>; NUM_PRIORITIES],
    len: usize,
    closed: bool,
    /// Items ever successfully pushed, counted inside the critical section
    /// so acceptance and enqueueing are one atomic step (a consumer can
    /// never observe an item whose acceptance is not yet counted).
    pushed: u64,
}

impl<T> QueueState<T> {
    // lint: allow_fn(index) - lane index comes from Priority as usize, always < NUM_PRIORITIES (the lanes array length)
    fn has_space(&self, class: usize, total_capacity: usize, class_caps: &[usize; NUM_PRIORITIES]) -> bool {
        self.len < total_capacity && self.lanes[class].len() < class_caps[class]
    }
}

/// Bounded multi-producer multi-consumer queue with priority lanes.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    class_caps: [usize; NUM_PRIORITIES],
}

impl<T: Scheduled> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items, with every
    /// priority class allowed to fill the whole queue.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_class_caps(capacity, [capacity; NUM_PRIORITIES])
    }

    /// Creates a queue holding at most `capacity` items in total, with
    /// `class_caps[p]` bounding how many items of priority class `p` may
    /// queue at once (indexed by `Priority as usize`). Caps are clamped to
    /// `1..=capacity`.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_class_caps(capacity: usize, class_caps: [usize; NUM_PRIORITIES]) -> Self {
        // lint: allow(panic) - documented constructor contract ("# Panics"): a zero capacity is a caller bug
        assert!(capacity > 0, "queue capacity must be at least 1");
        let class_caps = class_caps.map(|cap| cap.clamp(1, capacity));
        Self {
            state: Mutex::new(QueueState {
                lanes: std::array::from_fn(|_| VecDeque::new()),
                len: 0,
                closed: false,
                pushed: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            class_caps,
        }
    }

    /// Total items ever accepted (successfully pushed), updated atomically
    /// with the enqueue itself.
    pub fn total_pushed(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).pushed
    }

    /// The maximum number of queued items across all classes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The per-class admission caps, indexed by `Priority as usize`.
    pub fn class_caps(&self) -> [usize; NUM_PRIORITIES] {
        self.class_caps
    }

    /// Current queue depth across all classes.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).len
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    /// Admission-controlled push: never blocks, refusing with
    /// [`TryPushError::Full`] when either the queue or the item's priority
    /// class is at capacity, or [`TryPushError::Closed`] after shutdown
    /// began.
    // lint: allow_fn(index) - lane index comes from Priority as usize, always < NUM_PRIORITIES (the lanes array length)
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let class = item.priority() as usize;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if !state.has_space(class, self.capacity, &self.class_caps) {
            return Err(TryPushError::Full(item));
        }
        state.lanes[class].push_back(item);
        state.len += 1;
        state.pushed += 1;
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits until both the queue and the item's class have
    /// space. Returns the item back as `Err` if the queue closed before
    /// space opened up.
    // lint: allow_fn(index) - lane index comes from Priority as usize, always < NUM_PRIORITIES (the lanes array length)
    pub fn push(&self, item: T) -> Result<(), T> {
        let class = item.priority() as usize;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.closed {
                return Err(item);
            }
            if state.has_space(class, self.capacity, &self.class_caps) {
                state.lanes[class].push_back(item);
                state.len += 1;
                state.pushed += 1;
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pops up to `max` *live* items into `out`, highest priority class
    /// first (FIFO within a class), blocking until at least one item is
    /// available. Items whose [`Scheduled::disposition`] has gone non-live
    /// are shed into `dropped` instead — they do not count toward `max`, and
    /// the consumer must account for them (both vectors are cleared first).
    ///
    /// Returns `false` — with both vectors empty — only once the queue is
    /// closed *and* fully drained, so every accepted item is handed to
    /// exactly one consumer (as work or as shed) before workers stop. A
    /// `true` return can carry an empty `out` when the drain encountered
    /// only dead items; callers should account `dropped` and loop.
    // lint: allow_fn(index) - lane index comes from Priority as usize, always < NUM_PRIORITIES (the lanes array length)
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>, dropped: &mut Vec<(T, Disposition)>) -> bool {
        out.clear();
        dropped.clear();
        let max = max.max(1);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.len == 0 {
            if state.closed {
                return false;
            }
            state = self.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        for lane in 0..NUM_PRIORITIES {
            while out.len() < max {
                let Some(item) = state.lanes[lane].pop_front() else { break };
                state.len -= 1;
                match item.disposition() {
                    Disposition::Live => out.push(item),
                    disposition => dropped.push((item, disposition)),
                }
            }
        }
        let more_left = state.len > 0;
        drop(state);
        // Wake every blocked submitter (multiple slots just freed), and one
        // more worker if items remain.
        self.not_full.notify_all();
        if more_left {
            self.not_empty.notify_one();
        }
        true
    }

    /// Closes the queue: subsequent pushes fail, blocked pushers wake with
    /// their item handed back, and consumers drain the backlog before
    /// observing closure.
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // Plain payloads schedule as interactive and always-live, reproducing
    // the classic FIFO queue.
    impl Scheduled for i32 {}
    impl Scheduled for &str {}

    /// A test item with explicit class and disposition.
    #[derive(Debug, PartialEq)]
    struct Item(i32, Priority, Disposition);

    impl Scheduled for Item {
        fn priority(&self) -> Priority {
            self.1
        }

        fn disposition(&self) -> Disposition {
            self.2
        }
    }

    #[test]
    fn try_push_rejects_at_capacity_and_after_close() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(matches!(q.try_push(3), Err(TryPushError::Full(3))));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2, "rejected pushes must not count as accepted");
        q.close();
        assert!(matches!(q.try_push(4), Err(TryPushError::Closed(4))));
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn pop_batch_drains_in_fifo_order_up_to_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        let mut dropped = Vec::new();
        assert!(q.pop_batch(3, &mut out, &mut dropped));
        assert_eq!(out, vec![0, 1, 2]);
        assert!(q.pop_batch(3, &mut out, &mut dropped));
        assert_eq!(out, vec![3, 4]);
        assert!(q.is_empty());
        assert!(dropped.is_empty());
    }

    #[test]
    fn close_lets_consumers_drain_then_stop() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        let mut out = Vec::new();
        let mut dropped = Vec::new();
        assert!(q.pop_batch(1, &mut out, &mut dropped));
        assert_eq!(out, vec!["a"]);
        assert!(q.pop_batch(8, &mut out, &mut dropped));
        assert_eq!(out, vec!["b"]);
        assert!(!q.pop_batch(1, &mut out, &mut dropped));
        assert!(out.is_empty());
        assert!(q.is_closed());
    }

    #[test]
    fn blocking_push_waits_for_space_and_errors_on_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0i32).unwrap();

        // A consumer that frees one slot after a beat.
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                #[allow(clippy::disallowed_methods)] // test-only beat to let the other thread block
                std::thread::sleep(std::time::Duration::from_millis(20));
                let mut out = Vec::new();
                let mut dropped = Vec::new();
                assert!(q.pop_batch(1, &mut out, &mut dropped));
                out
            })
        };
        // Blocks until the consumer drains, then succeeds.
        q.push(1i32).unwrap();
        assert_eq!(consumer.join().unwrap(), vec![0]);

        // A pusher blocked at close time gets its item back.
        let blocked = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2i32))
        };
        #[allow(clippy::disallowed_methods)] // test-only beat to let the other thread block
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(blocked.join().unwrap(), Err(2));
    }

    #[test]
    fn higher_priority_classes_drain_first_fifo_within_class() {
        let q = BoundedQueue::new(8);
        q.try_push(Item(1, Priority::BestEffort, Disposition::Live)).unwrap();
        q.try_push(Item(2, Priority::Interactive, Disposition::Live)).unwrap();
        q.try_push(Item(3, Priority::Batch, Disposition::Live)).unwrap();
        q.try_push(Item(4, Priority::Interactive, Disposition::Live)).unwrap();

        let mut out = Vec::new();
        let mut dropped = Vec::new();
        assert!(q.pop_batch(8, &mut out, &mut dropped));
        assert_eq!(out.iter().map(|item| item.0).collect::<Vec<_>>(), vec![2, 4, 3, 1]);
        assert!(dropped.is_empty());
    }

    #[test]
    fn class_caps_gate_admission_without_starving_other_classes() {
        let q = BoundedQueue::with_class_caps(4, [4, 4, 2]);
        q.try_push(Item(1, Priority::BestEffort, Disposition::Live)).unwrap();
        q.try_push(Item(2, Priority::BestEffort, Disposition::Live)).unwrap();
        // Best-effort lane is at its cap even though the queue has space.
        assert!(matches!(
            q.try_push(Item(3, Priority::BestEffort, Disposition::Live)),
            Err(TryPushError::Full(Item(3, _, _)))
        ));
        // Interactive traffic still gets the remaining total capacity.
        q.try_push(Item(4, Priority::Interactive, Disposition::Live)).unwrap();
        q.try_push(Item(5, Priority::Interactive, Disposition::Live)).unwrap();
        assert!(matches!(
            q.try_push(Item(6, Priority::Interactive, Disposition::Live)),
            Err(TryPushError::Full(Item(6, _, _)))
        ));
        assert_eq!(q.total_pushed(), 4);
    }

    #[test]
    fn dead_items_are_shed_at_dequeue_and_dont_count_toward_max() {
        let q = BoundedQueue::new(8);
        q.try_push(Item(1, Priority::Interactive, Disposition::Expired)).unwrap();
        q.try_push(Item(2, Priority::Interactive, Disposition::Live)).unwrap();
        q.try_push(Item(3, Priority::Interactive, Disposition::Abandoned)).unwrap();
        q.try_push(Item(4, Priority::Interactive, Disposition::Live)).unwrap();

        let mut out = Vec::new();
        let mut dropped = Vec::new();
        assert!(q.pop_batch(2, &mut out, &mut dropped));
        assert_eq!(out.iter().map(|item| item.0).collect::<Vec<_>>(), vec![2, 4]);
        assert_eq!(
            dropped.iter().map(|(item, d)| (item.0, *d)).collect::<Vec<_>>(),
            vec![(1, Disposition::Expired), (3, Disposition::Abandoned)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn a_batch_of_only_dead_items_still_returns_true() {
        let q = BoundedQueue::new(4);
        q.try_push(Item(1, Priority::Batch, Disposition::Abandoned)).unwrap();
        let mut out = Vec::new();
        let mut dropped = Vec::new();
        assert!(q.pop_batch(4, &mut out, &mut dropped), "shed-only drains still count as progress");
        assert!(out.is_empty());
        assert_eq!(dropped.len(), 1);
        q.close();
        assert!(!q.pop_batch(4, &mut out, &mut dropped));
    }
}
