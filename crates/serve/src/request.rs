//! Per-request lifecycle metadata: priority classes, deadlines, and the
//! submit-time options that carry them.
//!
//! Every submission to the [`Server`](crate::Server) may carry a
//! [`Priority`] (which of the queue's admission classes it competes in and
//! how early workers pick it up) and an optional [`Deadline`] (a wall-clock
//! point after which the answer is worthless). The server uses both at
//! *dequeue* time: expired requests are shed before wasting a worker cycle,
//! and requests whose remaining budget cannot afford the full model walk
//! are routed down the degradation ladder
//! ([`DegradePolicy`](crate::DegradePolicy)).

use std::time::{Duration, Instant};

/// Scheduling class of a request.
///
/// Workers always drain the highest non-empty class first (FIFO within a
/// class), and each class has its own admission cap inside the bounded
/// queue, so a flood of background traffic can neither starve nor evict
/// interactive requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive traffic: served first, may occupy the whole
    /// queue. The default — unannotated submissions behave exactly like
    /// the pre-priority server.
    #[default]
    Interactive = 0,
    /// Throughput traffic (plan enumeration sweeps, refresh jobs): served
    /// after interactive work.
    Batch = 1,
    /// Scavenger traffic: served only when nothing better is queued, and
    /// admitted only into its configured share of the queue
    /// ([`ServeConfig::best_effort_queue_share`](crate::ServeConfig::best_effort_queue_share)).
    BestEffort = 2,
}

/// Number of [`Priority`] classes (the valid `as usize` range).
pub(crate) const NUM_PRIORITIES: usize = 3;

impl Priority {
    /// All classes, highest priority first.
    pub const ALL: [Priority; NUM_PRIORITIES] = [Priority::Interactive, Priority::Batch, Priority::BestEffort];

    /// Stable lowercase label, convenient for metrics and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::BestEffort => "best_effort",
        }
    }

    /// Parses the label written by [`Priority::label`] — the form the
    /// network front end accepts in its `X-Naru-Priority` header (the
    /// hyphenated spelling `best-effort` is accepted as an alias).
    pub fn from_label(label: &str) -> Option<Priority> {
        match label {
            "interactive" => Some(Priority::Interactive),
            "batch" => Some(Priority::Batch),
            "best_effort" | "best-effort" => Some(Priority::BestEffort),
            _ => None,
        }
    }
}

/// A wall-clock point after which a request's answer is worthless.
///
/// Deadlines are checked when a worker dequeues the request: an expired
/// request is *shed* — answered with
/// [`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded)
/// without ever running the estimator — and a request whose remaining
/// budget is too small for the full model walk is degraded instead
/// (see [`DegradePolicy`](crate::DegradePolicy)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Self { at: Instant::now() + budget }
    }

    /// A deadline at an absolute instant.
    pub fn at(at: Instant) -> Self {
        Self { at }
    }

    /// The absolute expiry instant.
    pub fn instant(&self) -> Instant {
        self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Whether the deadline has passed.
    pub fn is_expired(&self) -> bool {
        self.at <= Instant::now()
    }
}

/// Per-submission scheduling options: the priority class and an optional
/// deadline. The default (`Interactive`, no deadline) reproduces the
/// plain `submit`/`try_submit` behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubmitOptions {
    /// Admission class and dequeue priority.
    pub priority: Priority,
    /// Optional expiry; `None` means the request waits as long as it takes.
    pub deadline: Option<Deadline>,
}

impl SubmitOptions {
    /// Interactive, no deadline (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Shorthand for a given priority class with no deadline.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Attaches an absolute deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a deadline `budget` from now.
    pub fn deadline_within(self, budget: Duration) -> Self {
        self.with_deadline(Deadline::within(budget))
    }

    /// An [`Priority::Interactive`] submission.
    pub fn interactive() -> Self {
        Self::new().with_priority(Priority::Interactive)
    }

    /// A [`Priority::Batch`] submission.
    pub fn batch() -> Self {
        Self::new().with_priority(Priority::Batch)
    }

    /// A [`Priority::BestEffort`] submission.
    pub fn best_effort() -> Self {
        Self::new().with_priority(Priority::BestEffort)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_and_labels() {
        assert!(Priority::Interactive < Priority::Batch);
        assert!(Priority::Batch < Priority::BestEffort);
        assert_eq!(Priority::default(), Priority::Interactive);
        assert_eq!(Priority::ALL.map(|p| p.label()), ["interactive", "batch", "best_effort"]);
    }

    #[test]
    fn deadlines_expire_and_report_remaining() {
        let generous = Deadline::within(Duration::from_secs(3600));
        assert!(!generous.is_expired());
        assert!(generous.remaining() > Duration::from_secs(3000));

        let expired = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(expired.is_expired());
        assert_eq!(expired.remaining(), Duration::ZERO);
    }

    #[test]
    fn submit_options_compose() {
        let opts = SubmitOptions::best_effort().deadline_within(Duration::from_secs(1));
        assert_eq!(opts.priority, Priority::BestEffort);
        assert!(opts.deadline.unwrap().remaining() <= Duration::from_secs(1));
        assert_eq!(SubmitOptions::default().priority, Priority::Interactive);
        assert_eq!(SubmitOptions::default().deadline, None);
        assert_eq!(SubmitOptions::batch().priority, Priority::Batch);
    }
}
