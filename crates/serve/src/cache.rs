//! The predicate-keyed estimate cache.
//!
//! Production estimation traffic is repetitive: plan enumeration re-costs
//! the same predicates, dashboards re-issue the same filters, and skewed
//! workloads concentrate on a few hot queries. Because estimation here is
//! deterministic (sessions re-seed per query), a cached answer is
//! *bit-identical* to recomputing it — so the server can consult a cache
//! before spending queue capacity and model time.
//!
//! Keys are [`QueryKey`]s: order-normalized compiled constraint vectors, so
//! `a=1 AND b<5` and `b<5 AND a=1` share an entry. The cache is sharded —
//! each shard is an independent `Mutex<HashMap + FIFO>` — so concurrent
//! submitters rarely contend on the same lock. Eviction is FIFO per shard,
//! bounded by the configured total capacity. Hit / miss / eviction counters
//! are lock-free and surface in
//! [`MetricsSnapshot`](crate::stats::MetricsSnapshot).

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use naru_query::{Estimate, Provenance, QueryKey};

/// One independently locked slice of the cache.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<QueryKey, Estimate>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<QueryKey>,
}

/// A bounded, sharded, predicate-keyed estimate cache.
#[derive(Debug)]
pub struct EstimateCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl EstimateCache {
    /// Builds a cache holding at most (roughly) `capacity` entries spread
    /// over `num_shards` independent locks. Both are clamped to at least 1;
    /// the per-shard bound is `ceil(capacity / num_shards)`, so the total
    /// never exceeds `capacity` rounded up to a multiple of the shard count.
    pub fn new(capacity: usize, num_shards: usize) -> Self {
        let capacity = capacity.max(1);
        let num_shards = num_shards.max(1).min(capacity);
        let per_shard_capacity = capacity.div_ceil(num_shards);
        let shards = (0..num_shards).map(|_| Mutex::new(Shard::default())).collect();
        Self {
            shards,
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    // lint: allow_fn(index) - shard index is hash % shards.len(), in bounds for any non-empty shard vec
    fn shard(&self, key: &QueryKey) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Looks `key` up. A hit returns the stored estimate re-tagged
    /// [`Provenance::CacheHit`] (the stored copy keeps the provenance of
    /// the tier that originally computed it); every call bumps exactly one
    /// of the hit / miss counters.
    pub fn get(&self, key: &QueryKey) -> Option<Estimate> {
        let shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        match shard.entries.get(key) {
            Some(estimate) => {
                let found = estimate.clone().with_provenance(Provenance::CacheHit);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(found)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `estimate` under `key`, evicting the shard's oldest entry if
    /// it is full. Re-inserting an existing key refreshes the value without
    /// growing the shard.
    pub fn insert(&self, key: QueryKey, estimate: Estimate) {
        let mut evicted = false;
        {
            let mut shard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
            if shard.entries.insert(key.clone(), estimate).is_none() {
                shard.order.push_back(key);
                if shard.order.len() > self.per_shard_capacity {
                    if let Some(oldest) = shard.order.pop_front() {
                        shard.entries.remove(&oldest);
                        evicted = true;
                    }
                }
            }
        }
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Entries currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of independent shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_query::{Predicate, Query};
    use std::time::Duration;

    fn key(query: &Query) -> QueryKey {
        QueryKey::new(query, 4).unwrap()
    }

    fn estimate(selectivity: f64) -> Estimate {
        Estimate::closed_form(selectivity, 1000, Duration::from_micros(5))
    }

    #[test]
    fn hit_returns_the_stored_estimate_retagged() {
        let cache = EstimateCache::new(8, 2);
        let q = Query::new(vec![Predicate::eq(0, 1), Predicate::le(2, 9)]);
        assert!(cache.get(&key(&q)).is_none());
        cache.insert(key(&q), estimate(0.25).with_provenance(Provenance::Tier1Sketch));

        let hit = cache.get(&key(&q)).expect("cached");
        assert_eq!(hit.selectivity, 0.25);
        assert_eq!(hit.provenance, Provenance::CacheHit);
        // Order-normalized key: the reversed predicate list hits too.
        let reversed = Query::new(vec![Predicate::le(2, 9), Predicate::eq(0, 1)]);
        assert!(cache.get(&key(&reversed)).is_some());
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn fifo_eviction_bounds_each_shard() {
        let cache = EstimateCache::new(4, 1);
        for v in 0..6u32 {
            let q = Query::new(vec![Predicate::eq(0, v)]);
            cache.insert(key(&q), estimate(f64::from(v) / 10.0));
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.evictions(), 2);
        // The oldest entries are the evicted ones.
        assert!(cache.get(&key(&Query::new(vec![Predicate::eq(0, 0)]))).is_none());
        assert!(cache.get(&key(&Query::new(vec![Predicate::eq(0, 5)]))).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let cache = EstimateCache::new(2, 1);
        let q = Query::new(vec![Predicate::ge(1, 3)]);
        cache.insert(key(&q), estimate(0.5));
        cache.insert(key(&q), estimate(0.75));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.get(&key(&q)).unwrap().selectivity, 0.75);
    }

    #[test]
    fn capacity_and_shards_are_clamped() {
        let cache = EstimateCache::new(0, 0);
        assert_eq!(cache.num_shards(), 1);
        assert!(cache.is_empty());
        let q = Query::all();
        cache.insert(key(&q), estimate(1.0));
        assert_eq!(cache.len(), 1);
        // More shards than capacity collapses to one entry per shard.
        let tiny = EstimateCache::new(2, 16);
        assert_eq!(tiny.num_shards(), 2);
    }
}
