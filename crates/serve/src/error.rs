//! Typed serving failures.

use std::fmt;

use naru_query::EstimateError;

/// Why the serving layer could not answer a request.
///
/// The first three variants are *server* conditions — the request never ran
/// (or its worker died). [`ServeError::Estimate`] means the request was
/// accepted, scheduled, and executed, but the estimator itself rejected the
/// query; the inner [`EstimateError`] carries the per-query diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control refused the request: the bounded queue is at
    /// capacity. Back off and retry, or use the blocking
    /// [`Server::submit`](crate::Server::submit).
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The server is shutting down and no longer accepts requests.
    /// Already-accepted requests still drain to completion.
    ShuttingDown,
    /// The worker that owned the request terminated before responding.
    /// The request's outcome is unknown.
    WorkerLost,
    /// The estimator panicked while executing this request. The panic is
    /// contained: the worker survives and keeps serving other requests.
    Panicked,
    /// The request executed but the estimator rejected the query.
    Estimate(EstimateError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { capacity } => {
                write!(f, "server overloaded: request queue at capacity ({capacity})")
            }
            Self::ShuttingDown => write!(f, "server is shutting down"),
            Self::WorkerLost => write!(f, "worker terminated before responding"),
            Self::Panicked => write!(f, "estimator panicked while executing the request"),
            Self::Estimate(err) => write!(f, "estimation failed: {err}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Estimate(err) => Some(err),
            _ => None,
        }
    }
}

impl From<EstimateError> for ServeError {
    fn from(err: EstimateError) -> Self {
        Self::Estimate(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        assert!(ServeError::Overloaded { capacity: 64 }.to_string().contains("64"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting down"));
        assert!(ServeError::WorkerLost.to_string().contains("worker"));
        assert!(ServeError::Panicked.to_string().contains("panicked"));
        let wrapped = ServeError::from(EstimateError::ColumnOutOfRange { column: 7, num_columns: 3 });
        assert!(wrapped.to_string().contains("column 7"));
    }

    #[test]
    fn estimate_errors_expose_their_source() {
        use std::error::Error;
        let wrapped = ServeError::from(EstimateError::EmptyDomain { column: 1 });
        assert!(wrapped.source().is_some());
        assert!(ServeError::ShuttingDown.source().is_none());
    }
}
