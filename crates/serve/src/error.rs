//! Typed serving failures.

use std::fmt;

use naru_query::EstimateError;

/// Why the serving layer could not answer a request.
///
/// The server-condition variants mean the request never ran (or its worker
/// died). [`ServeError::Estimate`] means the request was accepted,
/// scheduled, and executed, but the estimator itself rejected the query;
/// the inner [`EstimateError`] carries the per-query diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control refused the request: the bounded queue (or the
    /// request's priority class) is at capacity. Back off and retry, or
    /// use the blocking [`Server::submit`](crate::Server::submit).
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The server is shutting down and no longer accepts requests.
    /// Already-accepted requests still drain to completion.
    ShuttingDown,
    /// The worker that owned the request terminated before responding.
    /// The request's outcome is unknown.
    WorkerLost,
    /// The estimator panicked while executing this request. The panic is
    /// contained: the worker survives and keeps serving other requests.
    Panicked,
    /// The request's [`Deadline`](crate::Deadline) passed before a worker
    /// reached it; it was shed without executing the estimator.
    DeadlineExceeded,
    /// The estimator produced a nonsensical payload (non-finite or
    /// out-of-range selectivity). The server refuses to serve or cache it.
    InvalidEstimate,
    /// [`Server::start`](crate::Server::start) rejected the configuration
    /// before spawning anything.
    Config(ConfigError),
    /// The request executed but the estimator rejected the query.
    Estimate(EstimateError),
}

/// A [`ServeConfig`](crate::ServeConfig) value the server refuses to run
/// with. Returned by [`Server::start`](crate::Server::start) wrapped in
/// [`ServeError::Config`] — invalid configs fail fast instead of being
/// silently clamped into something the operator did not ask for.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `num_workers` is zero: nothing would ever drain the queue.
    ZeroWorkers,
    /// `queue_capacity` is zero: no request could ever be admitted.
    ZeroQueueCapacity,
    /// `max_batch` is zero: workers could never dequeue anything.
    ZeroMaxBatch,
    /// Caching is enabled but `cache_shards` is zero.
    ZeroCacheShards,
    /// More cache shards than cache entries: some shards could never hold
    /// a single entry.
    CacheShardsExceedCapacity {
        /// The configured shard count.
        shards: usize,
        /// The configured total entry capacity.
        capacity: usize,
    },
    /// A per-class queue share is outside `(0, 1]`.
    InvalidShare {
        /// Which share knob was out of range.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fault-injection probability is outside `[0, 1]` or non-finite.
    InvalidProbability {
        /// Which probability knob was out of range.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A [`DegradePolicy`](crate::DegradePolicy) sample count is zero: the
    /// degraded rung could never produce an estimate.
    ZeroDegradeSamples,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroWorkers => write!(f, "num_workers must be at least 1"),
            Self::ZeroQueueCapacity => write!(f, "queue_capacity must be at least 1"),
            Self::ZeroMaxBatch => write!(f, "max_batch must be at least 1"),
            Self::ZeroCacheShards => {
                write!(f, "cache_shards must be at least 1 when caching is enabled")
            }
            Self::CacheShardsExceedCapacity { shards, capacity } => {
                write!(f, "cache_shards ({shards}) must not exceed cache_capacity ({capacity})")
            }
            Self::InvalidShare { name, value } => {
                write!(f, "{name} must be in (0, 1], got {value}")
            }
            Self::InvalidProbability { name, value } => {
                write!(f, "{name} must be a probability in [0, 1], got {value}")
            }
            Self::ZeroDegradeSamples => {
                write!(f, "degrade policy sample counts must be at least 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for ServeError {
    fn from(err: ConfigError) -> Self {
        Self::Config(err)
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { capacity } => {
                write!(f, "server overloaded: request queue at capacity ({capacity})")
            }
            Self::ShuttingDown => write!(f, "server is shutting down"),
            Self::WorkerLost => write!(f, "worker terminated before responding"),
            Self::Panicked => write!(f, "estimator panicked while executing the request"),
            Self::DeadlineExceeded => {
                write!(f, "deadline expired before the request was executed")
            }
            Self::InvalidEstimate => {
                write!(f, "estimator produced a non-finite or out-of-range selectivity")
            }
            Self::Config(err) => write!(f, "invalid serve configuration: {err}"),
            Self::Estimate(err) => write!(f, "estimation failed: {err}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Estimate(err) => Some(err),
            Self::Config(err) => Some(err),
            Self::Overloaded { .. }
            | Self::ShuttingDown
            | Self::WorkerLost
            | Self::Panicked
            | Self::DeadlineExceeded
            | Self::InvalidEstimate => None,
        }
    }
}

impl From<EstimateError> for ServeError {
    fn from(err: EstimateError) -> Self {
        Self::Estimate(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        assert!(ServeError::Overloaded { capacity: 64 }.to_string().contains("64"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting down"));
        assert!(ServeError::WorkerLost.to_string().contains("worker"));
        assert!(ServeError::Panicked.to_string().contains("panicked"));
        let wrapped = ServeError::from(EstimateError::ColumnOutOfRange { column: 7, num_columns: 3 });
        assert!(wrapped.to_string().contains("column 7"));
        assert!(ServeError::DeadlineExceeded.to_string().contains("deadline"));
        assert!(ServeError::InvalidEstimate.to_string().contains("selectivity"));
    }

    #[test]
    fn config_errors_display_the_offending_knob() {
        let err = ServeError::from(ConfigError::CacheShardsExceedCapacity { shards: 16, capacity: 4 });
        assert!(err.to_string().contains("16"));
        assert!(err.to_string().contains("4"));
        let share = ConfigError::InvalidShare { name: "batch_queue_share", value: 1.5 };
        assert!(share.to_string().contains("batch_queue_share"));
        assert!(share.to_string().contains("1.5"));
        use std::error::Error;
        assert!(ServeError::Config(ConfigError::ZeroWorkers).source().is_some());
    }

    #[test]
    fn estimate_errors_expose_their_source() {
        use std::error::Error;
        let wrapped = ServeError::from(EstimateError::EmptyDomain { column: 1 });
        assert!(wrapped.source().is_some());
        assert!(ServeError::ShuttingDown.source().is_none());
    }
}
