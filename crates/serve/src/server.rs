//! The worker-pool server: one shared [`Engine`], N workers with a
//! [`Session`] each, fed by the bounded request queue.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use naru_core::{Engine, Session};
use naru_query::{Estimate, Query};

use crate::error::ServeError;
use crate::queue::{BoundedQueue, TryPushError};
use crate::stats::{Metrics, MetricsSnapshot, ServeStats};

/// Worker-pool sizing and scheduling knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning one [`Session`]. Clamped to at least 1.
    pub num_workers: usize,
    /// Bounded queue capacity; `try_submit` rejects beyond it. Clamped to
    /// at least 1.
    pub queue_capacity: usize,
    /// Most requests a worker drains into one `estimate_batch` call
    /// (opportunistic micro-batching). Clamped to at least 1; 1 disables
    /// batching.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
        Self { num_workers: workers, queue_capacity: 256, max_batch: 16 }
    }
}

impl ServeConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, num_workers: usize) -> Self {
        self.num_workers = num_workers;
        self
    }

    /// Sets the queue capacity.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets the micro-batch limit.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }
}

/// A successful response: the [`Estimate`] plus how the request moved
/// through the server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedEstimate {
    /// The estimator's answer, identical to what a direct [`Session`] call
    /// with the same engine knobs would return.
    pub estimate: Estimate,
    /// Queue-wait / execution / placement diagnostics.
    pub stats: ServeStats,
}

type Response = Result<ServedEstimate, ServeError>;

/// One queued unit of work: the query plus its reply channel.
struct Request {
    query: Query,
    submitted_at: Instant,
    reply: SyncSender<Response>,
}

impl Request {
    fn new(query: Query) -> (Self, Ticket) {
        let (reply, rx) = sync_channel(1);
        (Self { query, submitted_at: Instant::now(), reply }, Ticket { rx })
    }
}

/// A handle to one in-flight request. [`Ticket::wait`] blocks until the
/// owning worker responds; dropping the ticket abandons the response (the
/// request still executes).
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Response>,
}

impl Ticket {
    /// Blocks until the request completes.
    pub fn wait(self) -> Response {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }
}

/// A running worker pool over one shared [`Engine`].
///
/// `Server` is `Sync`: submit from any number of client threads. Requests
/// flow through a bounded FIFO queue into per-worker [`Session`]s, so every
/// estimate is bit-for-bit identical to a direct sequential `Session` call
/// (sessions re-seed per query), regardless of which worker runs it or how
/// requests were batched.
pub struct Server {
    queue: Arc<BoundedQueue<Request>>,
    metrics: Arc<Metrics>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawns the worker pool. Each worker opens its own [`Session`] from
    /// `engine` (inheriting the engine's sample-count and seed defaults)
    /// and parks on the queue until work or shutdown arrives.
    pub fn start(engine: Engine, config: ServeConfig) -> Self {
        let num_workers = config.num_workers.max(1);
        let max_batch = config.max_batch.max(1);
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity.max(1)));
        let metrics = Arc::new(Metrics::default());
        let workers = (0..num_workers)
            .map(|id| {
                let session = engine.session();
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("naru-serve-{id}"))
                    .spawn(move || {
                        // Estimation panics are contained inside the loop;
                        // if the worker still dies (poisoned lock, bug in
                        // the loop itself), fail fast: close the queue so
                        // submitters stop being accepted into a pool that
                        // silently shrank, then fail whatever is still
                        // queued so no ticket hangs. Surviving workers race
                        // this drain and win some requests — fine, each
                        // request gets exactly one response either way. The
                        // drain is itself guarded: if the queue lock is the
                        // thing that poisoned, tickets resolve to
                        // WorkerLost when the server (and queue) drop.
                        if catch_unwind(AssertUnwindSafe(|| worker_loop(id, session, &queue, &metrics, max_batch)))
                            .is_err()
                        {
                            let _ = catch_unwind(AssertUnwindSafe(|| {
                                queue.close();
                                let mut orphans: Vec<Request> = Vec::new();
                                while queue.pop_batch(usize::MAX, &mut orphans) {
                                    for request in orphans.drain(..) {
                                        metrics.failed.fetch_add(1, Ordering::Relaxed);
                                        let _ = request.reply.send(Err(ServeError::WorkerLost));
                                    }
                                }
                            }));
                        }
                    })
                    .expect("failed to spawn serve worker")
            })
            .collect();
        Self { queue, metrics, workers }
    }

    /// Admission-controlled submit: rejects with
    /// [`ServeError::Overloaded`] when the queue is full instead of
    /// blocking the caller.
    pub fn try_submit(&self, query: Query) -> Result<Ticket, ServeError> {
        let (request, ticket) = Request::new(query);
        // Acceptance is counted by the queue itself, inside its critical
        // section, so a request can never be dequeued (let alone served)
        // before it is counted.
        match self.queue.try_push(request) {
            Ok(()) => Ok(ticket),
            Err(TryPushError::Full(_)) => {
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded { capacity: self.queue.capacity() })
            }
            Err(TryPushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Blocking submit: waits for queue space. Fails only once shutdown has
    /// begun.
    pub fn submit(&self, query: Query) -> Result<Ticket, ServeError> {
        let (request, ticket) = Request::new(query);
        match self.queue.push(request) {
            Ok(()) => Ok(ticket),
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }

    /// Convenience round trip: blocking submit, then wait.
    pub fn estimate(&self, query: &Query) -> Result<ServedEstimate, ServeError> {
        self.submit(query.clone())?.wait()
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Capacity of the admission queue.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Current queue depth (racy by nature; for monitoring).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// A point-in-time copy of the server counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        // Completions first, acceptance second: service implies prior
        // acceptance, so this read order guarantees
        // `completed() <= accepted` even against in-flight submitters.
        let mut snapshot = self.metrics.snapshot();
        snapshot.accepted = self.queue.total_pushed();
        snapshot
    }

    /// Begins shutdown without waiting: new submissions fail with
    /// [`ServeError::ShuttingDown`], while accepted requests keep draining.
    /// Call [`Server::shutdown`] (or drop the server) to also join the
    /// workers.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Graceful shutdown: stops admission, waits for the workers to drain
    /// every accepted request, joins them, and returns the final counters.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.metrics()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Same drain-then-join as `shutdown`, for servers dropped without
        // an explicit shutdown call (including on client panic unwind).
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One worker: park on the queue, drain up to `max_batch` requests, answer
/// them through a single `estimate_batch` call, repeat until the queue
/// closes and empties.
fn worker_loop(
    worker: usize,
    mut session: Session,
    queue: &BoundedQueue<Request>,
    metrics: &Metrics,
    max_batch: usize,
) {
    let mut batch: Vec<Request> = Vec::with_capacity(max_batch);
    let mut queries: Vec<Query> = Vec::with_capacity(max_batch);
    let mut replies: Vec<(Instant, SyncSender<Response>)> = Vec::with_capacity(max_batch);
    while queue.pop_batch(max_batch, &mut batch) {
        let dequeued_at = Instant::now();
        queries.clear();
        replies.clear();
        for request in batch.drain(..) {
            queries.push(request.query);
            replies.push((request.submitted_at, request.reply));
        }
        let batch_size = queries.len();
        // Contain estimator panics: a panicking density must not kill the
        // worker (stranding everything still queued). If the batch call
        // unwinds, fall back to one guarded call per query so only the
        // poisoning request(s) fail — the walk fully reinitializes the
        // session scratch per estimate, so reuse after a panic is safe.
        let results = match catch_unwind(AssertUnwindSafe(|| session.estimate_batch(&queries))) {
            Ok(results) => results.into_iter().map(Ok).collect::<Vec<_>>(),
            Err(_) => queries
                .iter()
                .map(|query| catch_unwind(AssertUnwindSafe(|| session.estimate(query))).map_err(|_| ()))
                .collect(),
        };
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        for ((submitted_at, reply), result) in replies.drain(..).zip(results) {
            let response = match result {
                Ok(Ok(estimate)) => {
                    metrics.served.fetch_add(1, Ordering::Relaxed);
                    let stats = ServeStats {
                        queue_wait: dequeued_at.saturating_duration_since(submitted_at),
                        execution: estimate.wall_time,
                        worker,
                        batch_size,
                    };
                    Ok(ServedEstimate { estimate, stats })
                }
                Ok(Err(err)) => {
                    metrics.failed.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::Estimate(err))
                }
                Err(()) => {
                    metrics.failed.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::Panicked)
                }
            };
            // The client may have dropped its ticket; that is not an error.
            let _ = reply.send(response);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_core::IndependentDensity;
    use naru_query::{EstimateError, Predicate};

    fn tiny_engine() -> Engine {
        Engine::new(IndependentDensity::uniform(&[8, 4]), 1_000).with_samples(64)
    }

    #[test]
    fn round_trip_matches_direct_session() {
        let engine = tiny_engine();
        let q = Query::new(vec![Predicate::le(0, 3), Predicate::ge(1, 1)]);
        let direct = engine.session().estimate(&q).unwrap();

        let server = Server::start(engine, ServeConfig::default().with_workers(2));
        let served = server.estimate(&q).unwrap();
        assert_eq!(served.estimate.selectivity, direct.selectivity);
        assert_eq!(served.estimate.live_paths, direct.live_paths);
        assert!(served.stats.worker < 2);
        assert!(served.stats.batch_size >= 1);

        let metrics = server.shutdown();
        assert_eq!(metrics.accepted, 1);
        assert_eq!(metrics.served, 1);
        assert_eq!(metrics.rejected, 0);
        assert_eq!(metrics.failed, 0);
    }

    #[test]
    fn estimator_rejections_come_back_typed() {
        let server = Server::start(tiny_engine(), ServeConfig::default().with_workers(1));
        let bad = Query::new(vec![Predicate::eq(9, 0)]);
        let err = server.estimate(&bad).unwrap_err();
        assert_eq!(err, ServeError::Estimate(EstimateError::ColumnOutOfRange { column: 9, num_columns: 2 }));
        // The worker survives a rejected query and keeps serving.
        assert!(server.estimate(&Query::all()).is_ok());
        let metrics = server.shutdown();
        assert_eq!(metrics.failed, 1);
        assert_eq!(metrics.served, 1);
    }

    #[test]
    fn submissions_fail_after_close_but_accepted_work_drains() {
        let engine = tiny_engine();
        let server = Server::start(engine, ServeConfig::default().with_workers(1).with_max_batch(4));
        let tickets: Vec<Ticket> = (0..6).map(|_| server.submit(Query::all()).unwrap()).collect();
        server.close();
        assert_eq!(server.try_submit(Query::all()).unwrap_err(), ServeError::ShuttingDown);
        assert_eq!(server.submit(Query::all()).unwrap_err(), ServeError::ShuttingDown);
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.accepted, 6);
        assert_eq!(metrics.completed(), 6);
    }

    #[test]
    fn config_knobs_are_clamped_sane() {
        let server = Server::start(tiny_engine(), ServeConfig { num_workers: 0, queue_capacity: 0, max_batch: 0 });
        assert_eq!(server.num_workers(), 1);
        assert_eq!(server.queue_capacity(), 1);
        assert!(server.estimate(&Query::all()).is_ok());
        server.shutdown();
    }
}
