//! The worker-pool server: one shared [`Engine`], N workers with a tiered
//! session each, fed by the bounded request queue, fronted by an optional
//! predicate-keyed estimate cache.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use naru_core::{Engine, TieredSession};
use naru_query::{Estimate, Provenance, Query, QueryKey};

use crate::cache::EstimateCache;
use crate::error::ServeError;
use crate::queue::{BoundedQueue, TryPushError};
use crate::stats::{Metrics, MetricsSnapshot, ServeStats};

/// Worker-pool sizing and scheduling knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning one [`Session`]. Clamped to at least 1.
    pub num_workers: usize,
    /// Bounded queue capacity; `try_submit` rejects beyond it. Clamped to
    /// at least 1.
    pub queue_capacity: usize,
    /// Most requests a worker drains into one `estimate_batch` call
    /// (opportunistic micro-batching). Clamped to at least 1; 1 disables
    /// batching.
    pub max_batch: usize,
    /// Total entries in the predicate-keyed estimate cache consulted before
    /// enqueueing. `0` (the default) disables the cache entirely: every
    /// request goes through admission control and a worker.
    pub cache_capacity: usize,
    /// Independent locks the cache is split across (ignored when the cache
    /// is disabled). Clamped to at least 1.
    pub cache_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
        Self { num_workers: workers, queue_capacity: 256, max_batch: 16, cache_capacity: 0, cache_shards: 8 }
    }
}

impl ServeConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, num_workers: usize) -> Self {
        self.num_workers = num_workers;
        self
    }

    /// Sets the queue capacity.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets the micro-batch limit.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the estimate-cache capacity (`0` disables the cache).
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Sets the estimate-cache shard count.
    pub fn with_cache_shards(mut self, cache_shards: usize) -> Self {
        self.cache_shards = cache_shards;
        self
    }
}

/// A successful response: the [`Estimate`] plus how the request moved
/// through the server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedEstimate {
    /// The estimator's answer, identical to what a direct [`Session`] call
    /// with the same engine knobs would return.
    pub estimate: Estimate,
    /// Queue-wait / execution / placement diagnostics.
    pub stats: ServeStats,
}

type Response = Result<ServedEstimate, ServeError>;

/// One queued unit of work: the query plus its reply channel. `key` is the
/// request's cache key, pre-computed at submit time so the worker can store
/// a successful answer without recompiling the query (absent when the cache
/// is off or the query failed to compile — the worker surfaces the error).
struct Request {
    query: Query,
    key: Option<QueryKey>,
    submitted_at: Instant,
    reply: SyncSender<Response>,
}

impl Request {
    fn new(query: Query, key: Option<QueryKey>) -> (Self, Ticket) {
        let (reply, rx) = sync_channel(1);
        (Self { query, key, submitted_at: Instant::now(), reply }, Ticket { inner: TicketInner::Pending(rx) })
    }
}

#[derive(Debug)]
enum TicketInner {
    /// Answered at submit time by the estimate cache.
    Ready(Box<Response>),
    /// In flight: a worker will reply on the channel.
    Pending(Receiver<Response>),
}

/// A handle to one in-flight request. [`Ticket::wait`] blocks until the
/// owning worker responds; dropping the ticket abandons the response (the
/// request still executes). Cache hits are answered at submit time, so
/// their tickets resolve without blocking.
#[derive(Debug)]
pub struct Ticket {
    inner: TicketInner,
}

impl Ticket {
    fn ready(response: Response) -> Self {
        Self { inner: TicketInner::Ready(Box::new(response)) }
    }

    /// Blocks until the request completes.
    pub fn wait(self) -> Response {
        match self.inner {
            TicketInner::Ready(response) => *response,
            TicketInner::Pending(rx) => rx.recv().unwrap_or(Err(ServeError::WorkerLost)),
        }
    }
}

/// A running worker pool over one shared [`Engine`].
///
/// `Server` is `Sync`: submit from any number of client threads. Requests
/// flow through a bounded FIFO queue into per-worker [`Session`]s, so every
/// estimate is bit-for-bit identical to a direct sequential `Session` call
/// (sessions re-seed per query), regardless of which worker runs it or how
/// requests were batched.
pub struct Server {
    queue: Arc<BoundedQueue<Request>>,
    metrics: Arc<Metrics>,
    cache: Option<Arc<EstimateCache>>,
    num_columns: usize,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawns the worker pool. Each worker opens its own tiered session
    /// from `engine` (inheriting the engine's sample-count / seed defaults
    /// and its statistics sidecar, if any) and parks on the queue until
    /// work or shutdown arrives.
    pub fn start(engine: Engine, config: ServeConfig) -> Self {
        let num_workers = config.num_workers.max(1);
        let max_batch = config.max_batch.max(1);
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity.max(1)));
        let metrics = Arc::new(Metrics::default());
        let cache = (config.cache_capacity > 0)
            .then(|| Arc::new(EstimateCache::new(config.cache_capacity, config.cache_shards)));
        let num_columns = engine.num_columns();
        let workers = (0..num_workers)
            .map(|id| {
                let session = engine.tiered_session();
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                let cache = cache.clone();
                std::thread::Builder::new()
                    .name(format!("naru-serve-{id}"))
                    .spawn(move || {
                        // Estimation panics are contained inside the loop;
                        // if the worker still dies (poisoned lock, bug in
                        // the loop itself), fail fast: close the queue so
                        // submitters stop being accepted into a pool that
                        // silently shrank, then fail whatever is still
                        // queued so no ticket hangs. Surviving workers race
                        // this drain and win some requests — fine, each
                        // request gets exactly one response either way. The
                        // drain is itself guarded: if the queue lock is the
                        // thing that poisoned, tickets resolve to
                        // WorkerLost when the server (and queue) drop.
                        if catch_unwind(AssertUnwindSafe(|| {
                            worker_loop(id, session, &queue, &metrics, cache.as_deref(), max_batch)
                        }))
                        .is_err()
                        {
                            let _ = catch_unwind(AssertUnwindSafe(|| {
                                queue.close();
                                let mut orphans: Vec<Request> = Vec::new();
                                while queue.pop_batch(usize::MAX, &mut orphans) {
                                    for request in orphans.drain(..) {
                                        metrics.failed.fetch_add(1, Ordering::Relaxed);
                                        let _ = request.reply.send(Err(ServeError::WorkerLost));
                                    }
                                }
                            }));
                        }
                    })
                    .expect("failed to spawn serve worker")
            })
            .collect();
        Self { queue, metrics, cache, num_columns, workers }
    }

    /// Consults the cache before enqueueing. `Err(ticket)` is a hit: the
    /// ticket is already resolved, no queue slot is consumed. `Ok(key)`
    /// means "enqueue, and store the answer under this key if present".
    ///
    /// Cache hits deliberately bypass admission control: they consume no
    /// queue capacity and do not count as `accepted` — only `cache_hits`
    /// moves. Un-compilable queries miss the cache (`key = None`) and flow
    /// to a worker so the error surfaces through the normal typed path.
    fn check_cache(&self, query: &Query) -> Result<Option<QueryKey>, Ticket> {
        let Some(cache) = &self.cache else {
            return Ok(None);
        };
        let Ok(key) = QueryKey::new(query, self.num_columns) else {
            return Ok(None);
        };
        match cache.get(&key) {
            Some(estimate) => {
                let stats = ServeStats {
                    queue_wait: Duration::ZERO,
                    execution: Duration::ZERO,
                    worker: usize::MAX,
                    batch_size: 0,
                };
                Err(Ticket::ready(Ok(ServedEstimate { estimate, stats })))
            }
            None => Ok(Some(key)),
        }
    }

    /// Admission-controlled submit: rejects with
    /// [`ServeError::Overloaded`] when the queue is full instead of
    /// blocking the caller. Cache hits resolve immediately and are never
    /// rejected.
    pub fn try_submit(&self, query: Query) -> Result<Ticket, ServeError> {
        let key = match self.check_cache(&query) {
            Ok(key) => key,
            Err(ticket) => return Ok(ticket),
        };
        let (request, ticket) = Request::new(query, key);
        // Acceptance is counted by the queue itself, inside its critical
        // section, so a request can never be dequeued (let alone served)
        // before it is counted.
        match self.queue.try_push(request) {
            Ok(()) => Ok(ticket),
            Err(TryPushError::Full(_)) => {
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded { capacity: self.queue.capacity() })
            }
            Err(TryPushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Blocking submit: waits for queue space. Fails only once shutdown has
    /// begun. Cache hits resolve immediately without waiting.
    pub fn submit(&self, query: Query) -> Result<Ticket, ServeError> {
        let key = match self.check_cache(&query) {
            Ok(key) => key,
            Err(ticket) => return Ok(ticket),
        };
        let (request, ticket) = Request::new(query, key);
        match self.queue.push(request) {
            Ok(()) => Ok(ticket),
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }

    /// Convenience round trip: blocking submit, then wait.
    pub fn estimate(&self, query: &Query) -> Result<ServedEstimate, ServeError> {
        self.submit(query.clone())?.wait()
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Capacity of the admission queue.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Current queue depth (racy by nature; for monitoring).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// A point-in-time copy of the server counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        // Completions first, acceptance second: service implies prior
        // acceptance, so this read order guarantees
        // `completed() <= accepted` even against in-flight submitters.
        let mut snapshot = self.metrics.snapshot();
        snapshot.accepted = self.queue.total_pushed();
        if let Some(cache) = &self.cache {
            snapshot.cache_hits = cache.hits();
            snapshot.cache_misses = cache.misses();
            snapshot.cache_evictions = cache.evictions();
        }
        snapshot
    }

    /// Entries currently in the estimate cache (`0` when disabled).
    pub fn cache_len(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.len())
    }

    /// Begins shutdown without waiting: new submissions fail with
    /// [`ServeError::ShuttingDown`], while accepted requests keep draining.
    /// Call [`Server::shutdown`] (or drop the server) to also join the
    /// workers.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Graceful shutdown: stops admission, waits for the workers to drain
    /// every accepted request, joins them, and returns the final counters.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.metrics()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Same drain-then-join as `shutdown`, for servers dropped without
        // an explicit shutdown call (including on client panic unwind).
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One worker: park on the queue, drain up to `max_batch` requests, answer
/// them through a single tiered `estimate_batch` call (fast tiers inline,
/// the model residual through the prefix-memoizing batch path), repeat
/// until the queue closes and empties. Successful answers whose request
/// carries a cache key are stored for future submitters.
fn worker_loop(
    worker: usize,
    mut session: TieredSession,
    queue: &BoundedQueue<Request>,
    metrics: &Metrics,
    cache: Option<&EstimateCache>,
    max_batch: usize,
) {
    let mut batch: Vec<Request> = Vec::with_capacity(max_batch);
    let mut queries: Vec<Query> = Vec::with_capacity(max_batch);
    let mut replies: Vec<(Instant, Option<QueryKey>, SyncSender<Response>)> = Vec::with_capacity(max_batch);
    while queue.pop_batch(max_batch, &mut batch) {
        let dequeued_at = Instant::now();
        queries.clear();
        replies.clear();
        for request in batch.drain(..) {
            queries.push(request.query);
            replies.push((request.submitted_at, request.key, request.reply));
        }
        let batch_size = queries.len();
        // Contain estimator panics: a panicking density must not kill the
        // worker (stranding everything still queued). If the batch call
        // unwinds, fall back to one guarded call per query so only the
        // poisoning request(s) fail — the walk fully reinitializes the
        // session scratch per estimate, so reuse after a panic is safe.
        let results = match catch_unwind(AssertUnwindSafe(|| session.estimate_batch(&queries))) {
            Ok(results) => results.into_iter().map(Ok).collect::<Vec<_>>(),
            Err(_) => queries
                .iter()
                .map(|query| catch_unwind(AssertUnwindSafe(|| session.estimate(query))).map_err(|_| ()))
                .collect(),
        };
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        for ((submitted_at, key, reply), result) in replies.drain(..).zip(results) {
            let response = match result {
                Ok(Ok(estimate)) => {
                    metrics.served.fetch_add(1, Ordering::Relaxed);
                    let tier_counter = match estimate.provenance {
                        Provenance::Tier0Exact => &metrics.tier0_served,
                        Provenance::Tier1Sketch => &metrics.tier1_served,
                        Provenance::Tier2Model | Provenance::CacheHit => &metrics.tier2_served,
                    };
                    tier_counter.fetch_add(1, Ordering::Relaxed);
                    if let (Some(cache), Some(key)) = (cache, key) {
                        cache.insert(key, estimate.clone());
                    }
                    let stats = ServeStats {
                        queue_wait: dequeued_at.saturating_duration_since(submitted_at),
                        execution: estimate.wall_time,
                        worker,
                        batch_size,
                    };
                    Ok(ServedEstimate { estimate, stats })
                }
                Ok(Err(err)) => {
                    metrics.failed.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::Estimate(err))
                }
                Err(()) => {
                    metrics.failed.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::Panicked)
                }
            };
            // The client may have dropped its ticket; that is not an error.
            let _ = reply.send(response);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_core::IndependentDensity;
    use naru_query::{EstimateError, Predicate};

    fn tiny_engine() -> Engine {
        Engine::new(IndependentDensity::uniform(&[8, 4]), 1_000).with_samples(64)
    }

    #[test]
    fn round_trip_matches_direct_session() {
        let engine = tiny_engine();
        let q = Query::new(vec![Predicate::le(0, 3), Predicate::ge(1, 1)]);
        let direct = engine.session().estimate(&q).unwrap();

        let server = Server::start(engine, ServeConfig::default().with_workers(2));
        let served = server.estimate(&q).unwrap();
        assert_eq!(served.estimate.selectivity, direct.selectivity);
        assert_eq!(served.estimate.live_paths, direct.live_paths);
        assert!(served.stats.worker < 2);
        assert!(served.stats.batch_size >= 1);

        let metrics = server.shutdown();
        assert_eq!(metrics.accepted, 1);
        assert_eq!(metrics.served, 1);
        assert_eq!(metrics.rejected, 0);
        assert_eq!(metrics.failed, 0);
    }

    #[test]
    fn estimator_rejections_come_back_typed() {
        let server = Server::start(tiny_engine(), ServeConfig::default().with_workers(1));
        let bad = Query::new(vec![Predicate::eq(9, 0)]);
        let err = server.estimate(&bad).unwrap_err();
        assert_eq!(err, ServeError::Estimate(EstimateError::ColumnOutOfRange { column: 9, num_columns: 2 }));
        // The worker survives a rejected query and keeps serving.
        assert!(server.estimate(&Query::all()).is_ok());
        let metrics = server.shutdown();
        assert_eq!(metrics.failed, 1);
        assert_eq!(metrics.served, 1);
    }

    #[test]
    fn submissions_fail_after_close_but_accepted_work_drains() {
        let engine = tiny_engine();
        let server = Server::start(engine, ServeConfig::default().with_workers(1).with_max_batch(4));
        let tickets: Vec<Ticket> = (0..6).map(|_| server.submit(Query::all()).unwrap()).collect();
        server.close();
        assert_eq!(server.try_submit(Query::all()).unwrap_err(), ServeError::ShuttingDown);
        assert_eq!(server.submit(Query::all()).unwrap_err(), ServeError::ShuttingDown);
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.accepted, 6);
        assert_eq!(metrics.completed(), 6);
    }

    #[test]
    fn cache_hit_round_trip_matches_the_fresh_miss() {
        let engine = tiny_engine();
        let server = Server::start(engine, ServeConfig::default().with_workers(2).with_cache_capacity(32));
        let q = Query::new(vec![Predicate::le(0, 3), Predicate::ge(1, 1)]);

        let fresh = server.estimate(&q).unwrap();
        // Same predicates, different order: the normalized key still hits.
        let reordered = Query::new(vec![Predicate::ge(1, 1), Predicate::le(0, 3)]);
        let hit = server.estimate(&reordered).unwrap();

        assert_eq!(hit.estimate.provenance, naru_query::Provenance::CacheHit);
        assert_eq!(hit.estimate.selectivity, fresh.estimate.selectivity);
        assert_eq!(hit.estimate.estimated_rows, fresh.estimate.estimated_rows);
        assert_eq!(hit.estimate.live_paths, fresh.estimate.live_paths);
        assert_eq!(hit.stats.worker, usize::MAX);
        assert_eq!(hit.stats.batch_size, 0);

        let metrics = server.shutdown();
        assert_eq!(metrics.cache_hits, 1);
        assert_eq!(metrics.cache_misses, 1);
        assert_eq!(metrics.cache_hit_rate(), Some(0.5));
        // The hit bypassed admission control entirely.
        assert_eq!(metrics.accepted, 1);
        assert_eq!(metrics.served, 1);
    }

    #[test]
    fn tier_counters_partition_served() {
        let server = Server::start(tiny_engine(), ServeConfig::default().with_workers(1));
        for _ in 0..3 {
            server.estimate(&Query::new(vec![Predicate::le(0, 3)])).unwrap();
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.served, 3);
        assert_eq!(metrics.tier0_served + metrics.tier1_served + metrics.tier2_served, 3);
        // A stats-less engine serves everything through the model tier.
        assert_eq!(metrics.tier2_served, 3);
        assert_eq!(metrics.cache_hits, 0);
    }

    #[test]
    fn invalid_queries_skip_the_cache_and_fail_typed() {
        let server = Server::start(tiny_engine(), ServeConfig::default().with_workers(1).with_cache_capacity(8));
        let bad = Query::new(vec![Predicate::eq(9, 0)]);
        for _ in 0..2 {
            let err = server.estimate(&bad).unwrap_err();
            assert_eq!(err, ServeError::Estimate(EstimateError::ColumnOutOfRange { column: 9, num_columns: 2 }));
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.failed, 2, "errors are recomputed, never cached");
        assert_eq!(metrics.cache_hits, 0);
    }

    #[test]
    fn config_knobs_are_clamped_sane() {
        let server = Server::start(
            tiny_engine(),
            ServeConfig { num_workers: 0, queue_capacity: 0, max_batch: 0, cache_capacity: 0, cache_shards: 0 },
        );
        assert_eq!(server.num_workers(), 1);
        assert_eq!(server.queue_capacity(), 1);
        assert!(server.estimate(&Query::all()).is_ok());
        server.shutdown();
    }
}
