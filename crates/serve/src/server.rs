//! The worker-pool server: one shared [`Engine`], N supervised workers with
//! a tiered session each, fed by the priority-aware bounded request queue,
//! fronted by an optional predicate-keyed estimate cache.
//!
//! # Request lifecycle
//!
//! Every accepted request leaves the server in exactly one of four ways,
//! and each way moves exactly one counter — the accounting identity
//! `served + failed + shed + cancelled == accepted` (see
//! [`MetricsSnapshot::accounted`]):
//!
//! * **served** — a worker produced a validated [`Estimate`] (possibly
//!   through a degraded rung under deadline pressure);
//! * **failed** — the request executed but produced a typed error (or its
//!   worker died mid-batch: `WorkerLost`, contained panic: `Panicked`,
//!   nonsensical payload: `InvalidEstimate`);
//! * **shed** — its [`Deadline`] expired before execution; it is answered
//!   [`ServeError::DeadlineExceeded`] without ever running the estimator;
//! * **cancelled** — its [`Ticket`] was cancelled or dropped; the worker
//!   skips the work entirely.
//!
//! Workers are supervised: a watchdog thread joins every worker exit and
//! respawns workers that died to a panic while the server is still open,
//! so a crash degrades capacity only for the instant it takes to respawn.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use naru_core::{DegradedMode, Engine, TieredSession};
use naru_query::{Estimate, Provenance, Query, QueryKey};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::EstimateCache;
use crate::error::{ConfigError, ServeError};
use crate::fault::FaultInjection;
use crate::policy::{DegradePolicy, Route};
use crate::queue::{BoundedQueue, Disposition, Scheduled, TryPushError};
use crate::request::{Deadline, Priority, SubmitOptions, NUM_PRIORITIES};
use crate::stats::{Metrics, MetricsSnapshot, ServeStats};

/// Worker-pool sizing and scheduling knobs.
///
/// Validated — not clamped — by [`Server::start`]: a zero worker count,
/// zero queue capacity, out-of-range share, or inconsistent cache sharding
/// is a configuration *error* ([`ServeError::Config`]), not something the
/// server silently rewrites.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning one [`Session`](naru_core::Session).
    /// Must be at least 1.
    pub num_workers: usize,
    /// Bounded queue capacity; `try_submit` rejects beyond it. Must be at
    /// least 1.
    pub queue_capacity: usize,
    /// Most requests a worker drains into one `estimate_batch` call
    /// (opportunistic micro-batching). Must be at least 1; 1 disables
    /// batching.
    pub max_batch: usize,
    /// Whether a drained micro-batch of full-quality, deadline-less
    /// requests is answered through one cross-request fused
    /// `estimate_batch` walk (constraints compiled and sorted across the
    /// whole batch so shared column-prefix forward passes execute once per
    /// batch). On by default; turning it off forces every request through
    /// the individual path — same answers, bit for bit, since the fused
    /// walk re-seeds per query. Exists so the fused win is measurable
    /// in-run (`bench_serve` reports both) and as an escape hatch.
    pub fused_batching: bool,
    /// Total entries in the predicate-keyed estimate cache consulted before
    /// enqueueing. `0` (the default) disables the cache entirely: every
    /// request goes through admission control and a worker.
    pub cache_capacity: usize,
    /// Independent locks the cache is split across (ignored when the cache
    /// is disabled). Must be at least 1 and at most `cache_capacity` when
    /// the cache is enabled.
    pub cache_shards: usize,
    /// Fraction of `queue_capacity` that [`Priority::Batch`] requests may
    /// occupy at once. Must be in `(0, 1]`; the interactive class always
    /// gets the full queue.
    pub batch_queue_share: f64,
    /// Fraction of `queue_capacity` that [`Priority::BestEffort`] requests
    /// may occupy at once. Must be in `(0, 1]`.
    pub best_effort_queue_share: f64,
    /// Graceful-degradation policy; `None` (the default) means requests are
    /// never degraded, only shed once their deadline expires.
    pub degrade: Option<DegradePolicy>,
    /// Chaos knobs for the fault-injection harness; all off by default.
    pub faults: FaultInjection,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
        Self {
            num_workers: workers,
            queue_capacity: 256,
            max_batch: 16,
            fused_batching: true,
            cache_capacity: 0,
            cache_shards: 8,
            batch_queue_share: 1.0,
            best_effort_queue_share: 0.5,
            degrade: None,
            faults: FaultInjection::default(),
        }
    }
}

impl ServeConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, num_workers: usize) -> Self {
        self.num_workers = num_workers;
        self
    }

    /// Sets the queue capacity.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets the micro-batch limit.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Enables or disables the cross-request fused batch walk.
    pub fn with_fused_batching(mut self, fused_batching: bool) -> Self {
        self.fused_batching = fused_batching;
        self
    }

    /// Sets the estimate-cache capacity (`0` disables the cache).
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Sets the estimate-cache shard count.
    pub fn with_cache_shards(mut self, cache_shards: usize) -> Self {
        self.cache_shards = cache_shards;
        self
    }

    /// Sets the per-class queue shares for batch and best-effort traffic.
    pub fn with_queue_shares(mut self, batch: f64, best_effort: f64) -> Self {
        self.batch_queue_share = batch;
        self.best_effort_queue_share = best_effort;
        self
    }

    /// Attaches a graceful-degradation policy.
    pub fn with_degrade(mut self, policy: DegradePolicy) -> Self {
        self.degrade = Some(policy);
        self
    }

    /// Attaches fault-injection knobs (chaos testing).
    pub fn with_faults(mut self, faults: FaultInjection) -> Self {
        self.faults = faults;
        self
    }

    /// Checks every knob, returning the first violation. [`Server::start`]
    /// calls this before spawning anything.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.max_batch == 0 {
            return Err(ConfigError::ZeroMaxBatch);
        }
        if self.cache_capacity > 0 {
            if self.cache_shards == 0 {
                return Err(ConfigError::ZeroCacheShards);
            }
            if self.cache_shards > self.cache_capacity {
                return Err(ConfigError::CacheShardsExceedCapacity {
                    shards: self.cache_shards,
                    capacity: self.cache_capacity,
                });
            }
        }
        for (name, value) in
            [("batch_queue_share", self.batch_queue_share), ("best_effort_queue_share", self.best_effort_queue_share)]
        {
            if !value.is_finite() || value <= 0.0 || value > 1.0 {
                return Err(ConfigError::InvalidShare { name, value });
            }
        }
        if let Some(policy) = &self.degrade {
            if policy.reduced_samples == 0 || policy.sketch_fallback_samples == 0 {
                return Err(ConfigError::ZeroDegradeSamples);
            }
        }
        self.faults.validate()
    }

    /// Per-priority-class admission caps derived from the shares, indexed
    /// by `Priority as usize`.
    fn class_caps(&self) -> [usize; NUM_PRIORITIES] {
        let cap = |share: f64| ((self.queue_capacity as f64 * share).ceil() as usize).clamp(1, self.queue_capacity);
        [self.queue_capacity, cap(self.batch_queue_share), cap(self.best_effort_queue_share)]
    }
}

/// A successful response: the [`Estimate`] plus how the request moved
/// through the server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedEstimate {
    /// The estimator's answer, identical to what a direct
    /// [`Session`](naru_core::Session) call with the same engine knobs
    /// would return (unless tagged
    /// [`Provenance::Degraded`](naru_query::Provenance::Degraded)).
    pub estimate: Estimate,
    /// Queue-wait / execution / placement diagnostics.
    pub stats: ServeStats,
}

type Response = Result<ServedEstimate, ServeError>;

/// One queued unit of work: the query plus its reply channel and lifecycle
/// metadata. `key` is the request's cache key, pre-computed at submit time
/// so the worker can store a successful answer without recompiling the
/// query (absent when the cache is off or the query failed to compile — the
/// worker surfaces the error).
struct Request {
    query: Query,
    key: Option<QueryKey>,
    submitted_at: Instant,
    priority: Priority,
    deadline: Option<Deadline>,
    /// Set by [`Ticket::cancel`] or the ticket's `Drop`; checked by the
    /// queue at dequeue and by workers right before executing.
    cancelled: Arc<AtomicBool>,
    reply: SyncSender<Response>,
}

impl Request {
    fn new(query: Query, key: Option<QueryKey>, options: SubmitOptions) -> (Self, Ticket) {
        // Buffer of 1: the worker's send never blocks, so an abandoned
        // ticket (receiver dropped) can never wedge a worker.
        let (reply, rx) = sync_channel(1);
        let cancelled = Arc::new(AtomicBool::new(false));
        (
            Self {
                query,
                key,
                submitted_at: Instant::now(),
                priority: options.priority,
                deadline: options.deadline,
                cancelled: Arc::clone(&cancelled),
                reply,
            },
            Ticket { inner: Some(TicketInner::Pending(rx)), cancelled: Some(cancelled) },
        )
    }
}

impl Scheduled for Request {
    fn priority(&self) -> Priority {
        self.priority
    }

    fn disposition(&self) -> Disposition {
        if self.cancelled.load(Ordering::Relaxed) {
            Disposition::Abandoned
        } else if self.deadline.is_some_and(|deadline| deadline.is_expired()) {
            Disposition::Expired
        } else {
            Disposition::Live
        }
    }
}

#[derive(Debug)]
enum TicketInner {
    /// Answered at submit time by the estimate cache.
    Ready(Box<Response>),
    /// In flight: a worker will reply on the channel.
    Pending(Receiver<Response>),
}

/// A handle to one in-flight request.
///
/// [`Ticket::wait`] blocks until the owning worker responds — unboundedly,
/// unless the request carried a [`Deadline`] (the server then resolves it
/// by that deadline, one way or another) or the caller uses
/// [`Ticket::wait_timeout`]. Cache hits are answered at submit time, so
/// their tickets resolve without blocking.
///
/// Dropping a ticket without consuming it **abandons** the request: the
/// server marks it cancelled, and a worker that has not started it yet
/// skips it entirely (counted under `cancelled`, not `served`).
/// [`Ticket::cancel`] does the same explicitly. Abandonment can never
/// deadlock a worker: the reply channel is buffered, so a worker's send to
/// a vanished client simply drops the response.
#[derive(Debug)]
pub struct Ticket {
    inner: Option<TicketInner>,
    /// Shared with the queued [`Request`]; `None` for cache-hit tickets.
    cancelled: Option<Arc<AtomicBool>>,
}

impl Ticket {
    fn ready(response: Response) -> Self {
        Self { inner: Some(TicketInner::Ready(Box::new(response))), cancelled: None }
    }

    /// Blocks until the request completes. A request whose worker dies
    /// without responding resolves to [`ServeError::WorkerLost`].
    pub fn wait(mut self) -> Response {
        // lint: allow(panic) - inner is Some from construction to the single consuming take(); wait(self) moves the ticket
        match self.inner.take().expect("ticket already consumed") {
            TicketInner::Ready(response) => *response,
            TicketInner::Pending(rx) => rx.recv().unwrap_or(Err(ServeError::WorkerLost)),
        }
    }

    /// Waits at most `timeout` for the response. On timeout the ticket is
    /// handed back unconsumed — wait again, keep it, or drop/[`cancel`]
    /// (the request is then abandoned) as appropriate.
    ///
    /// [`cancel`]: Ticket::cancel
    pub fn wait_timeout(mut self, timeout: Duration) -> Result<Response, Ticket> {
        // lint: allow(panic) - inner is Some from construction to consumption; timeout hands the ticket back with inner restored
        match self.inner.take().expect("ticket already consumed") {
            TicketInner::Ready(response) => Ok(*response),
            TicketInner::Pending(rx) => match rx.recv_timeout(timeout) {
                Ok(response) => Ok(response),
                Err(RecvTimeoutError::Timeout) => {
                    self.inner = Some(TicketInner::Pending(rx));
                    Err(self)
                }
                Err(RecvTimeoutError::Disconnected) => Ok(Err(ServeError::WorkerLost)),
            },
        }
    }

    /// Explicitly abandons the request: a worker that has not started it
    /// yet will skip it (counted under `cancelled`). A request already
    /// executing runs to completion; its response is discarded.
    pub fn cancel(mut self) {
        if let Some(flag) = self.cancelled.take() {
            flag.store(true, Ordering::Relaxed);
        }
        self.inner.take();
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        // An unconsumed ticket abandons its request, exactly like cancel().
        if self.inner.is_some() {
            if let Some(flag) = &self.cancelled {
                flag.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Everything a worker (or the watchdog's final drain) needs, shared once.
struct WorkerShared {
    queue: BoundedQueue<Request>,
    metrics: Metrics,
    cache: Option<EstimateCache>,
    max_batch: usize,
    fused_batching: bool,
    degrade: Option<DegradePolicy>,
    faults: FaultInjection,
}

/// Sent by every worker thread as its last act, panic or not.
struct WorkerExit {
    id: usize,
    panicked: bool,
}

/// A running worker pool over one shared [`Engine`].
///
/// `Server` is `Sync`: submit from any number of client threads. Requests
/// flow through a bounded priority queue into per-worker
/// [`Session`](naru_core::Session)s, so every full-quality estimate is
/// bit-for-bit identical to a direct sequential `Session` call (sessions
/// re-seed per query), regardless of which worker runs it or how requests
/// were batched.
pub struct Server {
    shared: Arc<WorkerShared>,
    num_columns: usize,
    num_workers: usize,
    watchdog: Option<JoinHandle<()>>,
}

impl Server {
    /// Validates `config` and spawns the worker pool plus its watchdog.
    /// Each worker opens its own tiered session from `engine` (inheriting
    /// the engine's sample-count / seed defaults and its statistics
    /// sidecar, if any) and parks on the queue until work or shutdown
    /// arrives. Returns [`ServeError::Config`] — spawning nothing — if any
    /// knob is invalid.
    // lint: allow_fn(index) - batch slot indices come from enumerate over the same dequeued batch
    pub fn start(engine: Engine, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let num_workers = config.num_workers;
        let cache = (config.cache_capacity > 0).then(|| EstimateCache::new(config.cache_capacity, config.cache_shards));
        let num_columns = engine.num_columns();
        let shared = Arc::new(WorkerShared {
            queue: BoundedQueue::with_class_caps(config.queue_capacity, config.class_caps()),
            metrics: Metrics::default(),
            cache,
            max_batch: config.max_batch,
            fused_batching: config.fused_batching,
            degrade: config.degrade.clone(),
            faults: config.faults.clone(),
        });

        let (exit_tx, exit_rx) = mpsc::channel::<WorkerExit>();
        let mut workers: HashMap<usize, JoinHandle<()>> =
            (0..num_workers).map(|id| (id, spawn_worker(&engine, &shared, &exit_tx, id, 0))).collect();

        // The watchdog supervises the pool: it joins every worker exit and
        // respawns panic deaths while the server is open, so one crash
        // costs one respawn, not a permanently smaller pool. Once the last
        // worker is gone it runs a final safety drain so no accepted
        // request is ever left unanswered or unaccounted.
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("naru-serve-watchdog".to_owned())
                .spawn(move || {
                    let mut generations = vec![0u64; num_workers];
                    while !workers.is_empty() {
                        let Ok(exit) = exit_rx.recv() else { break };
                        if let Some(handle) = workers.remove(&exit.id) {
                            let _ = handle.join();
                        }
                        if exit.panicked && !shared.queue.is_closed() {
                            shared.metrics.worker_respawns.fetch_add(1, Ordering::Relaxed);
                            generations[exit.id] += 1;
                            workers.insert(
                                exit.id,
                                spawn_worker(&engine, &shared, &exit_tx, exit.id, generations[exit.id]),
                            );
                        }
                    }
                    drain_orphans(&shared);
                })
                // lint: allow(panic) - spawn fails only on OS thread exhaustion during construction; the server cannot run without its watchdog
                .expect("failed to spawn serve watchdog")
        };

        Ok(Self { shared, num_columns, num_workers, watchdog: Some(watchdog) })
    }

    /// Consults the cache before enqueueing. `Err(ticket)` is a hit: the
    /// ticket is already resolved, no queue slot is consumed. `Ok(key)`
    /// means "enqueue, and store the answer under this key if present".
    ///
    /// Cache hits deliberately bypass admission control: they consume no
    /// queue capacity and do not count as `accepted` — only `cache_hits`
    /// moves. Un-compilable queries miss the cache (`key = None`) and flow
    /// to a worker so the error surfaces through the normal typed path.
    fn check_cache(&self, query: &Query) -> Result<Option<QueryKey>, Ticket> {
        let Some(cache) = &self.shared.cache else {
            return Ok(None);
        };
        let Ok(key) = QueryKey::new(query, self.num_columns) else {
            return Ok(None);
        };
        match cache.get(&key) {
            Some(estimate) => {
                let stats = ServeStats {
                    queue_wait: Duration::ZERO,
                    execution: Duration::ZERO,
                    worker: usize::MAX,
                    batch_size: 0,
                };
                Err(Ticket::ready(Ok(ServedEstimate { estimate, stats })))
            }
            None => Ok(Some(key)),
        }
    }

    /// Admission-controlled submit: rejects with [`ServeError::Overloaded`]
    /// when the queue (or the request's priority class) is full instead of
    /// blocking the caller. Cache hits resolve immediately and are never
    /// rejected.
    pub fn try_submit(&self, query: Query) -> Result<Ticket, ServeError> {
        self.try_submit_with(query, SubmitOptions::default())
    }

    /// [`Server::try_submit`] with explicit priority/deadline options.
    pub fn try_submit_with(&self, query: Query, options: SubmitOptions) -> Result<Ticket, ServeError> {
        let key = match self.check_cache(&query) {
            Ok(key) => key,
            Err(ticket) => return Ok(ticket),
        };
        // Forced-saturation fault: admission control behaves as if the
        // queue were permanently full (blocking submits are unaffected).
        if self.shared.faults.force_saturation {
            self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { capacity: self.shared.queue.capacity() });
        }
        let (request, ticket) = Request::new(query, key, options);
        // Acceptance is counted by the queue itself, inside its critical
        // section, so a request can never be dequeued (let alone served)
        // before it is counted.
        match self.shared.queue.try_push(request) {
            Ok(()) => Ok(ticket),
            Err(TryPushError::Full(_)) => {
                self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded { capacity: self.shared.queue.capacity() })
            }
            Err(TryPushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Blocking submit: waits for queue space. Fails only once shutdown has
    /// begun. Cache hits resolve immediately without waiting.
    pub fn submit(&self, query: Query) -> Result<Ticket, ServeError> {
        self.submit_with(query, SubmitOptions::default())
    }

    /// [`Server::submit`] with explicit priority/deadline options.
    pub fn submit_with(&self, query: Query, options: SubmitOptions) -> Result<Ticket, ServeError> {
        let key = match self.check_cache(&query) {
            Ok(key) => key,
            Err(ticket) => return Ok(ticket),
        };
        let (request, ticket) = Request::new(query, key, options);
        match self.shared.queue.push(request) {
            Ok(()) => Ok(ticket),
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }

    /// Convenience round trip: blocking submit, then wait.
    pub fn estimate(&self, query: &Query) -> Result<ServedEstimate, ServeError> {
        self.submit(query.clone())?.wait()
    }

    /// Convenience round trip with explicit options.
    pub fn estimate_with(&self, query: &Query, options: SubmitOptions) -> Result<ServedEstimate, ServeError> {
        self.submit_with(query.clone(), options)?.wait()
    }

    /// Number of worker threads the pool was started with (the watchdog
    /// keeps the pool at this size while the server is open).
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Capacity of the admission queue.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// Current queue depth (racy by nature; for monitoring).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// A point-in-time copy of the server counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        // Completions first, acceptance second: service implies prior
        // acceptance, so this read order guarantees
        // `accounted() <= accepted` even against in-flight submitters.
        let mut snapshot = self.shared.metrics.snapshot();
        snapshot.accepted = self.shared.queue.total_pushed();
        if let Some(cache) = &self.shared.cache {
            snapshot.cache_hits = cache.hits();
            snapshot.cache_misses = cache.misses();
            snapshot.cache_evictions = cache.evictions();
        }
        snapshot
    }

    /// Entries currently in the estimate cache (`0` when disabled).
    pub fn cache_len(&self) -> usize {
        self.shared.cache.as_ref().map_or(0, |c| c.len())
    }

    /// Begins shutdown without waiting: new submissions fail with
    /// [`ServeError::ShuttingDown`], while accepted requests keep draining.
    /// Call [`Server::shutdown`] (or drop the server) to also join the
    /// workers.
    pub fn close(&self) {
        self.shared.queue.close();
    }

    /// Graceful shutdown: stops admission, waits for the workers to drain
    /// every accepted request, joins them (via the watchdog), and returns
    /// the final counters — for which the accounting identity
    /// `accounted() == accepted` holds exactly.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.close();
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        self.metrics()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Same drain-then-join as `shutdown`, for servers dropped without
        // an explicit shutdown call (including on client panic unwind).
        self.close();
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
    }
}

fn spawn_worker(
    engine: &Engine,
    shared: &Arc<WorkerShared>,
    exit_tx: &mpsc::Sender<WorkerExit>,
    id: usize,
    generation: u64,
) -> JoinHandle<()> {
    let session = engine.tiered_session();
    let shared = Arc::clone(shared);
    let exit_tx = exit_tx.clone();
    std::thread::Builder::new()
        .name(format!("naru-serve-{id}"))
        .spawn(move || {
            let panicked = catch_unwind(AssertUnwindSafe(|| worker_loop(id, generation, session, &shared))).is_err();
            let _ = exit_tx.send(WorkerExit { id, panicked });
        })
        // lint: allow(panic) - spawn fails only on OS thread exhaustion; respawn without a worker would silently shrink the pool
        .expect("failed to spawn serve worker")
}

/// Accounts a request the queue shed at dequeue time. Expired requests are
/// answered `DeadlineExceeded` (their client may be in `wait`); abandoned
/// requests have no listener, so only the counter moves.
fn account_dropped(request: Request, disposition: Disposition, metrics: &Metrics) {
    match disposition {
        Disposition::Expired => {
            metrics.shed.fetch_add(1, Ordering::Relaxed);
            let _ = request.reply.send(Err(ServeError::DeadlineExceeded));
        }
        Disposition::Abandoned | Disposition::Live => {
            metrics.cancelled.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Final safety net, run by the watchdog after the last worker is gone:
/// fail (or shed) whatever is still queued so every accepted request is
/// answered and accounted even if the whole pool died.
fn drain_orphans(shared: &WorkerShared) {
    shared.queue.close();
    let mut orphans: Vec<Request> = Vec::new();
    let mut dropped: Vec<(Request, Disposition)> = Vec::new();
    while shared.queue.pop_batch(usize::MAX, &mut orphans, &mut dropped) {
        for (request, disposition) in dropped.drain(..) {
            account_dropped(request, disposition, &shared.metrics);
        }
        for request in orphans.drain(..) {
            shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
            let _ = request.reply.send(Err(ServeError::WorkerLost));
        }
    }
}

/// The reply-side of a dequeued request, separated from its query so the
/// batch path can borrow the queries while the guard owns the replies.
struct Pending {
    submitted_at: Instant,
    deadline: Option<Deadline>,
    cancelled: Arc<AtomicBool>,
    key: Option<QueryKey>,
    reply: SyncSender<Response>,
}

/// Owns every in-flight reply of one drained batch. If the worker dies
/// mid-batch (injected death, or a bug in the loop plumbing), the guard's
/// drop runs during unwind and fails every still-unanswered request with
/// `WorkerLost` — so even a crashing worker never strands a ticket or
/// breaks the accounting identity.
struct BatchGuard<'a> {
    slots: Vec<Option<Pending>>,
    metrics: &'a Metrics,
}

impl BatchGuard<'_> {
    // lint: allow_fn(index) - batch slot indices come from enumerate over the same dequeued batch
    fn take(&mut self, index: usize) -> Option<Pending> {
        self.slots[index].take()
    }
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        for pending in self.slots.drain(..).flatten() {
            self.metrics.failed.fetch_add(1, Ordering::Relaxed);
            let _ = pending.reply.send(Err(ServeError::WorkerLost));
        }
    }
}

/// Validates, counts, caches, and delivers one request's outcome.
#[allow(clippy::too_many_arguments)]
fn deliver(
    pending: Pending,
    result: Result<Estimate, ServeError>,
    rng: &mut Option<StdRng>,
    shared: &WorkerShared,
    worker: usize,
    batch_size: usize,
    dequeued_at: Instant,
) {
    let metrics = &shared.metrics;
    let response = match result {
        Ok(mut estimate) => {
            // Poison injection: corrupt the payload so the validation
            // below has something real to catch.
            if let Some(rng) = rng.as_mut() {
                if shared.faults.poison_probability > 0.0 && rng.gen_bool(shared.faults.poison_probability) {
                    estimate.selectivity = f64::NAN;
                }
            }
            // Serve-side validation: a selectivity outside [0, 1] (or NaN)
            // is never served and never cached, whatever produced it.
            if !estimate.selectivity.is_finite() || !(0.0..=1.0).contains(&estimate.selectivity) {
                metrics.failed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::InvalidEstimate)
            } else {
                metrics.served.fetch_add(1, Ordering::Relaxed);
                let tier_counter = match estimate.provenance {
                    Provenance::Tier0Exact => &metrics.tier0_served,
                    Provenance::Tier1Sketch => &metrics.tier1_served,
                    Provenance::Tier2Model | Provenance::CacheHit => &metrics.tier2_served,
                    Provenance::Relaxed => &metrics.relaxed_served,
                    Provenance::Degraded => &metrics.degraded_served,
                };
                tier_counter.fetch_add(1, Ordering::Relaxed);
                // Degraded answers are deliberately not cached: they would
                // otherwise keep answering full-quality requests long after
                // the pressure that justified them has passed. Relaxed
                // answers are not cached either — the cache key carries no
                // precision, so a cached relaxed answer would later serve
                // exact-precision submitters as a CacheHit.
                if estimate.provenance != Provenance::Degraded && estimate.provenance != Provenance::Relaxed {
                    if let (Some(cache), Some(key)) = (shared.cache.as_ref(), pending.key) {
                        cache.insert(key, estimate.clone());
                    }
                }
                let stats = ServeStats {
                    queue_wait: dequeued_at.saturating_duration_since(pending.submitted_at),
                    execution: estimate.wall_time,
                    worker,
                    batch_size,
                };
                Ok(ServedEstimate { estimate, stats })
            }
        }
        Err(err) => {
            metrics.failed.fetch_add(1, Ordering::Relaxed);
            Err(err)
        }
    };
    // The client may have dropped its ticket; that is not an error.
    let _ = pending.reply.send(response);
}

/// One worker: park on the queue, drain up to `max_batch` live requests
/// (the queue sheds expired/abandoned ones at this boundary), choose each
/// request's degradation rung, then answer — plain requests through a
/// single tiered `estimate_batch` call, deadline-carrying or degraded ones
/// individually with a disposition re-check right before the walk — until
/// the queue closes and empties. Successful full-quality answers whose
/// request carries a cache key are stored for future submitters.
// lint: allow_fn(index) - batch slot indices come from enumerate over the same dequeued batch
fn worker_loop(worker: usize, generation: u64, mut session: TieredSession, shared: &WorkerShared) {
    let metrics = &shared.metrics;
    // Fault RNG: deterministic per worker *incarnation*, absent (zero
    // overhead) when no probabilistic fault is enabled.
    let mut rng = (!shared.faults.is_noop())
        .then(|| StdRng::seed_from_u64(shared.faults.seed ^ ((worker as u64 + 1) << 32) ^ generation));
    let mut batch: Vec<Request> = Vec::with_capacity(shared.max_batch);
    let mut dropped: Vec<(Request, Disposition)> = Vec::new();
    let mut queries: Vec<Query> = Vec::with_capacity(shared.max_batch);
    while shared.queue.pop_batch(shared.max_batch, &mut batch, &mut dropped) {
        let dequeued_at = Instant::now();
        for (request, disposition) in dropped.drain(..) {
            account_dropped(request, disposition, metrics);
        }
        if batch.is_empty() {
            continue;
        }
        // Injected stall: the worker sits on its drained batch, letting
        // deadlines run down and the queue back up.
        if let Some(rng) = rng.as_mut() {
            if shared.faults.stall_probability > 0.0 && rng.gen_bool(shared.faults.stall_probability) {
                #[allow(clippy::disallowed_methods)] // deliberate fault-injection stall
                std::thread::sleep(shared.faults.stall);
            }
        }
        // Depth observed *after* draining: what the next batch is up
        // against, the signal DegradePolicy's watermarks are written for.
        let depth = shared.queue.len();
        let batch_size = batch.len();
        metrics.batches.fetch_add(1, Ordering::Relaxed);

        queries.clear();
        let mut routes: Vec<Route> = Vec::with_capacity(batch_size);
        let mut slots: Vec<Option<Pending>> = Vec::with_capacity(batch_size);
        for request in batch.drain(..) {
            let route = match &shared.degrade {
                Some(policy) => policy.route(request.deadline.map(|d| d.remaining()), depth),
                None => Route::Full,
            };
            routes.push(route);
            queries.push(request.query);
            slots.push(Some(Pending {
                submitted_at: request.submitted_at,
                deadline: request.deadline,
                cancelled: request.cancelled,
                key: request.key,
                reply: request.reply,
            }));
        }
        // From here on the guard owns the replies: a worker death (injected
        // or real) fails everything unanswered instead of stranding it.
        let mut guard = BatchGuard { slots, metrics };
        if let Some(rng) = rng.as_mut() {
            if shared.faults.death_probability > 0.0 && rng.gen_bool(shared.faults.death_probability) {
                // lint: allow(panic) - deliberate fault injection driving the watchdog/respawn chaos tests
                panic!("injected worker death");
            }
        }

        // Fused fast path: full-quality, deadline-less, uncancelled
        // requests go through one prefix-memoizing `estimate_batch` call
        // (bit-identical to sequential estimates) that sorts constraints
        // across the whole batch so shared column prefixes execute once.
        // Per-request faults force the slow path so injection sites stay
        // per-request; `fused_batching: false` forces it for everything.
        let batchable: Vec<usize> = (0..batch_size)
            .filter(|&i| {
                shared.fused_batching
                    && rng.is_none()
                    && routes[i] == Route::Full
                    && guard.slots[i]
                        .as_ref()
                        .is_some_and(|p| p.deadline.is_none() && !p.cancelled.load(Ordering::Relaxed))
            })
            .collect();
        if !batchable.is_empty() {
            // Contain estimator panics: a panicking density must not kill
            // the worker. If the batch call unwinds, fall through to the
            // individual path so only the poisoning request(s) fail — the
            // walk fully reinitializes the session scratch per estimate,
            // so reuse after a panic is safe.
            let subset: Vec<Query>;
            let batch_queries: &[Query] = if batchable.len() == batch_size {
                &queries
            } else {
                subset = batchable.iter().map(|&i| queries[i].clone()).collect();
                &subset
            };
            if let Ok(results) = catch_unwind(AssertUnwindSafe(|| session.estimate_batch(batch_queries))) {
                metrics.fused_batches.fetch_add(1, Ordering::Relaxed);
                for (&i, result) in batchable.iter().zip(results) {
                    if let Some(pending) = guard.take(i) {
                        deliver(
                            pending,
                            result.map_err(ServeError::Estimate),
                            &mut rng,
                            shared,
                            worker,
                            batch_size,
                            dequeued_at,
                        );
                    }
                }
            }
        }

        // Individual path: everything still pending — deadline-carrying,
        // degraded, fault-injected, or survivors of a batch-call unwind.
        for i in 0..batch_size {
            let Some(pending) = guard.slots[i].as_ref() else { continue };
            // Re-check disposition immediately before the walk: a deadline
            // that expired while earlier batch-mates executed sheds here,
            // never reaching the estimator.
            if pending.cancelled.load(Ordering::Relaxed) {
                let _ = guard.take(i);
                metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if pending.deadline.is_some_and(|deadline| deadline.is_expired()) {
                // lint: allow(panic) - slot occupancy was checked by the enclosing loop; take() on a live slot cannot fail
                let pending = guard.take(i).expect("slot checked above");
                metrics.shed.fetch_add(1, Ordering::Relaxed);
                let _ = pending.reply.send(Err(ServeError::DeadlineExceeded));
                continue;
            }
            let inject_panic = rng.as_mut().is_some_and(|rng| {
                shared.faults.panic_probability > 0.0 && rng.gen_bool(shared.faults.panic_probability)
            });
            let route = routes[i];
            let query = &queries[i];
            let result = catch_unwind(AssertUnwindSafe(|| {
                if inject_panic {
                    // lint: allow(panic) - deliberate fault injection; caught by the catch_unwind directly above
                    panic!("injected estimator panic");
                }
                match (route, &shared.degrade) {
                    (Route::Reduced, Some(policy)) => {
                        session.estimate_degraded(query, DegradedMode::ReducedSamples(policy.reduced_samples))
                    }
                    (Route::Sketch, Some(policy)) => session.estimate_degraded(
                        query,
                        DegradedMode::SketchOnly { fallback_samples: policy.sketch_fallback_samples },
                    ),
                    _ => session.estimate(query),
                }
            }));
            let result = match result {
                Ok(Ok(estimate)) => Ok(estimate),
                Ok(Err(err)) => Err(ServeError::Estimate(err)),
                Err(_) => Err(ServeError::Panicked),
            };
            // lint: allow(panic) - the cancelled/expired branches above take the slot and `continue`; reaching here means it is still live
            let pending = guard.take(i).expect("slot checked above");
            deliver(pending, result, &mut rng, shared, worker, batch_size, dequeued_at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_core::IndependentDensity;
    use naru_query::{EstimateError, Predicate};

    fn tiny_engine() -> Engine {
        Engine::new(IndependentDensity::uniform(&[8, 4]), 1_000).with_samples(64)
    }

    /// An engine whose walks take milliseconds, so a test can submit work,
    /// act while the single worker is still busy, and not race it.
    fn slow_engine() -> Engine {
        Engine::new(IndependentDensity::uniform(&[8, 4]), 1_000).with_samples(400_000)
    }

    fn start(config: ServeConfig) -> Server {
        Server::start(tiny_engine(), config).expect("valid test config")
    }

    #[test]
    fn round_trip_matches_direct_session() {
        let engine = tiny_engine();
        let q = Query::new(vec![Predicate::le(0, 3), Predicate::ge(1, 1)]);
        let direct = engine.session().estimate(&q).unwrap();

        let server = Server::start(engine, ServeConfig::default().with_workers(2)).unwrap();
        let served = server.estimate(&q).unwrap();
        assert_eq!(served.estimate.selectivity, direct.selectivity);
        assert_eq!(served.estimate.live_paths, direct.live_paths);
        assert!(served.stats.worker < 2);
        assert!(served.stats.batch_size >= 1);

        let metrics = server.shutdown();
        assert_eq!(metrics.accepted, 1);
        assert_eq!(metrics.served, 1);
        assert_eq!(metrics.rejected, 0);
        assert_eq!(metrics.failed, 0);
        assert_eq!(metrics.accounted(), metrics.accepted);
    }

    #[test]
    fn estimator_rejections_come_back_typed() {
        let server = start(ServeConfig::default().with_workers(1));
        let bad = Query::new(vec![Predicate::eq(9, 0)]);
        let err = server.estimate(&bad).unwrap_err();
        assert_eq!(err, ServeError::Estimate(EstimateError::ColumnOutOfRange { column: 9, num_columns: 2 }));
        // The worker survives a rejected query and keeps serving.
        assert!(server.estimate(&Query::all()).is_ok());
        let metrics = server.shutdown();
        assert_eq!(metrics.failed, 1);
        assert_eq!(metrics.served, 1);
    }

    #[test]
    fn submissions_fail_after_close_but_accepted_work_drains() {
        let server = start(ServeConfig::default().with_workers(1).with_max_batch(4));
        let tickets: Vec<Ticket> = (0..6).map(|_| server.submit(Query::all()).unwrap()).collect();
        server.close();
        assert_eq!(server.try_submit(Query::all()).unwrap_err(), ServeError::ShuttingDown);
        assert_eq!(server.submit(Query::all()).unwrap_err(), ServeError::ShuttingDown);
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.accepted, 6);
        assert_eq!(metrics.completed(), 6);
        assert_eq!(metrics.accounted(), 6);
    }

    #[test]
    fn cache_hit_round_trip_matches_the_fresh_miss() {
        let server = start(ServeConfig::default().with_workers(2).with_cache_capacity(32));
        let q = Query::new(vec![Predicate::le(0, 3), Predicate::ge(1, 1)]);

        let fresh = server.estimate(&q).unwrap();
        // Same predicates, different order: the normalized key still hits.
        let reordered = Query::new(vec![Predicate::ge(1, 1), Predicate::le(0, 3)]);
        let hit = server.estimate(&reordered).unwrap();

        assert_eq!(hit.estimate.provenance, naru_query::Provenance::CacheHit);
        assert_eq!(hit.estimate.selectivity, fresh.estimate.selectivity);
        assert_eq!(hit.estimate.estimated_rows, fresh.estimate.estimated_rows);
        assert_eq!(hit.estimate.live_paths, fresh.estimate.live_paths);
        assert_eq!(hit.stats.worker, usize::MAX);
        assert_eq!(hit.stats.batch_size, 0);

        let metrics = server.shutdown();
        assert_eq!(metrics.cache_hits, 1);
        assert_eq!(metrics.cache_misses, 1);
        assert_eq!(metrics.cache_hit_rate(), Some(0.5));
        // The hit bypassed admission control entirely.
        assert_eq!(metrics.accepted, 1);
        assert_eq!(metrics.served, 1);
    }

    #[test]
    fn tier_counters_partition_served() {
        let server = start(ServeConfig::default().with_workers(1));
        for _ in 0..3 {
            server.estimate(&Query::new(vec![Predicate::le(0, 3)])).unwrap();
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.served, 3);
        assert_eq!(
            metrics.tier0_served
                + metrics.tier1_served
                + metrics.tier2_served
                + metrics.relaxed_served
                + metrics.degraded_served,
            3
        );
        // A stats-less engine without pressure serves through the model
        // tier, in exact precision.
        assert_eq!(metrics.tier2_served, 3);
        assert_eq!(metrics.relaxed_served, 0);
        assert_eq!(metrics.cache_hits, 0);
    }

    #[test]
    fn disabling_fused_batching_preserves_answers_and_zeroes_the_counter() {
        let q = Query::new(vec![Predicate::le(0, 3), Predicate::ge(1, 1)]);
        let fused = start(ServeConfig::default().with_workers(1).with_max_batch(8));
        let fused_answer = fused.estimate(&q).unwrap();
        let fused_metrics = fused.shutdown();
        assert!(fused_metrics.fused_batches >= 1, "default config answers through the fused path");

        let individual = start(ServeConfig::default().with_workers(1).with_max_batch(8).with_fused_batching(false));
        let individual_answer = individual.estimate(&q).unwrap();
        let individual_metrics = individual.shutdown();
        assert_eq!(individual_metrics.fused_batches, 0, "disabled fused path must never run");
        assert_eq!(individual_metrics.served, 1);
        // Same engine knobs, same per-query re-seeding: the two paths agree
        // bit for bit.
        assert_eq!(individual_answer.estimate.selectivity, fused_answer.estimate.selectivity);
        assert_eq!(individual_answer.estimate.live_paths, fused_answer.estimate.live_paths);
    }

    #[test]
    fn invalid_queries_skip_the_cache_and_fail_typed() {
        let server = start(ServeConfig::default().with_workers(1).with_cache_capacity(8));
        let bad = Query::new(vec![Predicate::eq(9, 0)]);
        for _ in 0..2 {
            let err = server.estimate(&bad).unwrap_err();
            assert_eq!(err, ServeError::Estimate(EstimateError::ColumnOutOfRange { column: 9, num_columns: 2 }));
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.failed, 2, "errors are recomputed, never cached");
        assert_eq!(metrics.cache_hits, 0);
    }

    #[test]
    fn invalid_configs_are_rejected_not_clamped() {
        let cases = [
            (ServeConfig::default().with_workers(0), ConfigError::ZeroWorkers),
            (ServeConfig::default().with_queue_capacity(0), ConfigError::ZeroQueueCapacity),
            (ServeConfig::default().with_max_batch(0), ConfigError::ZeroMaxBatch),
            (ServeConfig::default().with_cache_capacity(16).with_cache_shards(0), ConfigError::ZeroCacheShards),
            (
                ServeConfig::default().with_cache_capacity(4).with_cache_shards(8),
                ConfigError::CacheShardsExceedCapacity { shards: 8, capacity: 4 },
            ),
            (
                ServeConfig::default().with_queue_shares(0.0, 0.5),
                ConfigError::InvalidShare { name: "batch_queue_share", value: 0.0 },
            ),
            (
                ServeConfig::default().with_queue_shares(1.0, 1.5),
                ConfigError::InvalidShare { name: "best_effort_queue_share", value: 1.5 },
            ),
            (
                ServeConfig::default().with_degrade(DegradePolicy::default().with_reduced_samples(0)),
                ConfigError::ZeroDegradeSamples,
            ),
            (
                ServeConfig::default().with_faults(FaultInjection::default().with_panic_probability(2.0)),
                ConfigError::InvalidProbability { name: "panic_probability", value: 2.0 },
            ),
        ];
        for (config, expected) in cases {
            match Server::start(tiny_engine(), config) {
                Err(ServeError::Config(err)) => assert_eq!(err, expected),
                other => panic!("expected Config({expected:?}), got {:?}", other.map(|_| "server")),
            }
        }
        // A zero-shard cache config is fine when the cache is disabled.
        let server = start(ServeConfig::default().with_workers(1).with_cache_capacity(0).with_cache_shards(0));
        assert!(server.estimate(&Query::all()).is_ok());
        server.shutdown();
    }

    #[test]
    fn class_caps_derive_from_shares() {
        let config = ServeConfig::default().with_queue_capacity(100).with_queue_shares(0.25, 0.01);
        assert_eq!(config.class_caps(), [100, 25, 1]);
        // Shares round up and never fall below one slot.
        let tiny = ServeConfig::default().with_queue_capacity(3).with_queue_shares(1.0, 0.1);
        assert_eq!(tiny.class_caps(), [3, 3, 1]);
    }

    #[test]
    fn wait_timeout_hands_the_ticket_back_then_resolves() {
        let server = start(ServeConfig::default().with_workers(1).with_max_batch(1));
        // Stack enough slow-ish work that at least the last ticket has to
        // queue behind the rest.
        let q = Query::new(vec![Predicate::le(0, 3), Predicate::ge(1, 1)]);
        let mut tickets: Vec<Ticket> = (0..8).map(|_| server.submit(q.clone()).unwrap()).collect();
        let last = tickets.pop().unwrap();
        // Zero timeout: either already done (fast machine) or handed back.
        let resolved = match last.wait_timeout(Duration::ZERO) {
            Ok(response) => response,
            // A generous timeout then resolves like a plain wait.
            Err(ticket) => ticket.wait_timeout(Duration::from_secs(60)).expect("request did not complete in 60s"),
        };
        resolved.unwrap();
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.served, 8);
        assert_eq!(metrics.accounted(), metrics.accepted);
    }

    #[test]
    fn cancelled_tickets_are_skipped_and_counted() {
        // One worker, batch size 1: submit a head request to occupy the
        // worker, cancel the rest while they queue.
        let server = Server::start(slow_engine(), ServeConfig::default().with_workers(1).with_max_batch(1)).unwrap();
        let q = Query::new(vec![Predicate::le(0, 3), Predicate::ge(1, 1)]);
        let head = server.submit(q.clone()).unwrap();
        let queued: Vec<Ticket> = (0..4).map(|_| server.submit(q.clone()).unwrap()).collect();
        for (i, ticket) in queued.into_iter().enumerate() {
            if i % 2 == 0 {
                ticket.cancel();
            } else {
                drop(ticket); // dropping is an implicit cancel
            }
        }
        head.wait().unwrap();
        let metrics = server.shutdown();
        assert_eq!(metrics.accepted, 5);
        assert_eq!(metrics.accounted(), 5);
        assert!(metrics.cancelled > 0, "at least the still-queued cancellations must be counted");
        assert_eq!(metrics.served + metrics.cancelled, 5, "cancelled work is skipped, not failed");
    }

    #[test]
    fn priority_classes_respect_admission_caps() {
        // Saturate the best-effort share of a small queue with a stalled
        // worker, then check interactive traffic still gets in.
        let server = Server::start(
            slow_engine(),
            ServeConfig::default()
                .with_workers(1)
                .with_max_batch(1)
                .with_queue_capacity(4)
                .with_queue_shares(1.0, 0.25),
        )
        .unwrap();
        // Occupy the worker.
        let q = Query::new(vec![Predicate::le(0, 3), Predicate::ge(1, 1)]);
        let head = server.submit(q.clone()).unwrap();
        // Queue capacity 4, best-effort cap = 1.
        let be = server.try_submit_with(q.clone(), SubmitOptions::best_effort());
        // The first best-effort fits (or the worker already drained it —
        // then the next one fits). Eventually the cap must bite while
        // interactive still has room; rather than race the worker, assert
        // on the pure queue math through metrics after shutdown.
        let mut rejected_best_effort = false;
        for _ in 0..8 {
            if matches!(
                server.try_submit_with(q.clone(), SubmitOptions::best_effort()),
                Err(ServeError::Overloaded { .. })
            ) {
                rejected_best_effort = true;
                break;
            }
        }
        // The queue itself still has room: interactive traffic is admitted
        // even while the best-effort lane is capped out.
        let interactive = server.try_submit_with(q.clone(), SubmitOptions::interactive()).unwrap();
        drop(be);
        drop(interactive);
        head.wait().unwrap();
        let metrics = server.shutdown();
        assert!(rejected_best_effort, "best-effort cap of 1 must reject a burst of 8");
        assert!(metrics.rejected > 0);
        assert_eq!(metrics.accounted(), metrics.accepted);
    }
}
