//! Fault injection: plain runtime knobs that make the server hurt itself
//! on purpose.
//!
//! Robustness claims ("panics are contained", "the watchdog respawns dead
//! workers", "accounting never leaks a request") are only as good as the
//! tests that exercise them. [`FaultInjection`] turns the failure modes on
//! deliberately — no compile-time features, just probabilities — so the
//! chaos suite (`crates/serve/tests/chaos.rs`) and ad-hoc load tests can
//! drive the server through sustained failure and assert the invariants:
//!
//! * `served + failed + shed + cancelled == accepted` (nothing leaks);
//! * a dead worker is respawned and the pool keeps serving;
//! * shutdown still drains every accepted request;
//! * a poisoned (non-finite) estimate is rejected, never served or cached.
//!
//! All knobs default to off; a default [`FaultInjection`] adds zero
//! overhead to the hot path (workers skip the fault RNG entirely).

use std::time::Duration;

use crate::error::ConfigError;

/// Chaos knobs, attached via
/// [`ServeConfig::with_faults`](crate::ServeConfig::with_faults).
/// Injection is deterministic given [`FaultInjection::seed`] (each worker
/// derives its own RNG from the seed, its id, and its respawn generation).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjection {
    /// Per-request probability that execution panics inside the estimator
    /// (exercises per-request panic containment: the request fails with
    /// [`ServeError::Panicked`](crate::ServeError::Panicked), the worker
    /// survives).
    pub panic_probability: f64,
    /// Per-batch probability that the worker thread itself dies after
    /// draining a batch (exercises the watchdog: the batch's requests fail
    /// with [`ServeError::WorkerLost`](crate::ServeError::WorkerLost), the
    /// worker is respawned).
    pub death_probability: f64,
    /// Per-batch probability of an injected stall of [`FaultInjection::stall`]
    /// before executing (exercises deadline expiry and queue pressure).
    pub stall_probability: f64,
    /// Length of an injected stall.
    pub stall: Duration,
    /// Per-request probability that a successful estimate is replaced with
    /// a non-finite payload before validation (exercises the server's
    /// output validation: the request fails with
    /// [`ServeError::InvalidEstimate`](crate::ServeError::InvalidEstimate)
    /// and is never cached).
    pub poison_probability: f64,
    /// Forces admission control to treat the queue as saturated:
    /// [`Server::try_submit`](crate::Server::try_submit) rejects every
    /// request with `Overloaded`. Blocking `submit` is unaffected.
    pub force_saturation: bool,
    /// Seed of the deterministic fault RNG.
    pub seed: u64,
}

impl Default for FaultInjection {
    fn default() -> Self {
        Self {
            panic_probability: 0.0,
            death_probability: 0.0,
            stall_probability: 0.0,
            stall: Duration::from_millis(5),
            poison_probability: 0.0,
            force_saturation: false,
            seed: 0,
        }
    }
}

impl FaultInjection {
    /// Sets the per-request estimator-panic probability.
    pub fn with_panic_probability(mut self, p: f64) -> Self {
        self.panic_probability = p;
        self
    }

    /// Sets the per-batch worker-death probability.
    pub fn with_death_probability(mut self, p: f64) -> Self {
        self.death_probability = p;
        self
    }

    /// Sets the per-batch stall probability and stall length.
    pub fn with_stall(mut self, p: f64, stall: Duration) -> Self {
        self.stall_probability = p;
        self.stall = stall;
        self
    }

    /// Sets the per-request estimate-poisoning probability.
    pub fn with_poison_probability(mut self, p: f64) -> Self {
        self.poison_probability = p;
        self
    }

    /// Forces admission control to reject every `try_submit`.
    pub fn with_forced_saturation(mut self, on: bool) -> Self {
        self.force_saturation = on;
        self
    }

    /// Sets the fault RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether every probabilistic knob is off (workers then skip the
    /// fault RNG entirely).
    pub fn is_noop(&self) -> bool {
        self.panic_probability == 0.0
            && self.death_probability == 0.0
            && self.stall_probability == 0.0
            && self.poison_probability == 0.0
    }

    /// Validates every probability is a finite value in `[0, 1]`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, value) in [
            ("panic_probability", self.panic_probability),
            ("death_probability", self.death_probability),
            ("stall_probability", self.stall_probability),
            ("poison_probability", self.poison_probability),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(ConfigError::InvalidProbability { name, value });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noop_and_valid() {
        let faults = FaultInjection::default();
        assert!(faults.is_noop());
        assert!(faults.validate().is_ok());
        // force_saturation alone is not probabilistic: still a no-op for
        // the worker-side RNG.
        assert!(FaultInjection::default().with_forced_saturation(true).is_noop());
    }

    #[test]
    fn out_of_range_probabilities_are_rejected() {
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            let faults = FaultInjection::default().with_panic_probability(bad);
            assert!(matches!(
                faults.validate(),
                Err(ConfigError::InvalidProbability { name: "panic_probability", .. })
            ));
        }
        assert!(FaultInjection::default().with_panic_probability(1.0).with_death_probability(0.5).validate().is_ok());
    }
}
