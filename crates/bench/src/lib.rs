//! # naru-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§6), plus Criterion micro-benchmarks.
//!
//! * [`config`] — the `--quick` / `--full` experiment scales,
//! * [`accuracy`] — the shared accuracy/latency measurement loop,
//! * [`latency`] — the end-to-end estimator-latency harness behind the
//!   `bench_infer` binary and its `BENCH_infer.json` artifact,
//! * [`client`] — a minimal blocking HTTP client for the `naru-net`
//!   front end, behind the `bench_serve` network phase,
//! * [`experiments`] — one function per table/figure (see DESIGN.md §5 for
//!   the index),
//! * [`report`] — plain-text table rendering matching the paper's layout.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p naru-bench --bin experiments -- all --quick
//! ```

#![forbid(unsafe_code)]

pub mod accuracy;
pub mod client;
pub mod config;
pub mod experiments;
pub mod latency;
pub mod report;

pub use accuracy::{evaluate_all, evaluate_estimator, EstimatorResult};
pub use client::{ClientError, NetClient, RequestOptions};
pub use config::{ExperimentConfig, Scale};
pub use latency::LatencyStats;
