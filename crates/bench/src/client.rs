//! A minimal blocking HTTP client for the `naru-net` front end, used by
//! the `bench_serve` network phase (and handy for ad-hoc load drivers).
//!
//! One [`NetClient`] owns one keep-alive TCP connection: `estimate` POSTs
//! a wire-encoded query to `/estimate` and decodes the response body back
//! into a [`WireEstimate`]; `get` fetches `/healthz`, `/metrics`, or any
//! other path raw. Deliberately synchronous and single-connection — the
//! benchmark measures the server, so the client stays as simple as the
//! protocol allows.

use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use naru_net::{decode_served, read_response, HttpLimits, Response, WireEstimate};
use naru_query::encode_query;
use naru_query::Query;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket itself failed (connect, write, or read).
    Io(io::Error),
    /// The server's bytes did not parse as an HTTP response.
    Protocol(naru_net::ProtocolError),
    /// The server answered with a non-200 status; the body carries the
    /// human-readable reason.
    Http {
        /// The HTTP status code.
        status: u16,
        /// The response body (the server's error message).
        body: String,
    },
    /// A 200 response body that did not decode as a served estimate.
    Decode(naru_net::ResponseParseError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Protocol(e) => write!(f, "malformed response: {e}"),
            Self::Http { status, body } => write!(f, "HTTP {status}: {}", body.trim_end()),
            Self::Decode(e) => write!(f, "undecodable estimate body: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Per-request knobs, mirrored onto the `X-Naru-*` headers.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestOptions {
    /// `X-Naru-Priority` value (`interactive`, `batch`, `best_effort`).
    pub priority: Option<&'static str>,
    /// `X-Naru-Timeout-Ms` value (a per-request deadline).
    pub timeout_ms: Option<u64>,
}

/// A blocking client over one keep-alive connection.
pub struct NetClient {
    stream: TcpStream,
    limits: HttpLimits,
}

impl NetClient {
    /// Connects to a `naru-net` server, with a read timeout so a wedged
    /// benchmark run fails loudly instead of hanging.
    pub fn connect(addr: SocketAddr, read_timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_nodelay(true)?;
        // The read loop treats each timeout as one stall; size the stall
        // budget so the effective patience is ~100x the socket timeout.
        Ok(Self { stream, limits: HttpLimits { max_stall_reads: 100, ..HttpLimits::default() } })
    }

    /// Sends one request and reads one response.
    fn round_trip(&mut self, request: &str) -> Result<Response, ClientError> {
        self.stream.write_all(request.as_bytes())?;
        self.stream.flush()?;
        read_response(&mut self.stream, &self.limits).map_err(ClientError::Protocol)
    }

    /// `GET` any path, returning the raw response.
    pub fn get(&mut self, path: &str) -> Result<Response, ClientError> {
        self.round_trip(&format!("GET {path} HTTP/1.1\r\nHost: naru\r\n\r\n"))
    }

    /// Estimates one query with default lifecycle options.
    pub fn estimate(&mut self, query: &Query) -> Result<WireEstimate, ClientError> {
        self.estimate_with(query, RequestOptions::default())
    }

    /// Estimates one query, forwarding priority/deadline headers.
    pub fn estimate_with(&mut self, query: &Query, options: RequestOptions) -> Result<WireEstimate, ClientError> {
        let body = encode_query(query);
        let mut request = String::with_capacity(body.len() + 128);
        request.push_str("POST /estimate HTTP/1.1\r\nHost: naru\r\n");
        if let Some(priority) = options.priority {
            request.push_str(&format!("X-Naru-Priority: {priority}\r\n"));
        }
        if let Some(ms) = options.timeout_ms {
            request.push_str(&format!("X-Naru-Timeout-Ms: {ms}\r\n"));
        }
        request.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
        let response = self.round_trip(&request)?;
        if response.status != 200 {
            return Err(ClientError::Http { status: response.status, body: response.text() });
        }
        decode_served(&response.text()).map_err(ClientError::Decode)
    }
}
