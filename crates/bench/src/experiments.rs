//! One function per table / figure of the paper's evaluation (§6).
//!
//! Every function prints a plain-text report whose layout mirrors the
//! corresponding table or figure and also returns it as a `String` so the
//! binary can tee it into EXPERIMENTS.md. See DESIGN.md §5 for the
//! experiment-to-module index.

use std::time::Instant;

use naru_baselines::{
    Dbms1Estimator, Histogram1dConfig, IndepEstimator, KdeEstimator, KdeSupervised, MscnConfig, MscnEstimator,
    MultiDimHistogram, PostgresEstimator, SampleEstimator,
};
use naru_core::{
    entropy_gap_bits, table_tuples, train_model, ColumnwiseConfig, ColumnwiseModel, MadeModel, NaruConfig,
    NaruEstimator, NoisyOracle, OracleDensity, ProgressiveSampler, SamplerConfig, SamplingEstimator, TrainConfig,
};
use naru_data::synthetic::{conviva_a_like, conviva_b_like, dmv_like};
use naru_data::{shift, Table};
use naru_query::{
    generate_workload, q_error_from_selectivity, ErrorQuantiles, LabeledQuery, SelectivityEstimator, WorkloadConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::accuracy::{evaluate_all, evaluate_estimator, EstimatorResult};
use crate::config::ExperimentConfig;
use crate::report::{fmt_err, fmt_size, render_accuracy_table, TextTable};

/// The datasets used by the macrobenchmarks, built once per experiment.
pub struct Datasets;

impl Datasets {
    /// DMV-like table at the configured scale.
    pub fn dmv(cfg: &ExperimentConfig) -> Table {
        dmv_like(cfg.dmv_rows, cfg.seed)
    }

    /// Conviva-A-like table at the configured scale.
    pub fn conviva_a(cfg: &ExperimentConfig) -> Table {
        conviva_a_like(cfg.conviva_a_rows, cfg.seed + 1)
    }

    /// Conviva-B-like table (100 columns) at the configured scale.
    pub fn conviva_b(cfg: &ExperimentConfig) -> Table {
        conviva_b_like(cfg.conviva_b_rows, 100, cfg.seed + 2)
    }
}

fn section(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// Figure 4: distribution of true query selectivities produced by the
/// workload generator, as a CDF sampled at deciles.
pub fn fig4_selectivity_distribution(cfg: &ExperimentConfig) -> String {
    let mut out = section("Figure 4: query selectivity distribution");
    let mut table = TextTable::new(&["dataset", "p10", "p25", "p50", "p75", "p90", "zero-card %"]);
    for (name, data) in [("DMV", Datasets::dmv(cfg)), ("Conviva-A", Datasets::conviva_a(cfg))] {
        let mut rng = StdRng::seed_from_u64(cfg.seed + 10);
        let workload = generate_workload(&data, &WorkloadConfig::default(), cfg.workload_queries, &mut rng);
        let sels: Vec<f64> = workload.iter().map(|q| q.selectivity).collect();
        let zero = workload.iter().filter(|q| q.cardinality == 0).count();
        let q = |p: f64| naru_tensor::stats::percentile(&sels, p);
        table.add_row(vec![
            name.to_string(),
            format!("{:.4}", q(10.0)),
            format!("{:.4}", q(25.0)),
            format!("{:.4}", q(50.0)),
            format!("{:.4}", q(75.0)),
            format!("{:.4}", q(90.0)),
            format!("{:.1}%", 100.0 * zero as f64 / workload.len() as f64),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Trains a single Naru model for a dataset. Different progressive-sample
/// counts ("Naru-1000" vs "Naru-2000") reuse the same trained model through
/// [`NaruVariant`] — exactly what the paper does.
fn train_naru(table: &Table, base: &NaruConfig) -> NaruEstimator {
    let (estimator, report) = NaruEstimator::train(table, base);
    if let Some(gap) = report.final_entropy_gap_bits() {
        println!("  [naru] trained: final entropy gap {gap:.2} bits, size {}", fmt_size(estimator.size_bytes()));
    }
    estimator
}

/// Wraps one trained Naru estimator as several "Naru-S" pseudo-estimators
/// that share the same model but use different progressive-sample counts.
struct NaruVariant<'a> {
    inner: &'a NaruEstimator,
    samples: usize,
}

impl SelectivityEstimator for NaruVariant<'_> {
    fn name(&self) -> String {
        format!("Naru-{}", self.samples)
    }

    fn try_estimate(&self, query: &naru_query::Query) -> Result<naru_query::Estimate, naru_query::EstimateError> {
        self.inner.try_estimate_with_samples(query, self.samples)
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
}

/// Selectivity of a workload query through the fallible API; the generated
/// workloads are always in range, so errors cannot occur.
fn sel(est: &dyn SelectivityEstimator, query: &naru_query::Query) -> f64 {
    est.try_estimate(query).expect("workload query is valid").selectivity
}

/// Shared runner for Tables 3 and 4: builds the baseline line-up, trains
/// Naru, evaluates everything on a labeled workload.
#[allow(clippy::too_many_arguments)]
fn accuracy_experiment(
    title: &str,
    data: &Table,
    naru_config: &NaruConfig,
    cfg: &ExperimentConfig,
    workload_config: &WorkloadConfig,
    full_lineup: bool,
) -> (String, Vec<EstimatorResult>) {
    let mut out = section(title);
    let mut rng = StdRng::seed_from_u64(cfg.seed + 20);
    println!("  generating workload ({} queries)...", cfg.workload_queries);
    let workload = generate_workload(data, workload_config, cfg.workload_queries, &mut rng);
    let training = generate_workload(data, &WorkloadConfig::default(), cfg.training_queries, &mut rng);

    println!("  building baselines...");
    let budget = (data.decoded_size_bytes() as f64 * 0.013) as usize;
    let indep = IndepEstimator::build(data);
    let postgres = PostgresEstimator::build(data, &Histogram1dConfig::default());
    let dbms1 = Dbms1Estimator::build(data, &Histogram1dConfig::default(), 4);
    let hist = MultiDimHistogram::build_within_budget(data, budget.max(64 * 1024));
    let sample = SampleEstimator::build(data, cfg.sample_fraction, cfg.seed);
    let kde = KdeEstimator::build(data, cfg.kde_points, cfg.seed);
    let kde_superv = KdeSupervised::build(data, cfg.kde_points, cfg.seed, &training[..training.len().min(200)]);
    println!("  training MSCN...");
    let mscn_base =
        MscnEstimator::train(data, &training, &MscnConfig { sample_rows: 1000, epochs: 30, ..Default::default() });
    let mscn_zero =
        MscnEstimator::train(data, &training, &MscnConfig { sample_rows: 0, epochs: 30, ..Default::default() });

    println!("  training Naru...");
    let naru = train_naru(data, naru_config);
    let naru_variants: Vec<NaruVariant> =
        cfg.naru_sample_counts.iter().map(|&s| NaruVariant { inner: &naru, samples: s }).collect();

    let mut estimators: Vec<&dyn SelectivityEstimator> = Vec::new();
    if full_lineup {
        estimators.push(&hist);
        estimators.push(&indep);
        estimators.push(&postgres);
    }
    estimators.push(&dbms1);
    estimators.push(&sample);
    estimators.push(&kde);
    estimators.push(&kde_superv);
    estimators.push(&mscn_base);
    if full_lineup {
        estimators.push(&mscn_zero);
    }
    for v in &naru_variants {
        estimators.push(v);
    }

    println!("  evaluating {} estimators on {} queries...", estimators.len(), workload.len());
    let results = evaluate_all(&estimators, &workload, data.num_rows());
    let rows: Vec<_> = results.iter().map(EstimatorResult::to_row).collect();
    out.push_str(&render_accuracy_table(&rows));
    (out, results)
}

/// Table 3: estimation errors on the DMV-like dataset, full estimator
/// line-up, grouped by selectivity bucket.
pub fn table3_dmv(cfg: &ExperimentConfig) -> String {
    let data = Datasets::dmv(cfg);
    let (out, _) = accuracy_experiment(
        "Table 3: estimation errors on DMV",
        &data,
        &cfg.naru_dmv(),
        cfg,
        &WorkloadConfig::default(),
        true,
    );
    out
}

/// Table 4: estimation errors on the Conviva-A-like dataset (promising
/// baselines only, as in the paper).
pub fn table4_conviva_a(cfg: &ExperimentConfig) -> String {
    let data = Datasets::conviva_a(cfg);
    let (out, _) = accuracy_experiment(
        "Table 4: estimation errors on Conviva-A",
        &data,
        &cfg.naru_conviva_a(),
        cfg,
        &WorkloadConfig::default(),
        false,
    );
    out
}

/// Table 5: robustness to out-of-distribution queries on DMV.
pub fn table5_ood(cfg: &ExperimentConfig) -> String {
    let mut out = section("Table 5: robustness to OOD queries (DMV)");
    let data = Datasets::dmv(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed + 30);
    let workload = generate_workload(&data, &WorkloadConfig::out_of_distribution(), cfg.workload_queries, &mut rng);
    let zero = workload.iter().filter(|q| q.cardinality == 0).count();
    out.push_str(&format!("{} of {} OOD queries have zero true cardinality\n", zero, workload.len()));

    // In-distribution training queries, as in the paper (that is the point:
    // supervised methods never saw queries like these).
    let training = generate_workload(&data, &WorkloadConfig::default(), cfg.training_queries, &mut rng);
    let mscn =
        MscnEstimator::train(&data, &training, &MscnConfig { sample_rows: 1000, epochs: 30, ..Default::default() });
    let kde_superv = KdeSupervised::build(&data, cfg.kde_points, cfg.seed, &training[..training.len().min(200)]);
    let sample = SampleEstimator::build(&data, cfg.sample_fraction, cfg.seed);
    let (naru, _) = NaruEstimator::train(&data, &cfg.naru_dmv());

    let estimators: Vec<&dyn SelectivityEstimator> = vec![&mscn, &kde_superv, &sample, &naru];
    let mut table = TextTable::new(&["Estimator", "Median", "95th", "99th", "Max"]);
    for est in estimators {
        let result = evaluate_estimator(est, &workload, data.num_rows());
        let q = result.overall_quantiles().unwrap();
        table.add_row(vec![result.name, fmt_err(q.median), fmt_err(q.p95), fmt_err(q.p99), fmt_err(q.max)]);
    }
    out.push_str(&table.render());
    out
}

/// Figure 5: training time vs estimation quality (entropy gap and max
/// q-error after each epoch).
pub fn fig5_training_quality(cfg: &ExperimentConfig) -> String {
    let mut out = section("Figure 5: training time vs quality");
    for (name, data, naru_config) in
        [("DMV", Datasets::dmv(cfg), cfg.naru_dmv()), ("Conviva-A", Datasets::conviva_a(cfg), cfg.naru_conviva_a())]
    {
        let mut rng = StdRng::seed_from_u64(cfg.seed + 40);
        let eval_queries = generate_workload(&data, &WorkloadConfig::default(), 30, &mut rng);
        let mut model = MadeModel::new(data.schema().domain_sizes(), &naru_config.model);
        let data_entropy = data.data_entropy_bits();
        let tuples = table_tuples(&data);
        let eval_tuples: Vec<Vec<u32>> = tuples.iter().take(1000).cloned().collect();

        let mut table = TextTable::new(&["epoch", "seconds", "entropy gap (bits)", "max q-error"]);
        let mut total_seconds = 0.0;
        let epochs = naru_config.train.epochs;
        for epoch in 1..=epochs {
            let one = TrainConfig {
                epochs: 1,
                compute_data_entropy: false,
                eval_tuples: 0,
                seed: cfg.seed + epoch as u64,
                ..naru_config.train.clone()
            };
            let report = train_model(&mut model, &data, &one);
            total_seconds += report.epochs[0].seconds;
            let gap = entropy_gap_bits(&model, &eval_tuples, data_entropy);
            let sampler = ProgressiveSampler::new(SamplerConfig { num_samples: naru_config.num_samples, seed: 0 });
            let max_err = eval_queries
                .iter()
                .map(|lq| {
                    let est = sampler.estimate(&model, &lq.query.constraints(data.num_columns()));
                    q_error_from_selectivity(est, lq.selectivity, data.num_rows())
                })
                .fold(f64::MIN, f64::max);
            table.add_row(vec![
                epoch.to_string(),
                format!("{total_seconds:.1}"),
                format!("{gap:.2}"),
                fmt_err(max_err),
            ]);
        }
        out.push_str(&format!("\n[{name}] data entropy {data_entropy:.2} bits\n"));
        out.push_str(&table.render());
    }
    out
}

/// Figure 6: estimation latency per estimator (ms), as quantiles of the
/// per-query latency distribution.
pub fn fig6_latency(cfg: &ExperimentConfig) -> String {
    let mut out = section("Figure 6: estimation latency (ms)");
    let data = Datasets::dmv(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed + 50);
    let queries = cfg.workload_queries.min(60);
    let workload = generate_workload(&data, &WorkloadConfig::default(), queries, &mut rng);
    let training = generate_workload(&data, &WorkloadConfig::default(), cfg.training_queries.min(200), &mut rng);

    let postgres = PostgresEstimator::build(&data, &Histogram1dConfig::default());
    let dbms1 = Dbms1Estimator::build(&data, &Histogram1dConfig::default(), 4);
    let sample = SampleEstimator::build(&data, cfg.sample_fraction, cfg.seed);
    let kde = KdeEstimator::build(&data, cfg.kde_points, cfg.seed);
    let mscn =
        MscnEstimator::train(&data, &training, &MscnConfig { sample_rows: 1000, epochs: 15, ..Default::default() });
    let (naru, _) = NaruEstimator::train(&data, &cfg.naru_dmv());
    let naru_small = NaruVariant { inner: &naru, samples: cfg.naru_sample_counts[0] };

    let estimators: Vec<&dyn SelectivityEstimator> = vec![&postgres, &dbms1, &sample, &kde, &mscn, &naru_small, &naru];
    let mut table = TextTable::new(&["Estimator", "median ms", "p95 ms", "p99 ms", "max ms"]);
    for est in estimators {
        let result = evaluate_estimator(est, &workload, data.num_rows());
        let q = result.latency_quantiles().unwrap();
        table.add_row(vec![
            result.name,
            format!("{:.3}", q.median),
            format!("{:.3}", q.p95),
            format!("{:.3}", q.p99),
            format!("{:.3}", q.max),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Table 6: query region sizes at the 99th percentile vs the estimated cost
/// of exact enumeration vs Naru's measured progressive-sampling latency.
pub fn table6_region_size(cfg: &ExperimentConfig) -> String {
    let mut out = section("Table 6: query region size vs enumeration cost");
    let mut table = TextTable::new(&["dataset", "99%-tile region size", "enum (est.)", "Naru (measured)"]);
    for (name, data, naru_config) in
        [("DMV", Datasets::dmv(cfg), cfg.naru_dmv()), ("Conviva-A", Datasets::conviva_a(cfg), cfg.naru_conviva_a())]
    {
        let mut rng = StdRng::seed_from_u64(cfg.seed + 60);
        let workload = generate_workload(&data, &WorkloadConfig::default(), cfg.workload_queries.min(200), &mut rng);
        let schema = data.schema();
        let sizes: Vec<f64> = workload.iter().map(|lq| lq.query.region_size(&schema)).collect();
        let p99 = naru_tensor::stats::percentile(&sizes, 99.0);

        // Measure the model's per-point evaluation throughput on a small
        // batch, then extrapolate to the region size (the paper's "Enum
        // (est.)" column assumes peak throughput the same way).
        let (naru, _) = NaruEstimator::train(&data, &naru_config);
        let probe: Vec<Vec<u32>> = (0..256).map(|i| data.row(i % data.num_rows())).collect();
        let start = Instant::now();
        let _ = naru.model().log_likelihood_batch(&probe);
        let per_point_s = start.elapsed().as_secs_f64() / probe.len() as f64;
        let enum_hours = p99 * per_point_s / 3600.0;

        // Measured progressive-sampling latency at the 99th percentile.
        let lat_workload = &workload[..workload.len().min(40)];
        let result = evaluate_estimator(&naru, lat_workload, data.num_rows());
        let lat_p99 = result.latency_quantiles().unwrap().p99;

        table.add_row(vec![
            name.to_string(),
            format!("{:.2e}", p99),
            format!("{:.1} hr", enum_hours),
            format!("{:.1} ms", lat_p99),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Table 7: model size vs entropy gap on Conviva-A (scaling hidden width).
pub fn table7_model_size(cfg: &ExperimentConfig) -> String {
    let mut out = section("Table 7: model size vs entropy gap (Conviva-A)");
    let data = Datasets::conviva_a(cfg);
    let data_entropy = data.data_entropy_bits();
    let tuples = table_tuples(&data);
    let eval: Vec<Vec<u32>> = tuples.iter().take(1000).cloned().collect();

    let widths: Vec<usize> = match cfg.scale {
        crate::config::Scale::Quick => vec![16, 32, 64, 128],
        crate::config::Scale::Full => vec![32, 64, 128, 256],
    };
    let epochs = match cfg.scale {
        crate::config::Scale::Quick => 3,
        crate::config::Scale::Full => 5,
    };

    let mut table = TextTable::new(&["architecture", "size", "entropy gap (bits)"]);
    for &w in &widths {
        let base = cfg.naru_conviva_a();
        let model_config = naru_core::ModelConfig { hidden_sizes: vec![w; 4], ..base.model.clone() };
        let mut model = MadeModel::new(data.schema().domain_sizes(), &model_config);
        let train = TrainConfig { epochs, compute_data_entropy: false, eval_tuples: 0, ..base.train.clone() };
        train_model(&mut model, &data, &train);
        let gap = entropy_gap_bits(&model, &eval, data_entropy);
        table.add_row(vec![format!("{w}x{w}x{w}x{w}"), fmt_size(model.size_bytes()), format!("{gap:.2}")]);
    }
    out.push_str(&table.render());
    out
}

/// Figure 7: estimation accuracy as an artificial entropy gap is added to an
/// oracle model (Conviva-B projected to its first 15 columns).
pub fn fig7_entropy_gap(cfg: &ExperimentConfig) -> String {
    let mut out = section("Figure 7: accuracy vs model entropy gap (Conviva-B, 15 cols)");
    let data = Datasets::conviva_b(cfg).project_columns(15);
    let mut rng = StdRng::seed_from_u64(cfg.seed + 70);
    let num_queries = match cfg.scale {
        crate::config::Scale::Quick => 25,
        crate::config::Scale::Full => 50,
    };
    let workload = generate_workload(&data, &WorkloadConfig::default(), num_queries, &mut rng);
    let tuples = table_tuples(&data);
    let eval: Vec<Vec<u32>> = tuples.iter().take(300).cloned().collect();

    let gaps = [0.0, 0.5, 2.0, 5.0, 10.0, 20.0];
    let sample_counts = [50usize, 250, 1000];
    let indep = IndepEstimator::build(&data);
    let sample = SampleEstimator::build(&data, 0.01, cfg.seed);

    let mut header: Vec<String> = vec!["gap (bits)".to_string()];
    for &s in &sample_counts {
        header.push(format!("Naru-{s} max"));
    }
    header.push("Indep max".to_string());
    header.push("Sample(1%) max".to_string());
    let mut table = TextTable::new(&header.iter().map(String::as_str).collect::<Vec<_>>());

    let max_err = |est: &dyn SelectivityEstimator| -> f64 {
        workload
            .iter()
            .map(|lq| q_error_from_selectivity(sel(est, &lq.query), lq.selectivity, data.num_rows()))
            .fold(f64::MIN, f64::max)
    };
    let indep_max = max_err(&indep);
    let sample_max = max_err(&sample);

    for &target_gap in &gaps {
        let eps = naru_core::calibrate_epsilon(&data, &eval, target_gap);
        let mut cells = vec![format!("{target_gap:.1}")];
        for &s in &sample_counts {
            let noisy = NoisyOracle::new(OracleDensity::new(&data), eps);
            let est = SamplingEstimator::new(noisy, s, format!("Naru-{s}")).with_num_rows(data.num_rows() as u64);
            cells.push(fmt_err(max_err(&est)));
        }
        cells.push(fmt_err(indep_max));
        cells.push(fmt_err(sample_max));
        table.add_row(cells);
    }
    out.push_str(&table.render());
    out
}

/// Figure 8: accuracy as the number of columns grows (Conviva-B, oracle
/// model, progressive sampling with different path counts).
pub fn fig8_column_scaling(cfg: &ExperimentConfig) -> String {
    let mut out = section("Figure 8: accuracy vs number of columns (Conviva-B, oracle model)");
    let full = Datasets::conviva_b(cfg);
    let col_counts = [5usize, 15, 30, 50, 75, 100];
    let sample_counts: Vec<usize> = match cfg.scale {
        crate::config::Scale::Quick => vec![100, 1000],
        crate::config::Scale::Full => vec![100, 1000, 10_000],
    };
    let num_queries = match cfg.scale {
        crate::config::Scale::Quick => 15,
        crate::config::Scale::Full => 50,
    };

    let mut header: Vec<String> = vec!["columns".to_string(), "joint log10".to_string()];
    for &s in &sample_counts {
        header.push(format!("Naru-{s} max"));
    }
    header.push("Indep max".to_string());
    header.push("Sample(1%) max".to_string());
    let mut table = TextTable::new(&header.iter().map(String::as_str).collect::<Vec<_>>());

    for &k in &col_counts {
        let data = full.project_columns(k);
        let mut rng = StdRng::seed_from_u64(cfg.seed + 80 + k as u64);
        // The paper caps the number of predicates at 12 regardless of width.
        let wconfig = WorkloadConfig { min_filters: 5.min(k), max_filters: 12.min(k), ..Default::default() };
        let workload = generate_workload(&data, &wconfig, num_queries, &mut rng);
        let max_err = |est: &dyn SelectivityEstimator| -> f64 {
            workload
                .iter()
                .map(|lq| q_error_from_selectivity(sel(est, &lq.query), lq.selectivity, data.num_rows()))
                .fold(f64::MIN, f64::max)
        };
        let mut cells = vec![k.to_string(), format!("{:.0}", data.schema().joint_size_log10())];
        for &s in &sample_counts {
            let est = SamplingEstimator::new(OracleDensity::new(&data), s, format!("Naru-{s}"))
                .with_num_rows(data.num_rows() as u64);
            cells.push(fmt_err(max_err(&est)));
        }
        let indep = IndepEstimator::build(&data);
        let sample = SampleEstimator::build(&data, 0.01, cfg.seed);
        cells.push(fmt_err(max_err(&indep)));
        cells.push(fmt_err(max_err(&sample)));
        table.add_row(cells);
    }
    out.push_str(&table.render());
    out
}

/// Table 8: robustness to data shifts — DMV partitioned by date into five
/// ingests; a stale model vs one fine-tuned after each ingest.
pub fn table8_data_shift(cfg: &ExperimentConfig) -> String {
    let mut out = section("Table 8: robustness to data shifts (DMV, 5 ingests)");
    let data = Datasets::dmv(cfg);
    let date_col = data.column_index("valid_date").expect("dmv has valid_date");
    let parts = shift::partition_by_column(&data, date_col, 5);

    let naru_config = cfg.naru_dmv();
    // Both models start from the first partition.
    let (mut stale, _) = NaruEstimator::train(&parts[0], &naru_config);
    let (mut refreshed, _) = NaruEstimator::train(&parts[0], &naru_config);
    let num_queries = cfg.workload_queries.min(60);
    let samples = 2000.min(*cfg.naru_sample_counts.last().unwrap_or(&1000) * 2);
    stale.set_num_samples(samples);
    refreshed.set_num_samples(samples);

    let mut table = TextTable::new(&["ingested", "refreshed max", "refreshed p90", "stale max", "stale p90"]);
    for k in 1..=parts.len() {
        let visible = shift::ingested_prefix(&parts, k);
        if k > 1 {
            // Fine-tune the refreshed model on the newly ingested partition.
            let ft =
                TrainConfig { epochs: 2, compute_data_entropy: false, eval_tuples: 0, ..naru_config.train.clone() };
            naru_core::fine_tune(refreshed.model_mut(), &parts[k - 1], 2, &ft);
        }
        // Queries: literals drawn from the first partition, truths on all
        // data ingested so far (the paper's protocol).
        let mut rng = StdRng::seed_from_u64(cfg.seed + 90 + k as u64);
        let raw = generate_workload(&parts[0], &WorkloadConfig::default(), num_queries, &mut rng);
        let workload: Vec<LabeledQuery> = raw
            .into_iter()
            .map(|lq| {
                let selectivity = naru_query::true_selectivity(&visible, &lq.query);
                let cardinality = (selectivity * visible.num_rows() as f64).round() as u64;
                LabeledQuery { query: lq.query, selectivity, cardinality }
            })
            .collect();

        let summarize = |est: &NaruEstimator| -> (f64, f64) {
            let errs: Vec<f64> = workload
                .iter()
                .map(|lq| q_error_from_selectivity(sel(est, &lq.query), lq.selectivity, visible.num_rows()))
                .collect();
            let q = ErrorQuantiles::from_errors(&errs).unwrap();
            (q.max, naru_tensor::stats::percentile(&errs, 90.0))
        };
        let (r_max, r_p90) = summarize(&refreshed);
        let (s_max, s_p90) = summarize(&stale);
        table.add_row(vec![k.to_string(), fmt_err(r_max), fmt_err(r_p90), fmt_err(s_max), fmt_err(s_p90)]);
    }
    out.push_str(&table.render());
    out
}

/// §4.3 ablation: architecture A (per-column nets) vs architecture B (masked
/// MLP) at comparable parameter counts, compared by entropy gap.
pub fn ablation_architectures(cfg: &ExperimentConfig) -> String {
    let mut out = section("Ablation: architecture A (per-column nets) vs B (masked MLP)");
    let data = Datasets::conviva_a(cfg);
    let data_entropy = data.data_entropy_bits();
    let tuples = table_tuples(&data);
    let eval: Vec<Vec<u32>> = tuples.iter().take(1000).cloned().collect();
    let epochs = match cfg.scale {
        crate::config::Scale::Quick => 3,
        crate::config::Scale::Full => 8,
    };

    let base = cfg.naru_conviva_a();
    let mut made = MadeModel::new(data.schema().domain_sizes(), &base.model);
    let train = TrainConfig { epochs, compute_data_entropy: false, eval_tuples: 0, ..base.train.clone() };
    train_model(&mut made, &data, &train);
    let made_gap = entropy_gap_bits(&made, &eval, data_entropy);

    let mut columnwise = ColumnwiseModel::new(
        data.schema().domain_sizes(),
        &ColumnwiseConfig { hidden_sizes: vec![32, 32], ..Default::default() },
    );
    train_model(&mut columnwise, &data, &train);
    let col_gap = entropy_gap_bits(&columnwise, &eval, data_entropy);

    let mut table = TextTable::new(&["architecture", "params", "entropy gap (bits)"]);
    table.add_row(vec!["B: masked MLP".to_string(), made.param_count().to_string(), format!("{made_gap:.2}")]);
    table.add_row(vec![
        "A: per-column nets".to_string(),
        columnwise.param_count().to_string(),
        format!("{col_gap:.2}"),
    ]);
    out.push_str(&table.render());
    out
}

/// Ablation: progressive sampling vs naive uniform sampling on a skewed,
/// correlated workload (the §5.1 motivation).
pub fn ablation_sampling(cfg: &ExperimentConfig) -> String {
    let mut out = section("Ablation: progressive vs uniform sampling (oracle model, Conviva-B 15 cols)");
    let data = Datasets::conviva_b(cfg).project_columns(15);
    let mut rng = StdRng::seed_from_u64(cfg.seed + 99);
    let workload = generate_workload(&data, &WorkloadConfig::default(), 20, &mut rng);
    let oracle = OracleDensity::new(&data);
    let samples = 200;

    let mut table = TextTable::new(&["sampler", "median q-error", "max q-error"]);
    for progressive in [true, false] {
        let errs: Vec<f64> = workload
            .iter()
            .map(|lq| {
                let constraints = lq.query.constraints(data.num_columns());
                let est = if progressive {
                    ProgressiveSampler::new(SamplerConfig { num_samples: samples, seed: 0 })
                        .estimate(&oracle, &constraints)
                } else {
                    naru_core::uniform_sampling_estimate(&oracle, &constraints, samples, 0)
                };
                q_error_from_selectivity(est, lq.selectivity, data.num_rows())
            })
            .collect();
        let q = ErrorQuantiles::from_errors(&errs).unwrap();
        table.add_row(vec![
            if progressive { "progressive".to_string() } else { "uniform".to_string() },
            fmt_err(q.median),
            fmt_err(q.max),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    /// A miniature configuration so the experiment plumbing can be smoke
    /// tested inside the normal test suite.
    fn mini() -> ExperimentConfig {
        ExperimentConfig {
            scale: Scale::Quick,
            dmv_rows: 1200,
            conviva_a_rows: 1000,
            conviva_b_rows: 400,
            workload_queries: 12,
            training_queries: 40,
            naru_sample_counts: vec![50, 100],
            sample_fraction: 0.02,
            kde_points: 100,
            seed: 7,
        }
    }

    #[test]
    fn fig4_runs_and_reports_both_datasets() {
        let out = fig4_selectivity_distribution(&mini());
        assert!(out.contains("DMV"));
        assert!(out.contains("Conviva-A"));
    }

    #[test]
    fn fig8_runs_on_small_scale() {
        let mut cfg = mini();
        cfg.conviva_b_rows = 300;
        let out = fig8_column_scaling(&cfg);
        assert!(out.contains("columns"));
        assert!(out.contains("100"));
    }

    #[test]
    fn ablation_sampling_shows_progressive_no_worse() {
        let out = ablation_sampling(&mini());
        assert!(out.contains("progressive"));
        assert!(out.contains("uniform"));
    }
}
