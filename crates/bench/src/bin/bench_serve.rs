//! Serving-throughput benchmark: trains a MADE model, wraps it in the
//! `naru-serve` worker pool, and drives a closed-loop client fleet against
//! 1/2/4-worker configurations, writing `BENCH_serve.json`:
//!
//! * **single_session_batched** — the PR 4 reference point: one `Session`
//!   answering the whole request stream through one `estimate_batch` call
//!   (the `batched` mode of `BENCH_infer.json`, re-measured on the same
//!   hardware and workload so the serve numbers are directly comparable);
//! * **serve\[\]** — per worker count, two measured phases:
//!   * *throughput* (open-loop burst): every request submitted up front,
//!     so workers drain full micro-batches back to back — the sustained
//!     queries/sec the pool can serve;
//!   * *latency* (closed-loop): a small client fleet keeps one request in
//!     flight each, yielding the p50/p95 *queue-wait* (submission → worker
//!     dequeue, from [`ServeStats`]) and p50/p95 *end-to-end* latency
//!     (submission → response at the client) of an interactive workload.
//!
//! Every served selectivity is asserted bit-identical to the
//! single-session reference — the pool must never trade correctness for
//! throughput.
//!
//! ```text
//! cargo run --release -p naru-bench --bin bench_serve            # default scale
//! cargo run --release -p naru-bench --bin bench_serve -- --smoke # CI-sized
//! cargo run --release -p naru-bench --bin bench_serve -- --out path.json
//! ```
//!
//! [`ServeStats`]: naru_serve::ServeStats

use std::time::Instant;

use naru_bench::latency::latency_quantiles_json;
use naru_core::{NaruConfig, NaruEstimator};
use naru_data::synthetic::dmv_like;
use naru_query::{generate_workload, Query, WorkloadConfig};
use naru_serve::{ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct BenchScale {
    rows: usize,
    requests: usize,
    num_samples: usize,
    epochs: usize,
    label: &'static str,
}

const DEFAULT: BenchScale = BenchScale { rows: 5000, requests: 192, num_samples: 600, epochs: 3, label: "default" };
const SMOKE: BenchScale = BenchScale { rows: 600, requests: 24, num_samples: 100, epochs: 1, label: "smoke" };

/// Worker counts measured per run (the acceptance sweep).
const WORKER_COUNTS: &[usize] = &[1, 2, 4];

/// One measured serving configuration.
struct ServeRun {
    workers: usize,
    clients: usize,
    /// Open-loop burst throughput (all requests queued up front).
    queries_per_sec: f64,
    /// Closed-loop throughput (one request in flight per client).
    closed_loop_queries_per_sec: f64,
    /// Closed-loop per-request queue waits (ms).
    queue_wait_ms: Vec<f64>,
    /// Closed-loop per-request end-to-end latencies (ms).
    e2e_ms: Vec<f64>,
    /// Micro-batches executed across both phases.
    batches: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = DEFAULT;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => scale = SMOKE,
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            other => {
                eprintln!("unknown argument {other}; supported: --smoke, --out PATH");
                std::process::exit(2);
            }
        }
    }

    println!(
        "bench_serve [{}]: {} rows, {} requests, {} sample paths, {} training epochs",
        scale.label, scale.rows, scale.requests, scale.num_samples, scale.epochs
    );

    let table = dmv_like(scale.rows, 42);
    let n = table.num_columns();
    let mut config = NaruConfig::small().with_samples(scale.num_samples);
    config.train.epochs = scale.epochs;
    config.train.compute_data_entropy = false;
    config.train.eval_tuples = 0;
    let train_start = Instant::now();
    let (estimator, _) = NaruEstimator::train(&table, &config);
    let model_params = estimator.model().param_count();
    println!("trained MADE ({} params) in {:.1}s", model_params, train_start.elapsed().as_secs_f64());
    let engine = estimator.into_engine();

    // The request stream: a generated workload, cycled up to the request
    // budget so the queue actually fills.
    let mut rng = StdRng::seed_from_u64(7);
    let workload = generate_workload(&table, &WorkloadConfig::default(), scale.requests.min(64), &mut rng);
    let requests: Vec<Query> = (0..scale.requests).map(|i| workload[i % workload.len()].query.clone()).collect();

    // Reference: one session, one estimate_batch call over the whole
    // stream — the `batched` mode of BENCH_infer.json on this hardware.
    let mut session = engine.session();
    let _ = session.estimate(&requests[0]); // warm the scratch, like bench_infer
    let batch_start = Instant::now();
    let batch_results = session.estimate_batch(&requests);
    let batch_secs = batch_start.elapsed().as_secs_f64();
    let reference: Vec<f64> =
        batch_results.iter().map(|r| r.as_ref().expect("generated workload queries are valid").selectivity).collect();
    let single_session_qps = scale.requests as f64 / batch_secs;
    println!("single-session batched reference: {single_session_qps:.1} queries/sec");

    let mut runs: Vec<ServeRun> = Vec::new();
    for &workers in WORKER_COUNTS {
        let clients = (workers * 2).min(8);
        let server = Server::start(
            engine.clone(),
            ServeConfig::default().with_workers(workers).with_queue_capacity(scale.requests.max(64)).with_max_batch(16),
        );

        // Phase 1 — throughput, open-loop burst: queue the whole stream up
        // front so workers drain full micro-batches back to back, then
        // collect every response. This is the pool's sustained rate, with
        // no client round-trip idle on the critical path.
        let burst_start = Instant::now();
        let tickets: Vec<_> =
            requests.iter().map(|q| server.submit(q.clone()).expect("queue sized for burst")).collect();
        let selectivities: Vec<f64> =
            tickets.into_iter().map(|t| t.wait().expect("valid request").estimate.selectivity).collect();
        let burst_secs = burst_start.elapsed().as_secs_f64();
        assert_eq!(selectivities, reference, "served estimates must match the single-session reference bit-for-bit");

        // Phase 2 — latency, closed-loop: each client keeps one request in
        // flight (submit, wait, repeat), measuring what an interactive
        // caller observes.
        let mut queue_wait_ms = vec![0.0f64; scale.requests];
        let mut e2e_ms = vec![0.0f64; scale.requests];
        let closed_start = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let server = &server;
                    let requests = &requests;
                    scope.spawn(move || {
                        let mut measured = Vec::new();
                        let mut i = c;
                        while i < requests.len() {
                            let submitted = Instant::now();
                            let served = server.estimate(&requests[i]).expect("valid request");
                            let e2e = submitted.elapsed().as_secs_f64() * 1000.0;
                            let wait = served.stats.queue_wait.as_secs_f64() * 1000.0;
                            measured.push((i, wait, e2e));
                            i += clients;
                        }
                        measured
                    })
                })
                .collect();
            for handle in handles {
                for (i, wait, e2e) in handle.join().expect("client thread panicked") {
                    queue_wait_ms[i] = wait;
                    e2e_ms[i] = e2e;
                }
            }
        });
        let closed_secs = closed_start.elapsed().as_secs_f64();
        let metrics = server.shutdown();
        assert_eq!(metrics.served, 2 * scale.requests as u64, "every request in both phases must be served");

        let run = ServeRun {
            workers,
            clients,
            queries_per_sec: scale.requests as f64 / burst_secs,
            closed_loop_queries_per_sec: scale.requests as f64 / closed_secs,
            queue_wait_ms,
            e2e_ms,
            batches: metrics.batches,
        };
        println!(
            "{} worker(s): burst {:.1} queries/sec, closed-loop {:.1} queries/sec ({} clients, {} micro-batches)",
            run.workers, run.queries_per_sec, run.closed_loop_queries_per_sec, run.clients, run.batches
        );
        runs.push(run);
    }

    let best = runs.iter().map(|r| r.queries_per_sec).fold(0.0f64, f64::max);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", scale.label));
    out.push_str(&format!("  \"table_rows\": {},\n", scale.rows));
    out.push_str(&format!("  \"columns\": {n},\n"));
    out.push_str(&format!("  \"requests\": {},\n", scale.requests));
    out.push_str(&format!("  \"num_samples\": {},\n", scale.num_samples));
    out.push_str(&format!("  \"model_params\": {model_params},\n"));
    out.push_str(&format!("  \"threads\": {},\n", std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)));
    out.push_str(&format!("  \"single_session_batched\": {{\"queries_per_sec\": {single_session_qps:.2}}},\n"));
    out.push_str("  \"serve\": [\n");
    for (i, run) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"clients\": {}, \"queries_per_sec\": {:.2}, \"closed_loop_queries_per_sec\": {:.2}, \"batches\": {}, \"queue_wait\": {}, \"e2e\": {}}}{}\n",
            run.workers,
            run.clients,
            run.queries_per_sec,
            run.closed_loop_queries_per_sec,
            run.batches,
            latency_quantiles_json(&run.queue_wait_ms),
            latency_quantiles_json(&run.e2e_ms),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"best_queries_per_sec\": {best:.2},\n"));
    out.push_str(&format!(
        "  \"best_vs_single_session_batched\": {:.3}\n",
        if single_session_qps > 0.0 { best / single_session_qps } else { f64::INFINITY }
    ));
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("write BENCH_serve.json");

    println!(
        "\nbest serve throughput: {:.1} queries/sec ({:.3}x single-session batched)",
        best,
        best / single_session_qps
    );
    println!("wrote {out_path}");
}
