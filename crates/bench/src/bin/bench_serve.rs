//! Serving-throughput benchmark: trains a MADE model, wraps it in the
//! `naru-serve` worker pool, and drives a closed-loop client fleet against
//! 1/2/4-worker configurations, writing `BENCH_serve.json`:
//!
//! * **single_session_batched** — the PR 4 reference point: one `Session`
//!   answering the whole request stream through one `estimate_batch` call
//!   (the `batched` mode of `BENCH_infer.json`, re-measured on the same
//!   hardware and workload so the serve numbers are directly comparable);
//! * **serve\[\]** — per worker count, two measured phases:
//!   * *throughput* (open-loop burst): every request submitted up front,
//!     so workers drain full micro-batches back to back — the sustained
//!     queries/sec the pool can serve;
//!   * *latency* (closed-loop): a small client fleet keeps one request in
//!     flight each, yielding the p50/p95 *queue-wait* (submission → worker
//!     dequeue, from [`ServeStats`]) and p50/p95 *end-to-end* latency
//!     (submission → response at the client) of an interactive workload;
//!
//!   each entry also records its *scaling_efficiency* — burst throughput
//!   relative to a perfectly linear scale-up of the 1-worker pool — and
//!   the run prints a degradation warning when added workers stop paying
//!   for themselves (expected wherever workers outnumber cores);
//! * **fused_batch** — the same burst stream through two 1-worker pools
//!   that differ only in [`ServeConfig::fused_batching`]: fused pools
//!   answer each drained micro-batch through one cross-request
//!   `estimate_batch` call (constraints sorted batch-wide so shared
//!   column-prefix forward passes run once), unfused pools walk each
//!   request alone. Answers are asserted bit-identical either way and the
//!   fused pool must not lose on throughput;
//! * **skewed** — a Zipf-skewed, repetitive request stream served twice in
//!   the same run: once by the full tiered pipeline (exact-stats tier 0,
//!   sketch tier 1, model tier 2, predicate-keyed estimate cache) and once
//!   by a tier-2-only configuration (statistics stripped, cache off). The
//!   section records the cache hit rate, per-tier request counts and
//!   end-to-end latency quantiles (keyed by each answer's `Provenance`),
//!   and both throughputs; the run asserts the tiered configuration is
//!   strictly faster on this workload;
//! * **overload** — three request classes (interactive / batch /
//!   best-effort) storm a small pool with more offered work than it can
//!   absorb, twice in the same run: once with priority lanes plus a
//!   [`DegradePolicy`] that routes the deadline-carrying background
//!   classes to cheap degraded walks, and once through a single FIFO lane
//!   at uniform full quality. Mid-storm, a handful of already-expired
//!   requests must shed and a handful of cancelled tickets must be
//!   skipped. The run asserts the interactive p95 under priority
//!   scheduling beats the FIFO baseline, and that
//!   `served + failed + shed + cancelled == accepted` holds exactly;
//! * **network** — the same stream once more, but through the `naru-net`
//!   HTTP front end over loopback TCP: a client fleet (one keep-alive
//!   connection each) wire-encodes every query, POSTs it to `/estimate`,
//!   and decodes the response. Every networked answer is asserted
//!   bit-identical to the single-session reference (the wire format's
//!   float round-trip is lossless), giving loopback throughput and
//!   end-to-end latency quantiles directly comparable to the in-process
//!   closed-loop numbers — the delta is protocol + loopback cost.
//!
//! The uniform phases serve through a stats-less engine so every served
//! selectivity is asserted bit-identical to the single-session model
//! reference — the pool must never trade correctness for throughput. The
//! skewed phase is where the fast tiers are allowed to answer.
//!
//! ```text
//! cargo run --release -p naru-bench --bin bench_serve            # default scale
//! cargo run --release -p naru-bench --bin bench_serve -- --smoke # CI-sized
//! cargo run --release -p naru-bench --bin bench_serve -- --out path.json
//! ```
//!
//! [`ServeStats`]: naru_serve::ServeStats

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use naru_bench::client::NetClient;
use naru_bench::latency::latency_quantiles_json;
use naru_core::{NaruConfig, NaruEstimator};
use naru_data::synthetic::dmv_like;
use naru_net::{NetConfig, NetServer};
use naru_query::{generate_workload, Predicate, Provenance, Query, WorkloadConfig};
use naru_serve::{DegradePolicy, ServeConfig, ServeError, Server, SubmitOptions, Ticket};
use naru_tensor::stats::percentile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct BenchScale {
    rows: usize,
    requests: usize,
    num_samples: usize,
    epochs: usize,
    label: &'static str,
}

const DEFAULT: BenchScale = BenchScale { rows: 5000, requests: 192, num_samples: 600, epochs: 3, label: "default" };
const SMOKE: BenchScale = BenchScale { rows: 600, requests: 24, num_samples: 100, epochs: 1, label: "smoke" };

/// Worker counts measured per run (the acceptance sweep).
const WORKER_COUNTS: &[usize] = &[1, 2, 4];

/// One measured serving configuration.
struct ServeRun {
    workers: usize,
    clients: usize,
    /// Open-loop burst throughput (all requests queued up front).
    queries_per_sec: f64,
    /// Closed-loop throughput (one request in flight per client).
    closed_loop_queries_per_sec: f64,
    /// Closed-loop per-request queue waits (ms).
    queue_wait_ms: Vec<f64>,
    /// Closed-loop per-request end-to-end latencies (ms).
    e2e_ms: Vec<f64>,
    /// Micro-batches executed across both phases.
    batches: u64,
    /// Micro-batches answered through the fused cross-request walk.
    fused_batches: u64,
}

/// Requests each overload-storm class keeps in flight at once.
const STORM_WINDOW: usize = 8;

/// Drives one class's stream with a sliding window of `STORM_WINDOW`
/// requests in flight, returning the end-to-end latency (ms) of every
/// served request. With `extras`, injects the mid-storm chaos batch.
fn storm_class(server: &Server, queries: &[Query], count: usize, options: SubmitOptions, extras: bool) -> Vec<f64> {
    let mut e2e = Vec::with_capacity(count);
    let mut inflight: VecDeque<(Instant, Ticket)> = VecDeque::new();
    for i in 0..count {
        if extras && i == count / 2 {
            storm_extras(server, queries);
        }
        while inflight.len() >= STORM_WINDOW {
            let (submitted, ticket) = inflight.pop_front().expect("window non-empty");
            ticket.wait().expect("overload request must be served");
            e2e.push(submitted.elapsed().as_secs_f64() * 1000.0);
        }
        let ticket = server.submit_with(queries[i % queries.len()].clone(), options).expect("server admitting");
        inflight.push_back((Instant::now(), ticket));
    }
    for (submitted, ticket) in inflight {
        ticket.wait().expect("overload request must be served");
        e2e.push(submitted.elapsed().as_secs_f64() * 1000.0);
    }
    e2e
}

/// Mid-storm chaos: four requests admitted with an already-expired
/// deadline (the pool must shed every one) and four tickets cancelled
/// right after admission (workers must skip them).
fn storm_extras(server: &Server, queries: &[Query]) {
    let expired: Vec<Ticket> = (0..4)
        .map(|i| {
            let options = SubmitOptions::best_effort().deadline_within(Duration::ZERO);
            server.submit_with(queries[i % queries.len()].clone(), options).expect("server admitting")
        })
        .collect();
    for ticket in expired {
        assert!(
            matches!(ticket.wait(), Err(ServeError::DeadlineExceeded)),
            "a zero-budget request must be shed, not served"
        );
    }
    for i in 0..4 {
        server
            .submit_with(queries[i % queries.len()].clone(), SubmitOptions::batch())
            .expect("server admitting")
            .cancel();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = DEFAULT;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => scale = SMOKE,
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            other => {
                eprintln!("unknown argument {other}; supported: --smoke, --out PATH");
                #[allow(clippy::disallowed_methods)] // CLI usage error: exit before any state exists
                std::process::exit(2);
            }
        }
    }

    println!(
        "bench_serve [{}]: {} rows, {} requests, {} sample paths, {} training epochs",
        scale.label, scale.rows, scale.requests, scale.num_samples, scale.epochs
    );

    let table = dmv_like(scale.rows, 42);
    let n = table.num_columns();
    let mut config = NaruConfig::small().with_samples(scale.num_samples);
    config.train.epochs = scale.epochs;
    config.train.compute_data_entropy = false;
    config.train.eval_tuples = 0;
    let train_start = Instant::now();
    let (estimator, _) = NaruEstimator::train(&table, &config);
    let model_params = estimator.model().param_count();
    println!("trained MADE ({} params) in {:.1}s", model_params, train_start.elapsed().as_secs_f64());
    // `tiered_engine` carries the exact-statistics sidecar built during
    // training (used by the skewed phase); the uniform phases serve through
    // the stats-less clone so every answer comes from the model and can be
    // asserted bit-identical to the single-session reference.
    let tiered_engine = estimator.into_engine();
    let engine = tiered_engine.clone().without_table_stats();

    // The request stream: a generated workload, cycled up to the request
    // budget so the queue actually fills.
    let mut rng = StdRng::seed_from_u64(7);
    let workload = generate_workload(&table, &WorkloadConfig::default(), scale.requests.min(64), &mut rng);
    let requests: Vec<Query> = (0..scale.requests).map(|i| workload[i % workload.len()].query.clone()).collect();

    // Reference: one session, one estimate_batch call over the whole
    // stream — the `batched` mode of BENCH_infer.json on this hardware.
    let mut session = engine.session();
    let _ = session.estimate(&requests[0]); // warm the scratch, like bench_infer
    let batch_start = Instant::now();
    let batch_results = session.estimate_batch(&requests);
    let batch_secs = batch_start.elapsed().as_secs_f64();
    let reference: Vec<f64> =
        batch_results.iter().map(|r| r.as_ref().expect("generated workload queries are valid").selectivity).collect();
    let single_session_qps = scale.requests as f64 / batch_secs;
    println!("single-session batched reference: {single_session_qps:.1} queries/sec");

    // Open-loop burst: queue the whole stream up front so workers drain
    // full micro-batches back to back, then collect every response. This is
    // the pool's sustained rate, with no client round-trip idle on the
    // critical path. Shared by the worker sweep and the fused-batch phase.
    let run_burst = |server: &Server| -> f64 {
        let burst_start = Instant::now();
        let tickets: Vec<_> =
            requests.iter().map(|q| server.submit(q.clone()).expect("queue sized for burst")).collect();
        let selectivities: Vec<f64> =
            tickets.into_iter().map(|t| t.wait().expect("valid request").estimate.selectivity).collect();
        let burst_secs = burst_start.elapsed().as_secs_f64();
        assert_eq!(selectivities, reference, "served estimates must match the single-session reference bit-for-bit");
        scale.requests as f64 / burst_secs
    };

    let mut runs: Vec<ServeRun> = Vec::new();
    for &workers in WORKER_COUNTS {
        let clients = (workers * 2).min(8);
        let server = Server::start(
            engine.clone(),
            ServeConfig::default().with_workers(workers).with_queue_capacity(scale.requests.max(64)).with_max_batch(16),
        )
        .expect("valid serve config");

        // Phase 1 — throughput.
        let burst_qps = run_burst(&server);

        // Phase 2 — latency, closed-loop: each client keeps one request in
        // flight (submit, wait, repeat), measuring what an interactive
        // caller observes.
        let mut queue_wait_ms = vec![0.0f64; scale.requests];
        let mut e2e_ms = vec![0.0f64; scale.requests];
        let closed_start = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let server = &server;
                    let requests = &requests;
                    scope.spawn(move || {
                        let mut measured = Vec::new();
                        let mut i = c;
                        while i < requests.len() {
                            let submitted = Instant::now();
                            let served = server.estimate(&requests[i]).expect("valid request");
                            let e2e = submitted.elapsed().as_secs_f64() * 1000.0;
                            let wait = served.stats.queue_wait.as_secs_f64() * 1000.0;
                            measured.push((i, wait, e2e));
                            i += clients;
                        }
                        measured
                    })
                })
                .collect();
            for handle in handles {
                for (i, wait, e2e) in handle.join().expect("client thread panicked") {
                    queue_wait_ms[i] = wait;
                    e2e_ms[i] = e2e;
                }
            }
        });
        let closed_secs = closed_start.elapsed().as_secs_f64();
        let metrics = server.shutdown();
        assert_eq!(metrics.served, 2 * scale.requests as u64, "every request in both phases must be served");

        let run = ServeRun {
            workers,
            clients,
            queries_per_sec: burst_qps,
            closed_loop_queries_per_sec: scale.requests as f64 / closed_secs,
            queue_wait_ms,
            e2e_ms,
            batches: metrics.batches,
            fused_batches: metrics.fused_batches,
        };
        println!(
            "{} worker(s): burst {:.1} queries/sec, closed-loop {:.1} queries/sec ({} clients, {} micro-batches)",
            run.workers, run.queries_per_sec, run.closed_loop_queries_per_sec, run.clients, run.batches
        );
        runs.push(run);
    }

    // Scaling efficiency per worker count: burst throughput relative to a
    // perfectly linear scale-up of the 1-worker pool. On a box with fewer
    // cores than workers the extra threads only add contention, so a low
    // number here is a property of the hardware, not a regression — it is
    // reported (and warned about) rather than asserted.
    let one_worker_qps =
        runs.iter().find(|r| r.workers == 1).map(|r| r.queries_per_sec).expect("WORKER_COUNTS starts at one worker");
    let scaling_efficiency: Vec<f64> =
        runs.iter().map(|r| r.queries_per_sec / (r.workers as f64 * one_worker_qps)).collect();
    for (run, &eff) in runs.iter().zip(scaling_efficiency.iter()) {
        if run.workers > 1 && eff < 0.5 {
            println!(
                "warning: {} workers reach {:.0}% scaling efficiency — adding workers degrades per-worker \
                 throughput on this host ({} core(s) detected)",
                run.workers,
                eff * 100.0,
                std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
            );
        }
    }

    // ---- Fused-batch phase: cross-request fused walks on vs off ----
    //
    // Same pool shape, same burst stream; the only difference is
    // `ServeConfig::fused_batching`. With it on, a drained micro-batch of
    // plain full-walk requests is answered through one `estimate_batch`
    // call, so constraint sorting and shared column-prefix forward passes
    // amortize across the batch. With it off, each request walks alone.
    // Answers are bit-identical either way; only throughput may differ.
    let fused_config =
        ServeConfig::default().with_workers(1).with_queue_capacity(scale.requests.max(64)).with_max_batch(16);
    let fused_server = Server::start(engine.clone(), fused_config.clone()).expect("valid serve config");
    let fused_qps = run_burst(&fused_server);
    let fused_metrics = fused_server.shutdown();
    assert!(fused_metrics.fused_batches > 0, "a burst through a fused pool must exercise the fused walk");

    let unfused_server =
        Server::start(engine.clone(), fused_config.with_fused_batching(false)).expect("valid serve config");
    let unfused_qps = run_burst(&unfused_server);
    let unfused_metrics = unfused_server.shutdown();
    assert_eq!(unfused_metrics.fused_batches, 0, "a non-fused pool must never take the fused path");

    println!(
        "fused batch walks: fused {:.1} queries/sec ({} fused micro-batches) vs unfused {:.1} queries/sec ({:.3}x)",
        fused_qps,
        fused_metrics.fused_batches,
        unfused_qps,
        fused_qps / unfused_qps
    );
    assert!(
        fused_qps >= unfused_qps,
        "fused batch walks must not lose to per-request walks on a saturating burst: \
         {fused_qps:.1} vs {unfused_qps:.1} queries/sec"
    );

    // ---- Skewed phase: tiered pipeline + cache vs tier-2-only ----
    //
    // Production estimation traffic is repetitive and much of it is easy;
    // this phase measures what the tiered pipeline buys on such a stream.
    // A Zipf-ish distribution over a small pool of distinct queries (easy
    // single-column probes first — the hot head — hard model-tier
    // conjunctions in the tail) is served by the full tiered engine with
    // the estimate cache on, then by the same model with statistics
    // stripped and the cache off. Determinism makes the two answer streams
    // comparable; the tiered run must be strictly faster.
    let skew_workers = WORKER_COUNTS.iter().copied().max().unwrap();
    let skew_clients = (skew_workers * 2).min(8);
    let skewed_requests = scale.requests * 2;

    let mut pool: Vec<Query> = vec![
        Query::all(),
        Query::new(vec![Predicate::eq(0, 1)]),
        Query::new(vec![Predicate::eq(1, 2)]),
        Query::new(vec![Predicate::le(6, 900)]),
        Query::new(vec![Predicate::ge(7, 1)]),
        Query::new(vec![Predicate::eq(0, 1), Predicate::le(6, 1200)]),
        Query::new(vec![Predicate::eq(1, 2), Predicate::ge(7, 1)]),
    ];
    pool.extend(workload.iter().take(16).map(|lq| lq.query.clone()));
    let weights: Vec<f64> = (0..pool.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let weight_total: f64 = weights.iter().sum();
    let mut skew_rng = StdRng::seed_from_u64(11);
    let skewed: Vec<Query> = (0..skewed_requests)
        .map(|_| {
            let mut r = skew_rng.gen_range(0.0..weight_total);
            let mut idx = 0;
            for (i, w) in weights.iter().enumerate() {
                idx = i;
                if r < *w {
                    break;
                }
                r -= w;
            }
            pool[idx].clone()
        })
        .collect();

    let run_closed_loop = |server: &Server, requests: &[Query]| -> (f64, Vec<(Provenance, f64)>) {
        let start = Instant::now();
        let mut results: Vec<(Provenance, f64)> = Vec::with_capacity(requests.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..skew_clients)
                .map(|c| {
                    scope.spawn(move || {
                        let mut measured = Vec::new();
                        let mut i = c;
                        while i < requests.len() {
                            let submitted = Instant::now();
                            let served = server.estimate(&requests[i]).expect("valid request");
                            measured.push((served.estimate.provenance, submitted.elapsed().as_secs_f64() * 1000.0));
                            i += skew_clients;
                        }
                        measured
                    })
                })
                .collect();
            for handle in handles {
                results.extend(handle.join().expect("client thread panicked"));
            }
        });
        (start.elapsed().as_secs_f64(), results)
    };

    let skew_config = ServeConfig::default()
        .with_workers(skew_workers)
        .with_queue_capacity(skewed_requests.max(64))
        .with_max_batch(16);
    let tiered_server =
        Server::start(tiered_engine.clone(), skew_config.clone().with_cache_capacity(512)).expect("valid serve config");
    let (tiered_secs, tiered_results) = run_closed_loop(&tiered_server, &skewed);
    let tiered_metrics = tiered_server.shutdown();
    assert_eq!(
        tiered_metrics.cache_hits + tiered_metrics.served,
        skewed_requests as u64,
        "every skewed request is either a cache hit or served by a worker"
    );

    let model_server = Server::start(engine.clone(), skew_config).expect("valid serve config");
    let (model_secs, _) = run_closed_loop(&model_server, &skewed);
    let model_metrics = model_server.shutdown();
    assert_eq!(model_metrics.served, skewed_requests as u64);
    assert_eq!(model_metrics.tier2_served, skewed_requests as u64, "the stripped engine must serve all-model");

    let tiered_qps = skewed_requests as f64 / tiered_secs;
    let tier2_only_qps = skewed_requests as f64 / model_secs;
    let cache_hit_rate = tiered_metrics.cache_hit_rate().unwrap_or(0.0);
    println!(
        "skewed ({} requests, {} distinct): tiered {:.1} queries/sec vs tier-2-only {:.1} queries/sec ({:.2}x), cache hit rate {:.1}%",
        skewed_requests,
        pool.len(),
        tiered_qps,
        tier2_only_qps,
        tiered_qps / tier2_only_qps,
        100.0 * cache_hit_rate
    );
    assert!(
        tiered_qps > tier2_only_qps,
        "tiered serving ({tiered_qps:.1} qps) must beat the all-model configuration ({tier2_only_qps:.1} qps) on the skewed workload"
    );

    // ---- Overload phase: priority lanes + degradation vs FIFO baseline ----
    //
    // Three classes storm a deliberately small pool (more offered work than
    // it can absorb). In the priority run the background classes carry
    // comfortable deadlines and a DegradePolicy whose budgets sit far above
    // any real walk time, so every deadline-carrying request takes the
    // cheap degraded rung deterministically while the interactive class
    // runs at full quality; the baseline pushes the identical streams
    // through one FIFO lane at uniform full quality. Same binary, same
    // machine, same model — the delta is pure scheduling policy.
    let overload_workers = 2;
    let per_class = scale.requests;
    let overload_config =
        ServeConfig::default().with_workers(overload_workers).with_queue_capacity(48).with_max_batch(8);
    let degrade = DegradePolicy::default()
        .with_full_walk_budget(Duration::from_secs(600))
        .with_sketch_budget(Duration::from_secs(300))
        .with_sketch_fallback_samples(16);
    let background_deadline = Duration::from_secs(60);

    let priority_server =
        Server::start(engine.clone(), overload_config.clone().with_degrade(degrade)).expect("valid serve config");
    let priority_options = [
        SubmitOptions::interactive(),
        SubmitOptions::batch().deadline_within(background_deadline),
        SubmitOptions::best_effort().deadline_within(background_deadline),
    ];
    let mut priority_e2e: [Vec<f64>; 3] = Default::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = priority_options
            .iter()
            .enumerate()
            .map(|(class, &options)| {
                let server = &priority_server;
                let requests = &requests;
                scope.spawn(move || storm_class(server, requests, per_class, options, class == 2))
            })
            .collect();
        for (class, handle) in handles.into_iter().enumerate() {
            priority_e2e[class] = handle.join().expect("storm thread panicked");
        }
    });
    let priority_metrics = priority_server.shutdown();
    assert_eq!(priority_metrics.shed, 4, "every zero-budget chaos request must shed");
    assert!(priority_metrics.cancelled > 0, "cancelled chaos tickets must be skipped by workers");
    assert_eq!(
        priority_metrics.degraded_served,
        2 * per_class as u64,
        "every deadline-carrying background request must be served degraded"
    );
    assert_eq!(
        priority_metrics.accounted(),
        priority_metrics.accepted,
        "served + failed + shed + cancelled must equal accepted"
    );

    let baseline_server = Server::start(engine.clone(), overload_config).expect("valid serve config");
    let mut baseline_e2e: [Vec<f64>; 3] = Default::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let server = &baseline_server;
                let requests = &requests;
                scope.spawn(move || storm_class(server, requests, per_class, SubmitOptions::default(), false))
            })
            .collect();
        for (class, handle) in handles.into_iter().enumerate() {
            baseline_e2e[class] = handle.join().expect("storm thread panicked");
        }
    });
    let baseline_metrics = baseline_server.shutdown();
    assert_eq!(baseline_metrics.served, 3 * per_class as u64);

    let interactive_p95 = percentile(&priority_e2e[0], 95.0);
    let baseline_p95 = percentile(&baseline_e2e[0], 95.0);
    println!(
        "overload ({} workers, {} requests/class): interactive p95 {:.2}ms with priority+degradation vs {:.2}ms FIFO ({:.2}x); {} shed, {} cancelled, {} degraded",
        overload_workers,
        per_class,
        interactive_p95,
        baseline_p95,
        baseline_p95 / interactive_p95,
        priority_metrics.shed,
        priority_metrics.cancelled,
        priority_metrics.degraded_served
    );
    assert!(
        interactive_p95 < baseline_p95,
        "interactive p95 under priority scheduling ({interactive_p95:.2}ms) must beat the FIFO baseline ({baseline_p95:.2}ms)"
    );

    // ---- Network phase: loopback HTTP through the naru-net front end ----
    //
    // Same engine, same request stream, but every query now crosses a real
    // TCP connection: wire-encode, HTTP POST, parse, queue, respond. Each
    // client keeps one request in flight on its own keep-alive connection,
    // so the numbers line up with the in-process closed-loop phase and the
    // delta is pure protocol + loopback cost.
    let net_workers = 2;
    let net_clients = 4;
    let net_serve = Server::start(
        engine.clone(),
        ServeConfig::default().with_workers(net_workers).with_queue_capacity(scale.requests.max(64)).with_max_batch(8),
    )
    .expect("valid serve config");
    let net_server =
        NetServer::start(net_serve, NetConfig::default().with_handler_threads(net_clients)).expect("loopback bind");
    let net_addr = net_server.local_addr();
    let mut net_e2e = vec![0.0f64; scale.requests];
    let net_start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..net_clients)
            .map(|c| {
                let requests = &requests;
                let reference = &reference;
                scope.spawn(move || {
                    let mut client = NetClient::connect(net_addr, Duration::from_secs(10)).expect("loopback connect");
                    let mut measured = Vec::new();
                    let mut i = c;
                    while i < requests.len() {
                        let submitted = Instant::now();
                        let served = client.estimate(&requests[i]).expect("loopback request served");
                        assert_eq!(
                            served.estimate.selectivity, reference[i],
                            "networked estimates must match the single-session reference bit-for-bit"
                        );
                        measured.push((i, submitted.elapsed().as_secs_f64() * 1000.0));
                        i += net_clients;
                    }
                    measured
                })
            })
            .collect();
        for handle in handles {
            for (i, ms) in handle.join().expect("network client panicked") {
                net_e2e[i] = ms;
            }
        }
    });
    let net_secs = net_start.elapsed().as_secs_f64();
    let net_metrics = net_server.shutdown();
    assert_eq!(net_metrics.served, scale.requests as u64, "every loopback request must be served");
    assert_eq!(net_metrics.accounted(), net_metrics.accepted, "network phase must preserve the accounting identity");
    let net_qps = scale.requests as f64 / net_secs;
    println!(
        "network loopback ({net_workers} workers, {net_clients} HTTP clients): {net_qps:.1} queries/sec end to end"
    );

    // Per-tier counts and end-to-end latency quantiles, keyed by each
    // response's provenance as the client saw it.
    let tier_json = |provenance: Provenance| -> String {
        let lat: Vec<f64> = tiered_results.iter().filter(|(p, _)| *p == provenance).map(|&(_, ms)| ms).collect();
        if lat.is_empty() {
            "{\"count\": 0, \"latency\": null}".to_string()
        } else {
            format!("{{\"count\": {}, \"latency\": {}}}", lat.len(), latency_quantiles_json(&lat))
        }
    };

    let best = runs.iter().map(|r| r.queries_per_sec).fold(0.0f64, f64::max);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", scale.label));
    out.push_str(&format!("  \"table_rows\": {},\n", scale.rows));
    out.push_str(&format!("  \"columns\": {n},\n"));
    out.push_str(&format!("  \"requests\": {},\n", scale.requests));
    out.push_str(&format!("  \"num_samples\": {},\n", scale.num_samples));
    out.push_str(&format!("  \"model_params\": {model_params},\n"));
    let threads_detected = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    out.push_str(&format!("  \"threads_detected\": {threads_detected},\n"));
    out.push_str(&format!("  \"threads_used\": {skew_workers},\n"));
    out.push_str(&format!("  \"single_session_batched\": {{\"queries_per_sec\": {single_session_qps:.2}}},\n"));
    out.push_str("  \"serve\": [\n");
    for (i, run) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"clients\": {}, \"queries_per_sec\": {:.2}, \"closed_loop_queries_per_sec\": {:.2}, \"scaling_efficiency\": {:.3}, \"batches\": {}, \"fused_batches\": {}, \"queue_wait\": {}, \"e2e\": {}}}{}\n",
            run.workers,
            run.clients,
            run.queries_per_sec,
            run.closed_loop_queries_per_sec,
            scaling_efficiency[i],
            run.batches,
            run.fused_batches,
            latency_quantiles_json(&run.queue_wait_ms),
            latency_quantiles_json(&run.e2e_ms),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"fused_batch\": {\n");
    out.push_str("    \"workers\": 1,\n");
    out.push_str(&format!("    \"requests\": {},\n", scale.requests));
    out.push_str(&format!(
        "    \"fused\": {{\"queries_per_sec\": {fused_qps:.2}, \"fused_batches\": {}}},\n",
        fused_metrics.fused_batches
    ));
    out.push_str(&format!("    \"unfused\": {{\"queries_per_sec\": {unfused_qps:.2}, \"fused_batches\": 0}},\n"));
    out.push_str(&format!("    \"fused_vs_unfused\": {:.3}\n", fused_qps / unfused_qps));
    out.push_str("  },\n");
    out.push_str("  \"skewed\": {\n");
    out.push_str(&format!("    \"requests\": {skewed_requests},\n"));
    out.push_str(&format!("    \"distinct_queries\": {},\n", pool.len()));
    out.push_str(&format!("    \"workers\": {skew_workers},\n"));
    out.push_str(&format!("    \"clients\": {skew_clients},\n"));
    out.push_str(&format!(
        "    \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4}}},\n",
        tiered_metrics.cache_hits, tiered_metrics.cache_misses, tiered_metrics.cache_evictions, cache_hit_rate
    ));
    out.push_str("    \"tiers\": {\n");
    let tier_order = [
        Provenance::Tier0Exact,
        Provenance::Tier1Sketch,
        Provenance::Tier2Model,
        Provenance::Relaxed,
        Provenance::Degraded,
        Provenance::CacheHit,
    ];
    for (i, provenance) in tier_order.iter().enumerate() {
        out.push_str(&format!(
            "      \"{}\": {}{}\n",
            provenance.label(),
            tier_json(*provenance),
            if i + 1 < tier_order.len() { "," } else { "" }
        ));
    }
    out.push_str("    },\n");
    out.push_str(&format!("    \"tiered_queries_per_sec\": {tiered_qps:.2},\n"));
    out.push_str(&format!("    \"tier2_only_queries_per_sec\": {tier2_only_qps:.2},\n"));
    out.push_str(&format!("    \"tiered_vs_tier2_only\": {:.3}\n", tiered_qps / tier2_only_qps));
    out.push_str("  },\n");
    out.push_str("  \"overload\": {\n");
    out.push_str(&format!("    \"workers\": {overload_workers},\n"));
    out.push_str(&format!("    \"per_class_requests\": {per_class},\n"));
    out.push_str(&format!("    \"window\": {STORM_WINDOW},\n"));
    out.push_str(&format!("    \"shed\": {},\n", priority_metrics.shed));
    out.push_str(&format!("    \"cancelled\": {},\n", priority_metrics.cancelled));
    out.push_str(&format!("    \"degraded\": {},\n", priority_metrics.degraded_served));
    out.push_str(&format!(
        "    \"priority\": {{\"interactive_e2e\": {}, \"batch_e2e\": {}, \"best_effort_e2e\": {}}},\n",
        latency_quantiles_json(&priority_e2e[0]),
        latency_quantiles_json(&priority_e2e[1]),
        latency_quantiles_json(&priority_e2e[2])
    ));
    out.push_str(&format!(
        "    \"baseline\": {{\"interactive_e2e\": {}}},\n",
        latency_quantiles_json(&baseline_e2e[0])
    ));
    out.push_str(&format!("    \"interactive_p95_ms\": {interactive_p95:.3},\n"));
    out.push_str(&format!("    \"baseline_interactive_p95_ms\": {baseline_p95:.3},\n"));
    out.push_str(&format!("    \"interactive_p95_speedup\": {:.3}\n", baseline_p95 / interactive_p95));
    out.push_str("  },\n");
    out.push_str("  \"network\": {\n");
    out.push_str(&format!("    \"requests\": {},\n", scale.requests));
    out.push_str(&format!("    \"clients\": {net_clients},\n"));
    out.push_str(&format!("    \"handler_threads\": {net_clients},\n"));
    out.push_str(&format!("    \"workers\": {net_workers},\n"));
    out.push_str(&format!("    \"loopback_queries_per_sec\": {net_qps:.2},\n"));
    out.push_str(&format!("    \"e2e\": {},\n", latency_quantiles_json(&net_e2e)));
    out.push_str(&format!("    \"serve_metrics\": {}\n", net_metrics.to_json_indented(2)));
    out.push_str("  },\n");
    out.push_str(&format!("  \"best_queries_per_sec\": {best:.2},\n"));
    out.push_str(&format!(
        "  \"best_vs_single_session_batched\": {:.3}\n",
        if single_session_qps > 0.0 { best / single_session_qps } else { f64::INFINITY }
    ));
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("write BENCH_serve.json");

    println!(
        "\nbest serve throughput: {:.1} queries/sec ({:.3}x single-session batched)",
        best,
        best / single_session_qps
    );
    println!("wrote {out_path}");
}
