//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p naru-bench --bin experiments -- <experiment ...> [--quick|--full] [--out FILE]
//! ```
//!
//! where `<experiment>` is one or more of `fig4`, `table3`, `table4`,
//! `table5`, `fig5`, `fig6`, `table6`, `table7`, `fig7`, `fig8`, `table8`,
//! `ablation-arch`, `ablation-sampling`, or `all`. The default scale is
//! `--quick`; see DESIGN.md for how the scales map to the paper's setup.

use std::io::Write;

use naru_bench::config::{ExperimentConfig, Scale};
use naru_bench::experiments as exp;

const EXPERIMENTS: &[&str] = &[
    "fig4",
    "table3",
    "table4",
    "table5",
    "fig5",
    "fig6",
    "table6",
    "table7",
    "fig7",
    "fig8",
    "table8",
    "ablation-arch",
    "ablation-sampling",
];

fn run_one(name: &str, cfg: &ExperimentConfig) -> Option<String> {
    let start = std::time::Instant::now();
    let report = match name {
        "fig4" => exp::fig4_selectivity_distribution(cfg),
        "table3" => exp::table3_dmv(cfg),
        "table4" => exp::table4_conviva_a(cfg),
        "table5" => exp::table5_ood(cfg),
        "fig5" => exp::fig5_training_quality(cfg),
        "fig6" => exp::fig6_latency(cfg),
        "table6" => exp::table6_region_size(cfg),
        "table7" => exp::table7_model_size(cfg),
        "fig7" => exp::fig7_entropy_gap(cfg),
        "fig8" => exp::fig8_column_scaling(cfg),
        "table8" => exp::table8_data_shift(cfg),
        "ablation-arch" => exp::ablation_architectures(cfg),
        "ablation-sampling" => exp::ablation_sampling(cfg),
        _ => return None,
    };
    let elapsed = start.elapsed().as_secs_f64();
    Some(format!("{report}\n[{name} completed in {elapsed:.1}s]\n"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut selected: Vec<String> = Vec::new();
    let mut out_file: Option<String> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(s) = Scale::from_flag(arg) {
            scale = s;
        } else if arg == "--out" {
            out_file = iter.next().cloned();
        } else if arg == "all" {
            selected.extend(EXPERIMENTS.iter().map(|s| s.to_string()));
        } else if EXPERIMENTS.contains(&arg.as_str()) {
            selected.push(arg.clone());
        } else if arg == "--help" || arg == "-h" {
            println!("usage: experiments <{}|all>... [--quick|--full] [--out FILE]", EXPERIMENTS.join("|"));
            return;
        } else {
            eprintln!("unknown argument: {arg} (try --help)");
            #[allow(clippy::disallowed_methods)] // CLI usage error: exit before any state exists
            std::process::exit(2);
        }
    }
    if selected.is_empty() {
        println!("usage: experiments <{}|all>... [--quick|--full] [--out FILE]", EXPERIMENTS.join("|"));
        return;
    }

    let cfg = ExperimentConfig::new(scale);
    println!(
        "scale: {scale:?}  (dmv rows: {}, conviva-a rows: {}, queries: {})",
        cfg.dmv_rows, cfg.conviva_a_rows, cfg.workload_queries
    );

    let mut full_report = String::new();
    for name in &selected {
        println!("\n>>> running {name} ...");
        match run_one(name, &cfg) {
            Some(report) => {
                println!("{report}");
                full_report.push_str(&report);
            }
            None => eprintln!("unknown experiment {name}"),
        }
    }

    if let Some(path) = out_file {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(full_report.as_bytes()).expect("write report");
        println!("report written to {path}");
    }
}
