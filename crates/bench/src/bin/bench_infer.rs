//! End-to-end estimator-latency benchmark: trains a MADE model on the
//! DMV-style synthetic table, runs a generated workload through progressive
//! sampling over two code paths, and writes `BENCH_infer.json`:
//!
//! * **baseline** — the pre-optimization inference path: naive matmul
//!   kernels ([`naru_tensor::KernelPolicy::Naive`]) driving the reference
//!   sampler (allocating per-column `conditionals`, fresh masked vectors,
//!   no dead-path compaction);
//! * **optimized** — the current hot path: blocked/parallel `_into`
//!   kernels, workspace-reused activations, incremental prefix encoding,
//!   per-block output heads, and dead-path compaction;
//! * **batched** — the same hot path driven through the Engine/Session
//!   API's `Session::estimate_batch`: one lock-free session answers the
//!   whole workload in a single call, reusing its constraint buffer and
//!   scratch across queries. Its selectivities must match the optimized
//!   path bit-for-bit (same seed, same kernels).
//!
//! ```text
//! cargo run --release -p naru-bench --bin bench_infer            # default scale
//! cargo run --release -p naru-bench --bin bench_infer -- --smoke # CI-sized
//! cargo run --release -p naru-bench --bin bench_infer -- --out path.json
//! ```

use std::cell::Cell;

use naru_bench::latency::{render_report, time_workload, LatencyStats, RelaxedStats};
use naru_core::{NaruConfig, NaruEstimator, Precision, ProgressiveSampler, SamplerConfig};
use naru_data::synthetic::dmv_like;
use naru_query::{generate_workload, WorkloadConfig};
use naru_query::{Provenance, Query};
use naru_tensor::{set_kernel_policy, KernelPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct BenchScale {
    rows: usize,
    queries: usize,
    num_samples: usize,
    epochs: usize,
    label: &'static str,
}

const DEFAULT: BenchScale = BenchScale { rows: 5000, queries: 32, num_samples: 600, epochs: 3, label: "default" };
const SMOKE: BenchScale = BenchScale { rows: 600, queries: 6, num_samples: 100, epochs: 1, label: "smoke" };

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = DEFAULT;
    let mut out_path = "BENCH_infer.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => scale = SMOKE,
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            other => {
                eprintln!("unknown argument {other}; supported: --smoke, --out PATH");
                #[allow(clippy::disallowed_methods)] // CLI usage error: exit before any state exists
                std::process::exit(2);
            }
        }
    }

    println!(
        "bench_infer [{}]: {} rows, {} queries, {} sample paths, {} training epochs",
        scale.label, scale.rows, scale.queries, scale.num_samples, scale.epochs
    );

    let table = dmv_like(scale.rows, 42);
    let n = table.num_columns();
    let mut config = NaruConfig::small().with_samples(scale.num_samples);
    config.train.epochs = scale.epochs;
    config.train.compute_data_entropy = false;
    config.train.eval_tuples = 0;
    let train_start = std::time::Instant::now();
    let (estimator, _) = NaruEstimator::train(&table, &config);
    let model_params = estimator.model().param_count();
    println!("trained MADE ({} params) in {:.1}s", model_params, train_start.elapsed().as_secs_f64());

    let mut rng = StdRng::seed_from_u64(7);
    let workload = generate_workload(&table, &WorkloadConfig::default(), scale.queries, &mut rng);

    // The reference sampler shares seed 0 with the estimator's internal one
    // so both paths walk statistically identical estimates.
    let reference_sampler = ProgressiveSampler::new(SamplerConfig { num_samples: scale.num_samples, seed: 0 });

    // Warm up both measured paths once — importantly through the *same*
    // sampler instance the timed loops use, so the optimized pass's scratch
    // buffers are materialized before the first measured query.
    let warm = &workload[0];
    let _ = reference_sampler.estimate_detailed_reference(estimator.model(), &warm.query.constraints(n));
    let _ = reference_sampler.estimate_detailed(estimator.model(), &warm.query.constraints(n));

    // Baseline: pre-refactor path — naive kernels + allocating reference
    // sampler.
    set_kernel_policy(KernelPolicy::Naive);
    let base_paths = Cell::new(0u64);
    let (base_lat, base_acc) = time_workload(&workload, |lq| {
        let est = reference_sampler.estimate_detailed_reference(estimator.model(), &lq.query.constraints(n));
        base_paths.set(base_paths.get() + (scale.num_samples * est.columns_walked) as u64);
        est.selectivity
    });
    let baseline = LatencyStats::from_latencies(&base_lat, base_paths.get());

    // Optimized: current hot path with the default kernel policy.
    set_kernel_policy(KernelPolicy::Auto);
    let opt_paths = Cell::new(0u64);
    let (opt_lat, opt_acc) = time_workload(&workload, |lq| {
        let est = reference_sampler.estimate_detailed(estimator.model(), &lq.query.constraints(n));
        opt_paths.set(opt_paths.get() + (scale.num_samples * est.columns_walked) as u64);
        est.selectivity
    });
    let optimized = LatencyStats::from_latencies(&opt_lat, opt_paths.get());

    // Batched mode: the Engine/Session API answers the whole workload in
    // one `estimate_batch` call. Per-query latency comes from each
    // `Estimate`'s own wall-time; the walk is identical to the optimized
    // path (same seed, same kernels), so the per-path work volume is too
    // and `opt_paths` carries over.
    let engine = estimator.into_engine();
    let mut session = engine.session();
    let queries: Vec<Query> = workload.iter().map(|lq| lq.query.clone()).collect();
    // Warm the session scratch outside the measurement, like the other paths.
    let _ = session.estimate(&queries[0]);
    let batch_results = session.estimate_batch(&queries);
    let mut batch_lat = Vec::with_capacity(batch_results.len());
    let mut batch_acc = 0.0f64;
    for result in &batch_results {
        let est = result.as_ref().expect("generated workload queries are valid");
        batch_lat.push(est.wall_time.as_secs_f64() * 1000.0);
        batch_acc += est.selectivity;
    }
    let batched = LatencyStats::from_latencies(&batch_lat, opt_paths.get());
    assert_eq!(batch_acc, opt_acc, "batched session must match the optimized path bit-for-bit");
    let exact_sels: Vec<f64> =
        batch_results.iter().map(|r| r.as_ref().expect("generated workload queries are valid").selectivity).collect();

    // Relaxed tier: the same Session API under `Precision::Relaxed` routes
    // the hidden stack and output heads through the per-row i8 quantized
    // mirrors built at Engine construction (f32 accumulation, fused
    // bias+ReLU). Answers are tagged `Provenance::Relaxed`; accuracy is
    // bounded by the per-conditional quantization error, not bit-exact.
    let mut relaxed_session = engine.session().with_precision(Precision::Relaxed);
    let probe = relaxed_session.estimate(&queries[0]).expect("generated workload queries are valid");
    assert_eq!(probe.provenance, Provenance::Relaxed, "relaxed session must tag its answers");
    let mut relaxed_sels: Vec<f64> = Vec::with_capacity(workload.len());
    let (rel_lat, _) = time_workload(&workload, |lq| {
        let est = relaxed_session.estimate(&lq.query).expect("generated workload queries are valid");
        relaxed_sels.push(est.selectivity);
        est.selectivity
    });
    // Same constraints, same nominal path budget per column: the exact
    // path's work-unit count normalizes the relaxed throughput too.
    let relaxed_stats = LatencyStats::from_latencies(&rel_lat, opt_paths.get());

    // Worst per-query q-error factor between the relaxed and exact answers.
    // Selectivities are floored: a quantization-shifted sample path can turn
    // an all-paths-dead zero into a tiny positive mass (or vice versa), and
    // the ratio of two near-zeros says nothing about estimate quality.
    const SELECTIVITY_FLOOR: f64 = 1e-6;
    let q_error_delta_max = relaxed_sels
        .iter()
        .zip(exact_sels.iter())
        .map(|(&r, &e)| {
            let (r, e) = (r.max(SELECTIVITY_FLOOR), e.max(SELECTIVITY_FLOOR));
            r.max(e) / r.min(e)
        })
        .fold(1.0f64, f64::max);
    let relaxed = RelaxedStats { stats: relaxed_stats, q_error_delta_max };

    // Both paths estimate the same workload with the same seeds, but with
    // different kernel tiers: a conditional probability landing within
    // kernel rounding of a uniform draw can flip one sampled id and fork
    // that path's whole RNG stream, so small drift is benign. Only gross
    // divergence (wrong code path) should fail the run.
    let drift = (base_acc - opt_acc).abs() / base_acc.abs().max(1e-12);
    println!("summed-selectivity drift between paths: {drift:.2e}");
    assert!(drift < 0.05, "baseline and optimized estimates diverged grossly: {base_acc} vs {opt_acc}");

    let meta: Vec<(&str, String)> = vec![
        ("scale", format!("\"{}\"", scale.label)),
        ("table_rows", scale.rows.to_string()),
        ("columns", n.to_string()),
        ("queries", scale.queries.to_string()),
        ("num_samples", scale.num_samples.to_string()),
        ("model_params", model_params.to_string()),
        // Detected cores vs what the tensor kernels will actually use
        // (their parallel tier caps at 8 threads).
        ("threads_detected", std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1).to_string()),
        ("threads_used", std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1).min(8).to_string()),
        (
            "baseline_path",
            "\"pre-refactor: naive kernels + allocating conditionals + uncompacted sampler\"".to_string(),
        ),
    ];
    // The relaxed tier only earns its place if it is both fast and close:
    // in-run, the quantized walk must beat the exact one and stay within
    // the documented q-error envelope (the relaxed-parity test tier asserts
    // the same bound on a seeded table).
    const RELAXED_Q_ERROR_TOLERANCE: f64 = 2.0;
    assert!(
        q_error_delta_max < RELAXED_Q_ERROR_TOLERANCE,
        "relaxed walk drifted beyond the q-error tolerance: {q_error_delta_max:.4} >= {RELAXED_Q_ERROR_TOLERANCE}"
    );

    let report = render_report(&baseline, &optimized, Some(&batched), Some(&relaxed), &meta);
    std::fs::write(&out_path, &report).expect("write BENCH_infer.json");

    println!("\n{:>12} {:>10} {:>10} {:>12} {:>14}", "path", "p50 ms", "p95 ms", "queries/s", "samples/s");
    for (name, stats) in
        [("baseline", &baseline), ("optimized", &optimized), ("batched", &batched), ("relaxed", &relaxed.stats)]
    {
        println!(
            "{:>12} {:>10.2} {:>10.2} {:>12.1} {:>14.0}",
            name, stats.p50_ms, stats.p95_ms, stats.queries_per_sec, stats.samples_per_sec
        );
    }
    println!("\nspeedup (queries/sec): {:.2}x", baseline.mean_ms / optimized.mean_ms);
    println!("batched vs optimized (queries/sec): {:.3}x", batched.queries_per_sec / optimized.queries_per_sec);
    println!(
        "relaxed vs optimized (queries/sec): {:.3}x, max q-error delta {:.4}",
        relaxed.stats.queries_per_sec / optimized.queries_per_sec,
        q_error_delta_max
    );
    println!("wrote {out_path}");
}
