//! The accuracy-experiment runner shared by Tables 3, 4, 5 and 8.
//!
//! Given a labeled workload and a set of estimators, it measures every
//! estimator on every query, records q-errors grouped by the paper's
//! selectivity buckets, and captures per-query latency on the side (the raw
//! data behind Figure 6).
//!
//! Estimation goes through the batched endpoint
//! ([`SelectivityEstimator::try_estimate_batch`]): one call per estimator
//! per workload, so samplers amortize their per-query setup, and the
//! per-query latency comes from each [`Estimate`]'s own
//! `wall_time` measurement. A query an estimator rejects (it should not
//! happen for generated workloads) scores as selectivity 0 — the
//! pessimistic collapse the removed pre-0.2 infallible API applied to
//! every error, kept here so rejected queries drag accuracy down instead
//! of silently vanishing from the tables.
//!
//! [`Estimate`]: naru_query::Estimate

use naru_query::{
    q_error_from_selectivity, ErrorQuantiles, LabeledQuery, Query, SelectivityBucket, SelectivityEstimator,
};

use crate::report::AccuracyRow;

/// Per-estimator outcome of an accuracy run.
#[derive(Debug, Clone)]
pub struct EstimatorResult {
    /// Estimator display name.
    pub name: String,
    /// Summary size in bytes.
    pub size_bytes: usize,
    /// One q-error per query, in workload order.
    pub q_errors: Vec<f64>,
    /// Bucket of each query, aligned with `q_errors`.
    pub buckets: Vec<SelectivityBucket>,
    /// Per-query estimation latency in milliseconds, aligned with `q_errors`.
    pub latencies_ms: Vec<f64>,
}

impl EstimatorResult {
    /// q-error quantiles restricted to one selectivity bucket.
    pub fn quantiles_for(&self, bucket: SelectivityBucket) -> Option<ErrorQuantiles> {
        let errs: Vec<f64> =
            self.q_errors.iter().zip(self.buckets.iter()).filter(|(_, &b)| b == bucket).map(|(&e, _)| e).collect();
        ErrorQuantiles::from_errors(&errs)
    }

    /// q-error quantiles over the whole workload.
    pub fn overall_quantiles(&self) -> Option<ErrorQuantiles> {
        ErrorQuantiles::from_errors(&self.q_errors)
    }

    /// Latency quantiles (ms) over the whole workload.
    pub fn latency_quantiles(&self) -> Option<ErrorQuantiles> {
        ErrorQuantiles::from_errors(&self.latencies_ms)
    }

    /// Converts to a printable accuracy-table row.
    pub fn to_row(&self) -> AccuracyRow {
        AccuracyRow {
            estimator: self.name.clone(),
            size_bytes: self.size_bytes,
            per_bucket: SelectivityBucket::ALL.iter().map(|&b| (b, self.quantiles_for(b))).collect(),
            overall: self.overall_quantiles(),
        }
    }
}

/// Runs one estimator over the workload.
pub fn evaluate_estimator(
    estimator: &dyn SelectivityEstimator,
    workload: &[LabeledQuery],
    num_rows: usize,
) -> EstimatorResult {
    let queries: Vec<Query> = workload.iter().map(|lq| lq.query.clone()).collect();
    let results = estimator.try_estimate_batch(&queries);

    let mut q_errors = Vec::with_capacity(workload.len());
    let mut buckets = Vec::with_capacity(workload.len());
    let mut latencies_ms = Vec::with_capacity(workload.len());
    for (lq, result) in workload.iter().zip(&results) {
        let (selectivity, ms) = match result {
            Ok(est) => (est.selectivity, est.wall_time.as_secs_f64() * 1e3),
            Err(_) => (0.0, 0.0),
        };
        latencies_ms.push(ms);
        q_errors.push(q_error_from_selectivity(selectivity, lq.selectivity, num_rows));
        buckets.push(lq.bucket());
    }
    EstimatorResult { name: estimator.name(), size_bytes: estimator.size_bytes(), q_errors, buckets, latencies_ms }
}

/// Runs a whole estimator line-up over the workload.
pub fn evaluate_all(
    estimators: &[&dyn SelectivityEstimator],
    workload: &[LabeledQuery],
    num_rows: usize,
) -> Vec<EstimatorResult> {
    estimators.iter().map(|e| evaluate_estimator(*e, workload, num_rows)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_baselines::{ExactScanEstimator, IndepEstimator};
    use naru_data::synthetic::correlated_pair;
    use naru_query::{generate_workload, WorkloadConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_estimator_has_unit_qerrors() {
        let t = correlated_pair(2000, 8, 0.9, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let workload = generate_workload(
            &t,
            &WorkloadConfig { min_filters: 1, max_filters: 2, ..Default::default() },
            25,
            &mut rng,
        );
        let exact = ExactScanEstimator::build(&t);
        let result = evaluate_estimator(&exact, &workload, t.num_rows());
        assert_eq!(result.q_errors.len(), 25);
        assert!(result.q_errors.iter().all(|&e| (e - 1.0).abs() < 1e-9));
        assert!(result.latencies_ms.iter().all(|&l| l >= 0.0));
        let q = result.overall_quantiles().unwrap();
        assert_eq!(q.max, 1.0);
    }

    #[test]
    fn indep_is_worse_than_exact_on_correlated_data() {
        let t = correlated_pair(3000, 10, 0.95, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let workload = generate_workload(
            &t,
            &WorkloadConfig { min_filters: 2, max_filters: 2, ..Default::default() },
            40,
            &mut rng,
        );
        let exact = ExactScanEstimator::build(&t);
        let indep = IndepEstimator::build(&t);
        let results = evaluate_all(&[&exact, &indep], &workload, t.num_rows());
        let exact_max = results[0].overall_quantiles().unwrap().max;
        let indep_max = results[1].overall_quantiles().unwrap().max;
        assert!(indep_max > exact_max);
        // Row conversion keeps all three buckets.
        let row = results[1].to_row();
        assert_eq!(row.per_bucket.len(), 3);
    }
}
