//! Plain-text report formatting.
//!
//! The experiment binaries print their results as aligned text tables whose
//! rows and columns mirror the paper's tables, so a side-by-side comparison
//! with the published numbers is a matter of reading two tables.

use naru_query::{ErrorQuantiles, SelectivityBucket};

/// Formats a floating-point value the way the paper prints q-errors:
/// compact, with scientific notation for huge values.
pub fn fmt_err(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v >= 10_000.0 {
        format!("{:.0e}", v)
    } else if v >= 100.0 {
        format!("{:.0}", v)
    } else {
        format!("{:.2}", v)
    }
}

/// A generic aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header cells.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (cells are stringified already).
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let num_cols = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; num_cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (num_cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// One estimator's q-error quantiles per selectivity bucket — one row of an
/// accuracy table (Tables 3 and 4).
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Estimator display name.
    pub estimator: String,
    /// Summary size in bytes.
    pub size_bytes: usize,
    /// Quantiles per bucket (None when the bucket had no queries).
    pub per_bucket: Vec<(SelectivityBucket, Option<ErrorQuantiles>)>,
    /// Quantiles over all queries regardless of bucket.
    pub overall: Option<ErrorQuantiles>,
}

/// Renders a full accuracy table (the layout of Tables 3/4: one row per
/// estimator, median/95th/99th/max per selectivity bucket).
pub fn render_accuracy_table(rows: &[AccuracyRow]) -> String {
    let mut header = vec!["Estimator".to_string(), "Size".to_string()];
    for bucket in SelectivityBucket::ALL {
        for stat in ["med", "p95", "p99", "max"] {
            header.push(format!("{} {}", short_bucket(bucket), stat));
        }
    }
    let mut table = TextTable::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for row in rows {
        let mut cells = vec![row.estimator.clone(), fmt_size(row.size_bytes)];
        for (_, quantiles) in &row.per_bucket {
            match quantiles {
                Some(q) => {
                    cells.push(fmt_err(q.median));
                    cells.push(fmt_err(q.p95));
                    cells.push(fmt_err(q.p99));
                    cells.push(fmt_err(q.max));
                }
                None => cells.extend(std::iter::repeat_n("-".to_string(), 4)),
            }
        }
        table.add_row(cells);
    }
    table.render()
}

fn short_bucket(bucket: SelectivityBucket) -> &'static str {
    match bucket {
        SelectivityBucket::High => "high",
        SelectivityBucket::Medium => "med",
        SelectivityBucket::Low => "low",
    }
}

/// Human-readable byte size.
pub fn fmt_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1}MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1}KB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_err_ranges() {
        assert_eq!(fmt_err(1.0), "1.00");
        assert_eq!(fmt_err(99.4), "99.40");
        assert_eq!(fmt_err(250.0), "250");
        assert_eq!(fmt_err(2e6), "2e6");
        assert_eq!(fmt_err(f64::NAN), "-");
    }

    #[test]
    fn fmt_size_units() {
        assert_eq!(fmt_size(12), "12B");
        assert_eq!(fmt_size(2048), "2.0KB");
        assert_eq!(fmt_size(3 * 1024 * 1024), "3.0MB");
    }

    #[test]
    fn text_table_aligns_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.add_row(vec!["a".to_string(), "1".to_string()]);
        t.add_row(vec!["longer-name".to_string(), "12345".to_string()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn accuracy_table_renders_all_buckets() {
        let q = ErrorQuantiles::from_errors(&[1.0, 2.0, 10.0]).unwrap();
        let row = AccuracyRow {
            estimator: "Naru-1000".to_string(),
            size_bytes: 1_500_000,
            per_bucket: SelectivityBucket::ALL.iter().map(|&b| (b, Some(q))).collect(),
            overall: Some(q),
        };
        let rendered = render_accuracy_table(&[row]);
        assert!(rendered.contains("Naru-1000"));
        assert!(rendered.contains("1.4MB"));
        assert!(rendered.contains("high med"));
        assert!(rendered.contains("low max"));
    }
}
