//! Experiment scales.
//!
//! The paper trains on 11.5M-row (DMV) and 4.1M-row (Conviva-A) tables on a
//! Tesla V100; this reproduction runs on a single CPU core, so every
//! experiment supports two scales:
//!
//! * [`Scale::Quick`] — small synthetic tables and workloads that finish in
//!   minutes and are used for CI and for the numbers recorded in
//!   EXPERIMENTS.md;
//! * [`Scale::Full`] — larger tables/workloads approaching the paper's
//!   setup (still synthetic); expect hours on a laptop.

use naru_core::{EncodingPolicy, ModelConfig, NaruConfig, TrainConfig};

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale configuration.
    Quick,
    /// Closer to the paper's scale.
    Full,
}

impl Scale {
    /// Parses `--quick` / `--full` style flags.
    pub fn from_flag(arg: &str) -> Option<Self> {
        match arg {
            "--quick" | "quick" => Some(Scale::Quick),
            "--full" | "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// All knobs an experiment needs, derived from the scale.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Which scale this is.
    pub scale: Scale,
    /// DMV-like row count.
    pub dmv_rows: usize,
    /// Conviva-A-like row count.
    pub conviva_a_rows: usize,
    /// Conviva-B-like row count.
    pub conviva_b_rows: usize,
    /// Number of evaluation queries per dataset (paper: 2000).
    pub workload_queries: usize,
    /// Number of supervised training queries for MSCN / KDE-superv
    /// (paper: 100K / 10K).
    pub training_queries: usize,
    /// Progressive-sampling path counts reported as separate Naru variants.
    pub naru_sample_counts: Vec<usize>,
    /// Materialized-sample fraction for the Sample baseline (paper: the
    /// storage budget, 1.3% for DMV / 0.7% for Conviva-A).
    pub sample_fraction: f64,
    /// KDE kernel-centre count.
    pub kde_points: usize,
    /// Seed shared by dataset generation and workloads.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Builds the configuration for a scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Self {
                scale,
                dmv_rows: 16_000,
                conviva_a_rows: 12_000,
                conviva_b_rows: 4_000,
                workload_queries: 120,
                training_queries: 400,
                naru_sample_counts: vec![200, 1000],
                sample_fraction: 0.013,
                kde_points: 800,
                seed: 42,
            },
            Scale::Full => Self {
                scale,
                dmv_rows: 400_000,
                conviva_a_rows: 200_000,
                conviva_b_rows: 10_000,
                workload_queries: 2_000,
                training_queries: 10_000,
                naru_sample_counts: vec![1000, 2000, 4000],
                sample_fraction: 0.013,
                kde_points: 10_000,
                seed: 42,
            },
        }
    }

    /// Naru configuration for the DMV-like dataset at this scale.
    pub fn naru_dmv(&self) -> NaruConfig {
        match self.scale {
            Scale::Quick => NaruConfig {
                model: ModelConfig {
                    hidden_sizes: vec![64, 64],
                    encoding: EncodingPolicy::compact(16),
                    embedding_reuse: true,
                    seed: self.seed,
                },
                train: TrainConfig { epochs: 5, batch_size: 256, eval_tuples: 1000, ..Default::default() },
                num_samples: *self.naru_sample_counts.last().unwrap_or(&1000),
            },
            Scale::Full => NaruConfig {
                // The paper's DMV model: 5 hidden layers (512,256,512,128,1024).
                model: ModelConfig {
                    hidden_sizes: vec![512, 256, 512, 128, 1024],
                    encoding: EncodingPolicy::default(),
                    embedding_reuse: true,
                    seed: self.seed,
                },
                train: TrainConfig { epochs: 10, batch_size: 1024, eval_tuples: 5000, ..Default::default() },
                num_samples: 2000,
            },
        }
    }

    /// Naru configuration for the Conviva-A-like dataset at this scale.
    pub fn naru_conviva_a(&self) -> NaruConfig {
        match self.scale {
            Scale::Quick => NaruConfig {
                model: ModelConfig {
                    hidden_sizes: vec![64, 64, 64],
                    encoding: EncodingPolicy::compact(16),
                    embedding_reuse: true,
                    seed: self.seed,
                },
                train: TrainConfig { epochs: 6, batch_size: 256, eval_tuples: 1000, ..Default::default() },
                num_samples: *self.naru_sample_counts.last().unwrap_or(&1000),
            },
            Scale::Full => NaruConfig {
                // The paper's Conviva-A model: 4 hidden layers of 128 units.
                model: ModelConfig {
                    hidden_sizes: vec![128, 128, 128, 128],
                    encoding: EncodingPolicy::default(),
                    embedding_reuse: true,
                    seed: self.seed,
                },
                train: TrainConfig { epochs: 15, batch_size: 1024, eval_tuples: 5000, ..Default::default() },
                num_samples: 4000,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::from_flag("--quick"), Some(Scale::Quick));
        assert_eq!(Scale::from_flag("full"), Some(Scale::Full));
        assert_eq!(Scale::from_flag("--bogus"), None);
    }

    #[test]
    fn quick_is_smaller_than_full() {
        let quick = ExperimentConfig::new(Scale::Quick);
        let full = ExperimentConfig::new(Scale::Full);
        assert!(quick.dmv_rows < full.dmv_rows);
        assert!(quick.workload_queries < full.workload_queries);
        assert!(quick.naru_dmv().model.hidden_sizes.len() <= full.naru_dmv().model.hidden_sizes.len());
    }

    #[test]
    fn full_scale_matches_paper_architectures() {
        let full = ExperimentConfig::new(Scale::Full);
        assert_eq!(full.naru_dmv().model.hidden_sizes, vec![512, 256, 512, 128, 1024]);
        assert_eq!(full.naru_conviva_a().model.hidden_sizes, vec![128, 128, 128, 128]);
    }
}
