//! End-to-end estimator-latency measurement and the `BENCH_infer.json`
//! report format.
//!
//! The paper's interactivity claim (§5.1, "as many forward passes as
//! columns", ~ms per query) is a latency property, so the repo tracks it as
//! a first-class benchmark artifact: the `bench_infer` binary runs the
//! DMV-style synthetic workload through MADE + progressive sampling twice —
//! once over the pre-optimization baseline path (naive kernels, allocating
//! per-column conditionals, no dead-path compaction) and once over the
//! optimized hot path — and writes both measurements plus the speedup to
//! `BENCH_infer.json`. Every future PR has a trajectory to beat.

use std::time::Instant;

use naru_query::LabeledQuery;
use naru_tensor::stats::percentile;

/// Latency summary of one measured estimator configuration.
#[derive(Debug, Clone)]
pub struct LatencyStats {
    /// Median per-query latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile per-query latency in milliseconds.
    pub p95_ms: f64,
    /// Worst per-query latency in milliseconds.
    pub max_ms: f64,
    /// Mean per-query latency in milliseconds.
    pub mean_ms: f64,
    /// Estimated queries per second (from the mean).
    pub queries_per_sec: f64,
    /// *Nominal* progressive-sampling throughput:
    /// `num_samples x columns_walked / time`. This counts each query's
    /// configured path budget per column walked regardless of how many
    /// paths a particular implementation actually advances (the optimized
    /// sampler compacts dead paths away), so both measured paths are
    /// normalized to the same work units and the ratio reflects the real
    /// end-to-end win, compaction included.
    pub samples_per_sec: f64,
}

impl LatencyStats {
    /// Summarizes per-query latencies (milliseconds). `paths_walked` is the
    /// total number of (sample path x column) steps the run advanced.
    pub fn from_latencies(latencies_ms: &[f64], paths_walked: u64) -> Self {
        assert!(!latencies_ms.is_empty(), "no latencies recorded");
        let total_ms: f64 = latencies_ms.iter().sum();
        let mean_ms = total_ms / latencies_ms.len() as f64;
        Self {
            p50_ms: percentile(latencies_ms, 50.0),
            p95_ms: percentile(latencies_ms, 95.0),
            max_ms: percentile(latencies_ms, 100.0),
            mean_ms,
            queries_per_sec: if total_ms > 0.0 { latencies_ms.len() as f64 * 1000.0 / total_ms } else { 0.0 },
            samples_per_sec: if total_ms > 0.0 { paths_walked as f64 * 1000.0 / total_ms } else { 0.0 },
        }
    }

    /// The stats as a JSON object (hand-rolled; the workspace is
    /// dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"max_ms\": {:.4}, \"mean_ms\": {:.4}, ",
                "\"queries_per_sec\": {:.2}, \"samples_per_sec\": {:.0}}}"
            ),
            self.p50_ms, self.p95_ms, self.max_ms, self.mean_ms, self.queries_per_sec, self.samples_per_sec
        )
    }
}

/// The relaxed (quantized-weight) inference phase of `bench_infer`: the
/// latency summary of the `Precision::Relaxed` walk plus the worst
/// per-query q-error factor between its answers and the exact walk's
/// (`max(rel, exact) / min(rel, exact)`, selectivities floored to dodge
/// zero division). The factor is what the relaxed-parity test tier bounds;
/// the report records the in-run value next to the speed win it buys.
#[derive(Debug, Clone)]
pub struct RelaxedStats {
    /// Latency summary of the relaxed walk.
    pub stats: LatencyStats,
    /// Worst per-query q-error factor vs the exact walk (`>= 1.0`).
    pub q_error_delta_max: f64,
}

/// Quantile summary of a latency sample (milliseconds) as a JSON object —
/// the per-phase building block of `BENCH_serve.json`, where the
/// samples-per-second normalization of [`LatencyStats`] does not apply
/// (queue waits are not progressive-sampling work).
pub fn latency_quantiles_json(latencies_ms: &[f64]) -> String {
    assert!(!latencies_ms.is_empty(), "no latencies recorded");
    let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64;
    format!(
        "{{\"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"max_ms\": {:.4}, \"mean_ms\": {:.4}}}",
        percentile(latencies_ms, 50.0),
        percentile(latencies_ms, 95.0),
        percentile(latencies_ms, 100.0),
        mean
    )
}

/// Times `estimate` over the workload, returning per-query latencies in
/// milliseconds plus the sum of estimates (kept as an optimization barrier
/// and as a sanity check that both measured paths agree).
pub fn time_workload(workload: &[LabeledQuery], mut estimate: impl FnMut(&LabeledQuery) -> f64) -> (Vec<f64>, f64) {
    let mut latencies = Vec::with_capacity(workload.len());
    let mut acc = 0.0;
    for lq in workload {
        let start = Instant::now();
        acc += std::hint::black_box(estimate(lq));
        latencies.push(start.elapsed().as_secs_f64() * 1000.0);
    }
    (latencies, acc)
}

/// Renders the full `BENCH_infer.json` document. `meta` entries are
/// `(key, already-serialized JSON value)` pairs describing the run
/// configuration. `batched`, when present, is the Engine/Session
/// batched-estimation measurement (`Session::estimate_batch` over the same
/// workload) and is reported alongside its queries/sec ratio over the
/// single-query optimized path.
/// `relaxed`, when present, is the quantized-weight `Precision::Relaxed`
/// measurement over the same workload, reported with its queries/sec ratio
/// over the exact optimized path and its worst in-run q-error factor.
pub fn render_report(
    baseline: &LatencyStats,
    optimized: &LatencyStats,
    batched: Option<&LatencyStats>,
    relaxed: Option<&RelaxedStats>,
    meta: &[(&str, String)],
) -> String {
    let speedup = if optimized.mean_ms > 0.0 { baseline.mean_ms / optimized.mean_ms } else { f64::INFINITY };
    let vs_optimized = |stats: &LatencyStats| {
        if optimized.queries_per_sec > 0.0 {
            stats.queries_per_sec / optimized.queries_per_sec
        } else {
            f64::INFINITY
        }
    };
    let mut out = String::from("{\n");
    for (key, value) in meta {
        out.push_str(&format!("  \"{key}\": {value},\n"));
    }
    out.push_str(&format!("  \"baseline\": {},\n", baseline.to_json()));
    out.push_str(&format!("  \"optimized\": {},\n", optimized.to_json()));
    if let Some(batched) = batched {
        out.push_str(&format!("  \"batched\": {},\n", batched.to_json()));
        out.push_str(&format!("  \"batched_vs_optimized_queries_per_sec\": {:.3},\n", vs_optimized(batched)));
    }
    if let Some(relaxed) = relaxed {
        out.push_str(&format!("  \"relaxed\": {},\n", relaxed.stats.to_json()));
        out.push_str(&format!("  \"relaxed_vs_optimized_queries_per_sec\": {:.3},\n", vs_optimized(&relaxed.stats)));
        out.push_str(&format!("  \"relaxed_q_error_delta_max\": {:.4},\n", relaxed.q_error_delta_max));
    }
    out.push_str(&format!("  \"speedup_queries_per_sec\": {:.2}\n", speedup));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_hand_computed_quantiles() {
        let lat: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let stats = LatencyStats::from_latencies(&lat, 1000);
        assert!((stats.p50_ms - 50.5).abs() < 1.0);
        assert!((stats.p95_ms - 95.0).abs() < 1.5);
        assert_eq!(stats.max_ms, 100.0);
        assert!((stats.mean_ms - 50.5).abs() < 1e-9);
        // 100 queries in 5050 ms.
        assert!((stats.queries_per_sec - 100.0 * 1000.0 / 5050.0).abs() < 1e-6);
        assert!((stats.samples_per_sec - 1000.0 * 1000.0 / 5050.0).abs() < 1e-6);
    }

    #[test]
    fn report_is_valid_enough_json() {
        let stats = LatencyStats::from_latencies(&[1.0, 2.0, 3.0], 30);
        let relaxed = RelaxedStats { stats: stats.clone(), q_error_delta_max: 1.25 };
        let json = render_report(
            &stats,
            &stats,
            Some(&stats),
            Some(&relaxed),
            &[("rows", "5000".to_string()), ("label", "\"x\"".to_string())],
        );
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"baseline\": {\"p50_ms\""));
        assert!(json.contains("\"optimized\": "));
        assert!(json.contains("\"batched\": "));
        assert!(json.contains("\"batched_vs_optimized_queries_per_sec\": 1.000"));
        assert!(json.contains("\"relaxed\": {\"p50_ms\""));
        assert!(json.contains("\"relaxed_vs_optimized_queries_per_sec\": 1.000"));
        assert!(json.contains("\"relaxed_q_error_delta_max\": 1.2500"));
        assert!(json.contains("\"speedup_queries_per_sec\": 1.00"));
        assert!(json.contains("\"rows\": 5000"));
        // Balanced braces (cheap structural check, no JSON parser vendored).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn time_workload_reports_one_latency_per_query() {
        let (lat, acc) = time_workload(&[], |_| 1.0);
        assert!(lat.is_empty());
        assert_eq!(acc, 0.0);
    }
}
