//! Micro-benchmarks for the tensor kernels that dominate training and
//! inference time: the three matmul orientations in every implementation
//! tier (naive reference, blocked serial, row-partitioned parallel), plus
//! softmax. The `_into` variants are measured with a pre-allocated output
//! so the numbers isolate kernel arithmetic from allocator traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use naru_tensor::ops::{
    matmul_a_bt_into_blocked, matmul_a_bt_into_parallel, matmul_at_b_into_blocked, matmul_at_b_into_parallel,
    matmul_into_blocked, matmul_into_parallel, naive,
};
use naru_tensor::{matmul, matmul_a_bt, matmul_at_b, softmax_rows, Matrix};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for &n in &[64usize, 128, 256] {
        let a = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 13) as f32 * 0.1);
        let b = Matrix::from_fn(n, n, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.1);
        let mut out = Matrix::zeros(n, n);

        // Dispatching entry points (what the layers actually call).
        group.bench_with_input(BenchmarkId::new("a_b", n), &n, |bench, _| {
            bench.iter(|| matmul(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("a_bt", n), &n, |bench, _| {
            bench.iter(|| matmul_a_bt(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("at_b", n), &n, |bench, _| {
            bench.iter(|| matmul_at_b(std::hint::black_box(&a), std::hint::black_box(&b)))
        });

        // Naive reference tier.
        group.bench_with_input(BenchmarkId::new("a_b_naive", n), &n, |bench, _| {
            bench.iter(|| naive::matmul(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("a_bt_naive", n), &n, |bench, _| {
            bench.iter(|| naive::matmul_a_bt(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("at_b_naive", n), &n, |bench, _| {
            bench.iter(|| naive::matmul_at_b(std::hint::black_box(&a), std::hint::black_box(&b)))
        });

        // Blocked serial tier, allocation-free.
        group.bench_with_input(BenchmarkId::new("a_b_blocked_into", n), &n, |bench, _| {
            bench.iter(|| matmul_into_blocked(std::hint::black_box(&a), std::hint::black_box(&b), &mut out))
        });
        group.bench_with_input(BenchmarkId::new("a_bt_blocked_into", n), &n, |bench, _| {
            bench.iter(|| matmul_a_bt_into_blocked(std::hint::black_box(&a), std::hint::black_box(&b), &mut out))
        });
        group.bench_with_input(BenchmarkId::new("at_b_blocked_into", n), &n, |bench, _| {
            bench.iter(|| matmul_at_b_into_blocked(std::hint::black_box(&a), std::hint::black_box(&b), &mut out))
        });

        // Threaded tier, allocation-free.
        group.bench_with_input(BenchmarkId::new("a_b_parallel_into", n), &n, |bench, _| {
            bench.iter(|| matmul_into_parallel(std::hint::black_box(&a), std::hint::black_box(&b), &mut out))
        });
        group.bench_with_input(BenchmarkId::new("a_bt_parallel_into", n), &n, |bench, _| {
            bench.iter(|| matmul_a_bt_into_parallel(std::hint::black_box(&a), std::hint::black_box(&b), &mut out))
        });
        group.bench_with_input(BenchmarkId::new("at_b_parallel_into", n), &n, |bench, _| {
            bench.iter(|| matmul_at_b_into_parallel(std::hint::black_box(&a), std::hint::black_box(&b), &mut out))
        });
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let logits = Matrix::from_fn(256, 512, |r, col| ((r + col) % 37) as f32 * 0.05 - 1.0);
    c.bench_function("softmax_rows_256x512", |b| b.iter(|| softmax_rows(std::hint::black_box(&logits))));
}

criterion_group!(benches, bench_matmul, bench_softmax);
criterion_main!(benches);
