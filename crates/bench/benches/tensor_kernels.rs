//! Micro-benchmarks for the tensor kernels that dominate training and
//! inference time (matmul in its three orientations, softmax).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use naru_tensor::{matmul, matmul_a_bt, matmul_at_b, softmax_rows, Matrix};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for &n in &[64usize, 128, 256] {
        let a = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 13) as f32 * 0.1);
        let b = Matrix::from_fn(n, n, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.1);
        group.bench_with_input(BenchmarkId::new("a_b", n), &n, |bench, _| {
            bench.iter(|| matmul(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("a_bt", n), &n, |bench, _| {
            bench.iter(|| matmul_a_bt(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("at_b", n), &n, |bench, _| {
            bench.iter(|| matmul_at_b(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let logits = Matrix::from_fn(256, 512, |r, col| ((r + col) % 37) as f32 * 0.05 - 1.0);
    c.bench_function("softmax_rows_256x512", |b| b.iter(|| softmax_rows(std::hint::black_box(&logits))));
}

criterion_group!(benches, bench_matmul, bench_softmax);
criterion_main!(benches);
