//! Estimation-latency benchmark (the Criterion counterpart of Figure 6):
//! per-query latency of Naru's progressive sampling versus the cheap
//! baselines, on a small DMV-like table — plus a batched mode comparing
//! per-query `try_estimate` calls against one `try_estimate_batch` /
//! `Session::estimate_batch` call over the same workload.

use criterion::{criterion_group, criterion_main, Criterion};
use naru_baselines::{Histogram1dConfig, IndepEstimator, PostgresEstimator, SampleEstimator};
use naru_core::{NaruConfig, NaruEstimator};
use naru_data::synthetic::dmv_like;
use naru_query::{generate_workload, Query, SelectivityEstimator, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_estimation_latency(c: &mut Criterion) {
    let table = dmv_like(4000, 42);
    let mut rng = StdRng::seed_from_u64(1);
    let workload = generate_workload(&table, &WorkloadConfig::default(), 5, &mut rng);

    let indep = IndepEstimator::build(&table);
    let postgres = PostgresEstimator::build(&table, &Histogram1dConfig::default());
    let sample = SampleEstimator::build(&table, 0.013, 1);
    let (naru, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(200));

    let queries: Vec<Query> = workload.iter().map(|lq| lq.query.clone()).collect();

    let mut group = c.benchmark_group("estimation_latency");
    group.sample_size(10);
    let mut register = |name: &str, est: &dyn SelectivityEstimator| {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for lq in &workload {
                    acc += est.try_estimate(std::hint::black_box(&lq.query)).map_or(0.0, |e| e.selectivity);
                }
                acc
            })
        });
        group.bench_function(format!("{name}_batched"), |b| {
            b.iter(|| {
                est.try_estimate_batch(std::hint::black_box(&queries))
                    .into_iter()
                    .map(|r| r.map_or(0.0, |e| e.selectivity))
                    .sum::<f64>()
            })
        });
    };
    register("indep", &indep);
    register("postgres", &postgres);
    register("sample_1.3pct", &sample);
    register("naru_200_samples", &naru);

    // The serving-oriented path: one lock-free session over a shared engine.
    let engine = naru.into_engine();
    let mut session = engine.session();
    group.bench_function("naru_200_samples_session_batched", |b| {
        b.iter(|| {
            session
                .estimate_batch(std::hint::black_box(&queries))
                .into_iter()
                .map(|r| r.map_or(0.0, |e| e.selectivity))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_estimation_latency);
criterion_main!(benches);
