//! Estimation-latency benchmark (the Criterion counterpart of Figure 6):
//! per-query latency of Naru's progressive sampling versus the cheap
//! baselines, on a small DMV-like table.

use criterion::{criterion_group, criterion_main, Criterion};
use naru_baselines::{Histogram1dConfig, IndepEstimator, PostgresEstimator, SampleEstimator};
use naru_core::{NaruConfig, NaruEstimator};
use naru_data::synthetic::dmv_like;
use naru_query::{generate_workload, SelectivityEstimator, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_estimation_latency(c: &mut Criterion) {
    let table = dmv_like(4000, 42);
    let mut rng = StdRng::seed_from_u64(1);
    let workload = generate_workload(&table, &WorkloadConfig::default(), 5, &mut rng);

    let indep = IndepEstimator::build(&table);
    let postgres = PostgresEstimator::build(&table, &Histogram1dConfig::default());
    let sample = SampleEstimator::build(&table, 0.013, 1);
    let (naru, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(200));

    let mut group = c.benchmark_group("estimation_latency");
    group.sample_size(10);
    let mut register = |name: &str, est: &dyn SelectivityEstimator| {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for lq in &workload {
                    acc += est.estimate(std::hint::black_box(&lq.query));
                }
                acc
            })
        });
    };
    register("indep", &indep);
    register("postgres", &postgres);
    register("sample_1.3pct", &sample);
    register("naru_200_samples", &naru);
    group.finish();
}

criterion_group!(benches, bench_estimation_latency);
criterion_main!(benches);
