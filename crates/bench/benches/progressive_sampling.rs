//! End-to-end progressive-sampling benchmark: the optimized
//! (zero-allocation, compacting) walk versus the pre-optimization reference
//! walk, over both a trained MADE model and an oracle density — so kernel
//! and sampler wins are visible in the context that actually matters
//! (per-query estimation latency), complementing the isolated kernel
//! numbers in `tensor_kernels`.

use criterion::{criterion_group, criterion_main, Criterion};
use naru_core::{NaruConfig, NaruEstimator, OracleDensity, ProgressiveSampler, SamplerConfig};
use naru_data::synthetic::dmv_like;
use naru_query::{generate_workload, LabeledQuery, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_progressive_sampling(c: &mut Criterion) {
    let table = dmv_like(2000, 42);
    let n = table.num_columns();
    let mut rng = StdRng::seed_from_u64(5);
    let workload: Vec<LabeledQuery> = generate_workload(&table, &WorkloadConfig::default(), 4, &mut rng);

    let mut config = NaruConfig::small().with_samples(300);
    config.train.epochs = 2;
    config.train.compute_data_entropy = false;
    config.train.eval_tuples = 0;
    let (estimator, _) = NaruEstimator::train(&table, &config);
    let oracle = OracleDensity::new(&table);
    let sampler = ProgressiveSampler::new(SamplerConfig { num_samples: 300, seed: 0 });

    let mut group = c.benchmark_group("progressive_sampling");
    group.sample_size(10);
    group.bench_function("made_optimized", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for lq in &workload {
                acc += sampler.estimate_detailed(estimator.model(), &lq.query.constraints(n)).selectivity;
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("made_reference", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for lq in &workload {
                acc += sampler.estimate_detailed_reference(estimator.model(), &lq.query.constraints(n)).selectivity;
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("oracle_optimized", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for lq in &workload {
                acc += sampler.estimate_detailed(&oracle, &lq.query.constraints(n)).selectivity;
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_progressive_sampling);
criterion_main!(benches);
