//! Progressive sampling vs exact enumeration (the Criterion counterpart of
//! Table 6): on a region small enough to enumerate, both produce the same
//! answer but at very different costs; sampling's cost is flat in the region
//! size while enumeration's grows with it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use naru_core::{enumerate_exact, OracleDensity, ProgressiveSampler, SamplerConfig};
use naru_data::synthetic::conviva_b_like;
use naru_query::{Predicate, Query};

fn bench_sampling_vs_enumeration(c: &mut Criterion) {
    let table = conviva_b_like(2000, 6, 3);
    let oracle = OracleDensity::new(&table);
    let schema = table.schema();

    // Queries with progressively larger regions (range filters widen).
    let widths = [2u32, 8, 25];
    let mut group = c.benchmark_group("sampling_vs_enumeration");
    group.sample_size(10);
    for &w in &widths {
        let query = Query::new(vec![
            Predicate::le(2, w.min(schema.domain_size(2) as u32 - 1)),
            Predicate::le(4, (w * 2).min(schema.domain_size(4) as u32 - 1)),
            Predicate::ge(5, 1),
        ]);
        let constraints = query.constraints(schema.num_columns());
        let region = query.region_size(&schema) as u64;

        group.bench_with_input(BenchmarkId::new("enumeration", region), &constraints, |b, cs| {
            b.iter(|| enumerate_exact(&oracle, std::hint::black_box(cs), u64::MAX))
        });
        let sampler = ProgressiveSampler::new(SamplerConfig { num_samples: 200, seed: 0 });
        group.bench_with_input(BenchmarkId::new("progressive_200", region), &constraints, |b, cs| {
            b.iter(|| sampler.estimate(&oracle, std::hint::black_box(cs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling_vs_enumeration);
criterion_main!(benches);
