//! Training-throughput benchmark: tuples/second of one maximum-likelihood
//! gradient step for the two autoregressive architectures (the cost model
//! behind Figure 5's epoch times).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use naru_core::{table_tuples, ColumnwiseConfig, ColumnwiseModel, EncodingPolicy, MadeModel, ModelConfig};
use naru_data::synthetic::dmv_like;
use naru_nn::optimizer::AdamConfig;

fn bench_training_step(c: &mut Criterion) {
    let table = dmv_like(4096, 7);
    let tuples = table_tuples(&table);
    let batch: Vec<Vec<u32>> = tuples[..256].to_vec();
    let adam = AdamConfig::default();

    let mut group = c.benchmark_group("train_step_256_tuples");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch.len() as u64));

    let config = ModelConfig {
        hidden_sizes: vec![64, 64],
        encoding: EncodingPolicy::compact(16),
        embedding_reuse: true,
        seed: 0,
    };
    let mut made = MadeModel::new(table.schema().domain_sizes(), &config);
    group.bench_function("made_64x64", |b| b.iter(|| made.train_step(std::hint::black_box(&batch), &adam)));

    let mut columnwise = ColumnwiseModel::new(
        table.schema().domain_sizes(),
        &ColumnwiseConfig { hidden_sizes: vec![32, 32], ..Default::default() },
    );
    group.bench_function("columnwise_32x32", |b| b.iter(|| columnwise.train_step(std::hint::black_box(&batch), &adam)));
    group.finish();
}

criterion_group!(benches, bench_training_step);
criterion_main!(benches);
