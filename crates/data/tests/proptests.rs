//! Property-based tests for the data substrate: dictionary invariants, CSV
//! round-trips, table surgery, and entropy bounds.

use naru_data::synthetic::ZipfSampler;
use naru_data::{parse_csv, Column, Table, Value};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dictionary is sorted, deduplicated, dense, and order-preserving.
    #[test]
    fn dictionary_invariants(values in proptest::collection::vec(-1000i64..1000, 1..300)) {
        let vals: Vec<Value> = values.iter().map(|&v| Value::Int(v)).collect();
        let col = Column::from_values("c", &vals);
        // Dense ids cover exactly the distinct values.
        let mut distinct = values.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(col.domain_size(), distinct.len());
        // Every row id decodes to the original value.
        for (row, v) in vals.iter().enumerate() {
            prop_assert_eq!(col.decode(col.id_at(row)), v);
        }
        // Order preservation: id order equals value order.
        for (a, b) in distinct.iter().zip(distinct.iter().skip(1)) {
            let ia = col.encode(&Value::Int(*a)).unwrap();
            let ib = col.encode(&Value::Int(*b)).unwrap();
            prop_assert!(ia < ib);
        }
        // value_counts sums to the row count.
        prop_assert_eq!(col.value_counts().iter().sum::<u64>() as usize, vals.len());
    }

    /// encode_le / encode_ge bracket any literal consistently.
    #[test]
    fn encode_bounds_bracket_literals(
        values in proptest::collection::vec(0i64..200, 2..100),
        probe in 0i64..200,
    ) {
        let vals: Vec<Value> = values.iter().map(|&v| Value::Int(v)).collect();
        let col = Column::from_values("c", &vals);
        let literal = Value::Int(probe);
        if let Some(le) = col.encode_le(&literal) {
            prop_assert!(*col.decode(le) <= literal);
        }
        if let Some(ge) = col.encode_ge(&literal) {
            prop_assert!(*col.decode(ge) >= literal);
        }
    }

    /// take_rows + append reconstructs the original table rows.
    #[test]
    fn take_rows_append_roundtrip(
        ids in proptest::collection::vec((0u32..5, 0u32..3), 2..80),
        split in 1usize..79,
    ) {
        let split = split.min(ids.len() - 1);
        let t = Table::new("t", vec![
            Column::from_ids("a", ids.iter().map(|p| p.0).collect(), 5),
            Column::from_ids("b", ids.iter().map(|p| p.1).collect(), 3),
        ]);
        let head: Vec<usize> = (0..split).collect();
        let tail: Vec<usize> = (split..t.num_rows()).collect();
        let mut rebuilt = t.take_rows(&head);
        rebuilt.append(&t.take_rows(&tail));
        prop_assert_eq!(rebuilt.num_rows(), t.num_rows());
        for r in 0..t.num_rows() {
            prop_assert_eq!(rebuilt.row(r), t.row(r));
        }
    }

    /// Data entropy is non-negative and bounded by log2(num rows) and by the
    /// log2 joint size.
    #[test]
    fn entropy_bounds(ids in proptest::collection::vec((0u32..4, 0u32..4), 1..120)) {
        let t = Table::new("t", vec![
            Column::from_ids("a", ids.iter().map(|p| p.0).collect(), 4),
            Column::from_ids("b", ids.iter().map(|p| p.1).collect(), 4),
        ]);
        let h = t.data_entropy_bits();
        prop_assert!(h >= -1e-9);
        prop_assert!(h <= (t.num_rows() as f64).log2() + 1e-9);
        prop_assert!(h <= 4.0 + 1e-9); // log2(16)
    }

    /// CSV writing-free round trip: parse a generated CSV and recover cells.
    #[test]
    fn csv_parse_recovers_cells(rows in proptest::collection::vec((0u32..50, -20i64..20), 1..40)) {
        let mut text = String::from("a,b\n");
        for (a, b) in &rows {
            text.push_str(&format!("{a},{b}\n"));
        }
        let t = parse_csv("gen", &text, None, None).unwrap();
        prop_assert_eq!(t.num_rows(), rows.len());
        for (r, (a, b)) in rows.iter().enumerate() {
            prop_assert_eq!(t.row_values(r), vec![Value::Int(*a as i64), Value::Int(*b)]);
        }
    }

    /// The Zipf sampler's pmf is a distribution and is monotone in rank.
    #[test]
    fn zipf_pmf_is_monotone_distribution(n in 1usize..500, s in 0.0f64..3.0) {
        let z = ZipfSampler::new(n, s);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for k in 1..n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }
}
