//! Cell values.
//!
//! Naru models every column as a finite, discrete domain (§2.2 of the
//! paper): the distinct values actually present in the column are sorted and
//! dictionary-encoded into dense integer ids. [`Value`] is the *decoded*
//! representation; estimators all operate on the encoded id space.

use std::cmp::Ordering;
use std::fmt;

/// A single cell value. Floats are compared by total order so a column of
/// any type can be sorted into a canonical dictionary.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value; sorts before everything else and acts as the paper's
    /// `⊥` placeholder inserted so a previously-built estimator can keep
    /// functioning on new data.
    Null,
    /// Integer (covers booleans, dates encoded as days, counters, ...).
    Int(i64),
    /// Floating-point measurement.
    Float(f64),
    /// Categorical string.
    Str(String),
}

impl Value {
    /// Rank of the variant used to order values of mixed types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// Returns the integer payload if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate in-memory footprint, used for the storage-budget
    /// accounting of Table 1.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => s.len() + 8,
        }
    }

    /// Parses a textual field the way the CSV loader does: integers first,
    /// then floats, otherwise a string; empty fields become `Null`.
    pub fn parse(text: &str) -> Value {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Value::Null;
        }
        if let Ok(i) = trimmed.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            return Value::Float(f);
        }
        Value::Str(trimmed.to_string())
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            // Mixed types (rare; e.g. a numeric column with a stray string)
            // order by type rank so the dictionary stays total.
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "∅"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_natural() {
        let mut vals = vec![Value::Int(5), Value::Int(-1), Value::Int(3)];
        vals.sort();
        assert_eq!(vals, vec![Value::Int(-1), Value::Int(3), Value::Int(5)]);

        let mut strs = vec![Value::from("b"), Value::from("a"), Value::from("aa")];
        strs.sort();
        assert_eq!(strs, vec![Value::from("a"), Value::from("aa"), Value::from("b")]);
    }

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(0), Value::Null, Value::from("x")];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
    }

    #[test]
    fn float_total_order_handles_nan() {
        let mut vals = [Value::Float(f64::NAN), Value::Float(1.0), Value::Float(-1.0)];
        vals.sort();
        assert_eq!(vals[0], Value::Float(-1.0));
        assert_eq!(vals[1], Value::Float(1.0));
    }

    #[test]
    fn parse_detects_types() {
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse(" 3.5 "), Value::Float(3.5));
        assert_eq!(Value::parse("SUBN"), Value::from("SUBN"));
        assert_eq!(Value::parse(""), Value::Null);
        assert_eq!(Value::parse("  "), Value::Null);
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::from("NY").to_string(), "NY");
    }

    #[test]
    fn size_bytes_reasonable() {
        assert_eq!(Value::Int(1).size_bytes(), 8);
        assert!(Value::from("hello").size_bytes() >= 5);
    }
}
