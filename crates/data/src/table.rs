//! Relational tables over dictionary-encoded columns.

use std::collections::HashMap;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::column::Column;
use crate::value::Value;

/// Lightweight description of a table's columns: names and domain sizes.
///
/// Estimators hold a `TableSchema` so they can be queried without keeping
/// the (potentially large) data around.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    names: Vec<String>,
    domain_sizes: Vec<usize>,
    num_rows: usize,
}

impl TableSchema {
    /// Creates a schema directly (mostly useful in tests).
    pub fn new(names: Vec<String>, domain_sizes: Vec<usize>, num_rows: usize) -> Self {
        assert_eq!(names.len(), domain_sizes.len(), "names/domain_sizes length mismatch");
        Self { names, domain_sizes, num_rows }
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.names.len()
    }

    /// Number of rows in the table the schema was taken from.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Domain size of column `i`.
    pub fn domain_size(&self, i: usize) -> usize {
        self.domain_sizes[i]
    }

    /// All domain sizes.
    pub fn domain_sizes(&self) -> &[usize] {
        &self.domain_sizes
    }

    /// log10 of the exact joint-distribution size (product of domain
    /// sizes), the quantity reported in Table 1 of the paper.
    pub fn joint_size_log10(&self) -> f64 {
        self.domain_sizes.iter().map(|&d| (d as f64).log10()).sum()
    }
}

/// A table of dictionary-encoded columns, all of equal length.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
}

impl Table {
    /// Creates a table from columns.
    ///
    /// # Panics
    /// Panics if the columns have differing lengths or there are none.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        let len = columns[0].len();
        assert!(columns.iter().all(|c| c.len() == len), "columns must have equal length");
        Self { name: name.into(), columns }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns[0].len()
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column accessor.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Looks up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// The schema (names + domain sizes + row count).
    pub fn schema(&self) -> TableSchema {
        TableSchema {
            names: self.columns.iter().map(|c| c.name().to_string()).collect(),
            domain_sizes: self.columns.iter().map(Column::domain_size).collect(),
            num_rows: self.num_rows(),
        }
    }

    /// Writes the id-encoded row `row` into `out` (resized as needed).
    pub fn row_ids(&self, row: usize, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.columns.iter().map(|c| c.id_at(row)));
    }

    /// Returns the id-encoded row as a fresh vector.
    pub fn row(&self, row: usize) -> Vec<u32> {
        self.columns.iter().map(|c| c.id_at(row)).collect()
    }

    /// Returns the decoded row.
    pub fn row_values(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.decode(c.id_at(row)).clone()).collect()
    }

    /// Approximate in-memory size of the decoded table, the denominator of
    /// the storage budgets in Table 1.
    pub fn decoded_size_bytes(&self) -> usize {
        self.columns.iter().map(Column::decoded_size_bytes).sum()
    }

    /// Empirical entropy `H(P)` of the joint data distribution, in bits per
    /// tuple. Used as the reference point of the entropy-gap metric (§3.3).
    pub fn data_entropy_bits(&self) -> f64 {
        let mut counts: HashMap<Vec<u32>, u64> = HashMap::new();
        let mut row = Vec::with_capacity(self.num_columns());
        for r in 0..self.num_rows() {
            self.row_ids(r, &mut row);
            *counts.entry(row.clone()).or_insert(0) += 1;
        }
        let n = self.num_rows() as f64;
        counts
            .values()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    }

    /// Uniform random sample of `k` row indices (without replacement when
    /// `k <= num_rows`, with replacement otherwise).
    pub fn sample_row_indices<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<usize> {
        let n = self.num_rows();
        if k <= n {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(rng);
            idx.truncate(k);
            idx
        } else {
            (0..k).map(|_| rng.gen_range(0..n)).collect()
        }
    }

    /// Returns a new table containing only the selected rows.
    pub fn take_rows(&self, rows: &[usize]) -> Table {
        Table { name: self.name.clone(), columns: self.columns.iter().map(|c| c.take_rows(rows)).collect() }
    }

    /// Returns a new table with only the first `k` columns (used by the
    /// Conviva-B column-count microbenchmark, Figure 8).
    pub fn project_columns(&self, k: usize) -> Table {
        assert!(k >= 1 && k <= self.num_columns(), "invalid projection width {k}");
        Table { name: format!("{}[..{k}]", self.name), columns: self.columns[..k].to_vec() }
    }

    /// Returns a new table with exactly the named column indices.
    pub fn select_columns(&self, cols: &[usize]) -> Table {
        assert!(!cols.is_empty(), "must select at least one column");
        Table { name: self.name.clone(), columns: cols.iter().map(|&c| self.columns[c].clone()).collect() }
    }

    /// Appends the rows of `other` (same schema / shared dictionaries).
    pub fn append(&mut self, other: &Table) {
        assert_eq!(self.num_columns(), other.num_columns(), "column count mismatch in append");
        for (a, b) in self.columns.iter_mut().zip(other.columns.iter()) {
            a.append(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_table() -> Table {
        Table::new(
            "t",
            vec![Column::from_ids("a", vec![0, 0, 1, 1, 2, 2], 3), Column::from_ids("b", vec![0, 1, 0, 1, 0, 1], 2)],
        )
    }

    #[test]
    fn schema_reports_shapes() {
        let t = small_table();
        let s = t.schema();
        assert_eq!(s.num_columns(), 2);
        assert_eq!(s.num_rows(), 6);
        assert_eq!(s.domain_sizes(), &[3, 2]);
        assert!((s.joint_size_log10() - (6f64).log10()).abs() < 1e-12);
    }

    #[test]
    fn rows_round_trip() {
        let t = small_table();
        assert_eq!(t.row(3), vec![1, 1]);
        let mut buf = Vec::new();
        t.row_ids(4, &mut buf);
        assert_eq!(buf, vec![2, 0]);
        assert_eq!(t.row_values(0), vec![Value::Int(0), Value::Int(0)]);
    }

    #[test]
    fn entropy_of_uniform_distinct_rows() {
        // 6 distinct rows, uniform: entropy = log2(6).
        let t = small_table();
        assert!((t.data_entropy_bits() - 6f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn entropy_of_duplicated_rows_is_lower() {
        let t = Table::new("t", vec![Column::from_ids("a", vec![0, 0, 0, 1], 2)]);
        // P = {0: 3/4, 1: 1/4}
        let expected = -(0.75f64 * 0.75f64.log2() + 0.25 * 0.25f64.log2());
        assert!((t.data_entropy_bits() - expected).abs() < 1e-9);
    }

    #[test]
    fn projection_and_selection() {
        let t = small_table();
        let p = t.project_columns(1);
        assert_eq!(p.num_columns(), 1);
        assert_eq!(p.column(0).name(), "a");
        let s = t.select_columns(&[1]);
        assert_eq!(s.column(0).name(), "b");
    }

    #[test]
    fn take_rows_and_append_preserve_dictionaries() {
        let t = small_table();
        let head = t.take_rows(&[0, 1, 2]);
        let tail = t.take_rows(&[3, 4, 5]);
        let mut rebuilt = head.clone();
        rebuilt.append(&tail);
        assert_eq!(rebuilt.num_rows(), 6);
        for r in 0..6 {
            assert_eq!(rebuilt.row(r), t.row(r));
        }
    }

    #[test]
    fn sampling_without_replacement_is_a_permutation_prefix() {
        let t = small_table();
        let mut rng = StdRng::seed_from_u64(5);
        let mut idx = t.sample_row_indices(&mut rng, 6);
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
        let small = t.sample_row_indices(&mut rng, 3);
        assert_eq!(small.len(), 3);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_columns_rejected() {
        let _ = Table::new("t", vec![Column::from_ids("a", vec![0], 1), Column::from_ids("b", vec![0, 1], 2)]);
    }
}
