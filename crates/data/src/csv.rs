//! A small CSV loader.
//!
//! The paper evaluates on the public DMV registration export and on two
//! proprietary Conviva tables. The synthetic generators in
//! [`crate::synthetic`] stand in for those datasets, but this loader lets a
//! user drop in the real CSV files (e.g. the DMV export from
//! data.ny.gov) and build estimators on them with no further changes.
//!
//! The implementation handles the common subset of RFC 4180: a header row,
//! `,` separators, and double-quoted fields containing separators or
//! escaped quotes. It is not a streaming parser; tables at the scale this
//! workspace targets fit comfortably in memory.

use std::fs;
use std::io;
use std::path::Path;

use crate::column::Column;
use crate::table::Table;
use crate::value::Value;

/// Errors produced by the CSV loader.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the file (with a human-readable description).
    Malformed(String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Malformed(msg) => write!(f, "malformed csv: {msg}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Splits one CSV record into fields, honouring double quotes.
fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    field.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            _ => field.push(c),
        }
    }
    fields.push(field);
    fields
}

/// Parses CSV text (with a header row) into a [`Table`].
///
/// `columns`: optional subset of header names to keep, in the given order;
/// `limit`: optional maximum number of data rows to read.
pub fn parse_csv(name: &str, text: &str, columns: Option<&[&str]>, limit: Option<usize>) -> Result<Table, CsvError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines.next().ok_or_else(|| CsvError::Malformed("empty file".into()))?;
    let header = split_record(header_line);

    let selected: Vec<(usize, String)> = match columns {
        Some(wanted) => wanted
            .iter()
            .map(|w| {
                header
                    .iter()
                    .position(|h| h.trim().eq_ignore_ascii_case(w.trim()))
                    .map(|i| (i, w.to_string()))
                    .ok_or_else(|| CsvError::Malformed(format!("column '{w}' not found in header")))
            })
            .collect::<Result<_, _>>()?,
        None => header.iter().enumerate().map(|(i, h)| (i, h.trim().to_string())).collect(),
    };

    let mut raw: Vec<Vec<Value>> = vec![Vec::new(); selected.len()];
    for (row_idx, line) in lines.enumerate() {
        if let Some(max) = limit {
            if row_idx >= max {
                break;
            }
        }
        let fields = split_record(line);
        for (out_idx, (col_idx, _)) in selected.iter().enumerate() {
            let value = fields.get(*col_idx).map(|s| Value::parse(s)).unwrap_or(Value::Null);
            raw[out_idx].push(value);
        }
    }
    if raw[0].is_empty() {
        return Err(CsvError::Malformed("no data rows".into()));
    }

    let columns =
        selected.iter().zip(raw.iter()).map(|((_, name), values)| Column::from_values(name.clone(), values)).collect();
    Ok(Table::new(name, columns))
}

/// Loads a CSV file from disk. See [`parse_csv`].
pub fn load_csv(path: impl AsRef<Path>, columns: Option<&[&str]>, limit: Option<usize>) -> Result<Table, CsvError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path)?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("table");
    parse_csv(name, &text, columns, limit)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "city,year,stars\nPortland,2017,10\nSF,2018,8\n\"San Jose, CA\",2017,9\nPortland,2019,10\n";

    #[test]
    fn parses_header_and_rows() {
        let t = parse_csv("checkins", SAMPLE, None, None).unwrap();
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.column(0).name(), "city");
        assert_eq!(t.column(1).domain_size(), 3); // 2017, 2018, 2019
    }

    #[test]
    fn quoted_fields_keep_commas() {
        let t = parse_csv("checkins", SAMPLE, None, None).unwrap();
        let city = t.column(0);
        assert!(city.domain().iter().any(|v| v.as_str() == Some("San Jose, CA")));
    }

    #[test]
    fn column_subset_and_limit() {
        let t = parse_csv("checkins", SAMPLE, Some(&["stars", "city"]), Some(2)).unwrap();
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column(0).name(), "stars");
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn missing_column_is_an_error() {
        let err = parse_csv("x", SAMPLE, Some(&["nope"]), None).unwrap_err();
        assert!(matches!(err, CsvError::Malformed(_)));
    }

    #[test]
    fn empty_file_is_an_error() {
        assert!(parse_csv("x", "", None, None).is_err());
        assert!(parse_csv("x", "a,b\n", None, None).is_err());
    }

    #[test]
    fn escaped_quotes() {
        let text = "name\n\"say \"\"hi\"\"\"\nplain\n";
        let t = parse_csv("q", text, None, None).unwrap();
        assert!(t.column(0).domain().iter().any(|v| v.as_str() == Some("say \"hi\"")));
    }

    #[test]
    fn missing_trailing_fields_become_null() {
        let text = "a,b\n1,2\n3\n";
        let t = parse_csv("x", text, None, None).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert!(t.column(1).domain().contains(&Value::Null));
    }
}
