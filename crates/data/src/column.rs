//! Dictionary-encoded columns.
//!
//! Following §4.2 of the paper, each column's distinct values are collected
//! (its *empirical domain*), sorted so the dictionary order is consistent
//! with the natural value order, and mapped to dense integer ids in
//! `[0, |A_i|)`. All estimators in this workspace operate on those ids;
//! range predicates on the original values translate to id ranges because
//! the dictionary is order-preserving.

use crate::value::Value;

/// A single dictionary-encoded column.
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    /// Sorted distinct values; index = dictionary id.
    domain: Vec<Value>,
    /// Per-row value ids.
    ids: Vec<u32>,
}

impl Column {
    /// Builds a column from raw values, constructing the sorted dictionary.
    pub fn from_values(name: impl Into<String>, values: &[Value]) -> Self {
        let mut domain: Vec<Value> = values.to_vec();
        domain.sort();
        domain.dedup();
        let ids =
            values.iter().map(|v| domain.binary_search(v).expect("value must be in its own domain") as u32).collect();
        Self { name: name.into(), domain, ids }
    }

    /// Builds a column directly from pre-encoded ids with an integer domain
    /// `0..domain_size`. This is the fast path used by the synthetic data
    /// generators, which produce ids natively.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn from_ids(name: impl Into<String>, ids: Vec<u32>, domain_size: usize) -> Self {
        assert!(domain_size > 0, "domain must be non-empty");
        assert!(ids.iter().all(|&id| (id as usize) < domain_size), "id out of range for domain size {domain_size}");
        let domain = (0..domain_size as i64).map(Value::Int).collect();
        Self { name: name.into(), domain, ids }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Domain size `|A_i|` (number of distinct values).
    pub fn domain_size(&self) -> usize {
        self.domain.len()
    }

    /// The sorted distinct values.
    pub fn domain(&self) -> &[Value] {
        &self.domain
    }

    /// Decodes an id back to its value.
    pub fn decode(&self, id: u32) -> &Value {
        &self.domain[id as usize]
    }

    /// Encodes a value to its id, if present in the domain.
    pub fn encode(&self, value: &Value) -> Option<u32> {
        self.domain.binary_search(value).ok().map(|i| i as u32)
    }

    /// Id of the largest domain value `<= value`, useful for translating
    /// range literals that are not present in the domain.
    pub fn encode_le(&self, value: &Value) -> Option<u32> {
        match self.domain.binary_search(value) {
            Ok(i) => Some(i as u32),
            Err(0) => None,
            Err(i) => Some((i - 1) as u32),
        }
    }

    /// Id of the smallest domain value `>= value`.
    pub fn encode_ge(&self, value: &Value) -> Option<u32> {
        match self.domain.binary_search(value) {
            Ok(i) => Some(i as u32),
            Err(i) if i < self.domain.len() => Some(i as u32),
            Err(_) => None,
        }
    }

    /// Per-row ids.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The id of row `row`.
    #[inline]
    pub fn id_at(&self, row: usize) -> u32 {
        self.ids[row]
    }

    /// Histogram of value-id frequencies (length = domain size).
    pub fn value_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.domain_size()];
        for &id in &self.ids {
            counts[id as usize] += 1;
        }
        counts
    }

    /// Approximate in-memory size of the *decoded* column, used to compute
    /// the storage budgets of Table 1 (a fraction of the original data
    /// size, not of the encoded representation).
    pub fn decoded_size_bytes(&self) -> usize {
        self.ids.iter().map(|&id| self.domain[id as usize].size_bytes()).sum()
    }

    /// Returns a new column containing only the selected rows.
    pub fn take_rows(&self, rows: &[usize]) -> Column {
        Column {
            name: self.name.clone(),
            domain: self.domain.clone(),
            ids: rows.iter().map(|&r| self.ids[r]).collect(),
        }
    }

    /// Appends the rows of `other`, which must share the same domain.
    ///
    /// # Panics
    /// Panics if the domains differ (callers are expected to build columns
    /// over a shared dictionary when splitting / re-assembling tables).
    pub fn append(&mut self, other: &Column) {
        assert_eq!(self.domain, other.domain, "appending columns with different domains");
        self.ids.extend_from_slice(&other.ids);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_is_sorted_and_dense() {
        let values = vec![Value::from("SF"), Value::from("Portland"), Value::from("SF"), Value::from("Waikiki")];
        let col = Column::from_values("city", &values);
        assert_eq!(col.domain_size(), 3);
        assert_eq!(col.domain()[0], Value::from("Portland"));
        assert_eq!(col.ids(), &[1, 0, 1, 2]);
        assert_eq!(col.decode(2), &Value::from("Waikiki"));
        assert_eq!(col.encode(&Value::from("SF")), Some(1));
        assert_eq!(col.encode(&Value::from("LA")), None);
    }

    #[test]
    fn numeric_dictionary_preserves_order() {
        let values: Vec<Value> = [30i64, 10, 20, 10].iter().map(|&v| Value::Int(v)).collect();
        let col = Column::from_values("x", &values);
        assert_eq!(col.domain(), &[Value::Int(10), Value::Int(20), Value::Int(30)]);
        // Order-preserving: id comparison == value comparison.
        assert!(col.encode(&Value::Int(10)).unwrap() < col.encode(&Value::Int(30)).unwrap());
    }

    #[test]
    fn encode_le_ge_handle_absent_literals() {
        let values: Vec<Value> = [10i64, 20, 30].iter().map(|&v| Value::Int(v)).collect();
        let col = Column::from_values("x", &values);
        assert_eq!(col.encode_le(&Value::Int(25)), Some(1));
        assert_eq!(col.encode_ge(&Value::Int(25)), Some(2));
        assert_eq!(col.encode_le(&Value::Int(5)), None);
        assert_eq!(col.encode_ge(&Value::Int(35)), None);
        assert_eq!(col.encode_le(&Value::Int(20)), Some(1));
    }

    #[test]
    fn from_ids_builds_integer_domain() {
        let col = Column::from_ids("c", vec![0, 2, 1, 2], 3);
        assert_eq!(col.domain_size(), 3);
        assert_eq!(col.value_counts(), vec![1, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "id out of range")]
    fn from_ids_rejects_out_of_range() {
        let _ = Column::from_ids("c", vec![0, 3], 3);
    }

    #[test]
    fn take_rows_and_append() {
        let mut a = Column::from_ids("c", vec![0, 1, 2, 1], 3);
        let b = a.take_rows(&[2, 3]);
        assert_eq!(b.ids(), &[2, 1]);
        a.append(&b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.ids(), &[0, 1, 2, 1, 2, 1]);
    }

    #[test]
    fn value_counts_sum_to_len() {
        let col = Column::from_ids("c", vec![1, 1, 1, 0, 2, 2], 4);
        let counts = col.value_counts();
        assert_eq!(counts, vec![1, 3, 2, 0]);
        assert_eq!(counts.iter().sum::<u64>() as usize, col.len());
    }
}
