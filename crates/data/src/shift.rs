//! Partitioned ingest for the data-shift experiment (Table 8).
//!
//! The paper partitions DMV by a date column into five parts, ingests them
//! in order ("one new partition per day"), and measures how a stale
//! estimator degrades versus one that is fine-tuned after each ingest. This
//! module provides the partitioning and the incremental union of the
//! ingested prefix.

use crate::table::Table;

/// Splits `table` into `parts` partitions by ranges of the dictionary ids
/// of `column` (e.g. a date column), emulating time-based partitioning.
///
/// Rows whose column id falls in the `k`-th equal-width id range go to
/// partition `k`. Partitions share the original dictionaries, so they can
/// be re-appended and queried with the same encoded literals.
pub fn partition_by_column(table: &Table, column: usize, parts: usize) -> Vec<Table> {
    assert!(parts >= 1, "need at least one partition");
    assert!(column < table.num_columns(), "column index out of range");
    let domain = table.column(column).domain_size();
    let width = (domain as f64 / parts as f64).ceil().max(1.0) as usize;

    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for row in 0..table.num_rows() {
        let id = table.column(column).id_at(row) as usize;
        let part = (id / width).min(parts - 1);
        buckets[part].push(row);
    }
    buckets.into_iter().map(|rows| table.take_rows(&rows)).collect()
}

/// Incrementally unions partitions: `ingested_prefix(&parts, k)` is the
/// table after the first `k` ingests (1-based count).
pub fn ingested_prefix(parts: &[Table], count: usize) -> Table {
    assert!(count >= 1 && count <= parts.len(), "invalid ingest count {count}");
    let mut acc = parts[0].clone();
    for part in &parts[1..count] {
        acc.append(part);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::dmv_like;

    #[test]
    fn partitions_cover_all_rows_disjointly() {
        let t = dmv_like(3000, 1);
        let date_col = 6; // valid_date
        let parts = partition_by_column(&t, date_col, 5);
        assert_eq!(parts.len(), 5);
        let total: usize = parts.iter().map(Table::num_rows).sum();
        assert_eq!(total, t.num_rows());
        // Each partition only contains ids from its own range.
        let domain = t.column(date_col).domain_size();
        let width = (domain as f64 / 5.0).ceil() as usize;
        for (k, p) in parts.iter().enumerate() {
            for r in 0..p.num_rows() {
                let id = p.column(date_col).id_at(r) as usize;
                let expected = (id / width).min(4);
                assert_eq!(expected, k);
            }
        }
    }

    #[test]
    fn ingested_prefix_grows_monotonically() {
        let t = dmv_like(1000, 2);
        let parts = partition_by_column(&t, 6, 5);
        let mut prev = 0;
        for k in 1..=5 {
            let prefix = ingested_prefix(&parts, k);
            assert!(prefix.num_rows() >= prev);
            prev = prefix.num_rows();
        }
        assert_eq!(prev, t.num_rows());
    }

    #[test]
    fn single_partition_is_whole_table() {
        let t = dmv_like(500, 3);
        let parts = partition_by_column(&t, 0, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].num_rows(), t.num_rows());
    }

    #[test]
    #[should_panic(expected = "invalid ingest count")]
    fn zero_ingests_rejected() {
        let t = dmv_like(100, 4);
        let parts = partition_by_column(&t, 6, 3);
        let _ = ingested_prefix(&parts, 0);
    }
}
