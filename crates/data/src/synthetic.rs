//! Synthetic dataset generators.
//!
//! The paper evaluates on three datasets: the public **DMV** vehicle
//! registration export and two proprietary **Conviva** tables. The Conviva
//! data cannot be redistributed and the DMV export is hundreds of megabytes,
//! so this module provides seeded generators that reproduce the
//! characteristics the paper's experiments actually exercise:
//!
//! * the per-column domain sizes listed in §6.1.1 (DMV: 4, 75, 89, 63, 59,
//!   9, 2101, 225, 2, 2, 2; Conviva-A: 15 columns with domains up to ≈1.9K;
//!   Conviva-B: 100 columns, domains 2–10K),
//! * heavy skew within columns (Zipf-distributed value frequencies), and
//! * strong cross-column correlation induced through latent variables, so
//!   that independence-assuming estimators incur the large errors the paper
//!   reports while a joint model does not.
//!
//! Row counts are parameters: the paper uses 11.5M (DMV) and 4.1M
//! (Conviva-A) rows, which are impractical for a single-core CI run, so the
//! experiment harness defaults to scaled-down row counts and documents the
//! substitution in EXPERIMENTS.md. The real DMV CSV can be loaded through
//! [`crate::csv::load_csv`] instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::column::Column;
use crate::table::Table;

/// Samples from a Zipf distribution over ranks `0..n` with exponent `s`,
/// using a precomputed CDF and binary search.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with skew exponent `s` (larger `s`
    /// means heavier skew; `s = 0` is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs a non-empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is over an empty domain (never true by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability of rank `k` under the distribution.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Deterministically maps a rank through a pseudo-random permutation so the
/// most frequent value is not always id 0; keeps generated columns from
/// being trivially "sorted by frequency" while staying reproducible.
fn permute(rank: usize, n: usize, salt: u64) -> u32 {
    if n <= 1 {
        return 0;
    }
    // A multiplicative hash with an odd multiplier is a bijection mod 2^k;
    // fold into [0, n) by rejection-free remapping that stays a bijection
    // over the first n ranks for our purposes (approximate but adequate —
    // collisions only merge value frequencies slightly).
    let x = (rank as u64).wrapping_mul(6364136223846793005).wrapping_add(salt);
    ((x >> 16) % n as u64) as u32
}

/// The DMV column layout used throughout the evaluation: names and domain
/// sizes from §6.1.1 of the paper.
pub const DMV_COLUMNS: [(&str, usize); 11] = [
    ("record_type", 4),
    ("reg_class", 75),
    ("state", 89),
    ("county", 63),
    ("body_type", 59),
    ("fuel_type", 9),
    ("valid_date", 2101),
    ("color", 225),
    ("sco_ind", 2),
    ("sus_ind", 2),
    ("rev_ind", 2),
];

/// Generates a DMV-like table with `rows` rows.
///
/// Correlation structure (all through the dictionary-id space):
/// * `record_type` is drawn from a skewed categorical and conditions
///   `reg_class` and `body_type`;
/// * `state` is extremely skewed (the export is dominated by NY) and
///   conditions `county`;
/// * `reg_class` conditions `valid_date` (registration classes renew on
///   different schedules) and the three indicator flags;
/// * `body_type` conditions `fuel_type` and (weakly) `color`.
pub fn dmv_like(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows;

    let d =
        |name: &str| -> usize { DMV_COLUMNS.iter().find(|(c, _)| *c == name).map(|(_, d)| *d).expect("known column") };

    let record_type_dist = ZipfSampler::new(d("record_type"), 1.2);
    let reg_class_dist = ZipfSampler::new(d("reg_class"), 1.4);
    let state_dist = ZipfSampler::new(d("state"), 2.2);
    let county_dist = ZipfSampler::new(d("county"), 1.1);
    let body_dist = ZipfSampler::new(d("body_type"), 1.5);
    let fuel_dist = ZipfSampler::new(d("fuel_type"), 1.8);
    let date_dist = ZipfSampler::new(300, 1.05);
    let color_dist = ZipfSampler::new(d("color"), 1.6);

    let mut cols: Vec<Vec<u32>> = (0..11).map(|_| Vec::with_capacity(n)).collect();
    for _ in 0..n {
        let record_type = record_type_dist.sample(&mut rng) as u32;
        // reg_class correlates with record_type: each record type "owns" a
        // band of registration classes.
        let reg_band = (record_type as usize * 19) % d("reg_class");
        let reg_class = ((reg_class_dist.sample(&mut rng) + reg_band) % d("reg_class")) as u32;

        let state_rank = state_dist.sample(&mut rng);
        let state = permute(state_rank, d("state"), 0xD0);
        // County only meaningful for the dominant state; other states
        // concentrate on a single "out-of-state" county value.
        let county = if state_rank == 0 {
            permute(county_dist.sample(&mut rng), d("county"), 0xC0)
        } else {
            (d("county") - 1) as u32
        };

        let body_band = (record_type as usize * 13) % d("body_type");
        let body_type = ((body_dist.sample(&mut rng) + body_band) % d("body_type")) as u32;
        let fuel_band = (body_type as usize * 3) % d("fuel_type");
        let fuel_type = ((fuel_dist.sample(&mut rng) + fuel_band) % d("fuel_type")) as u32;

        // valid_date: clusters by reg_class with local Zipf noise; domain
        // 2101 distinct dates.
        let date_center = (reg_class as usize * 37) % d("valid_date");
        let date_offset = date_dist.sample(&mut rng);
        let sign: bool = rng.gen();
        let valid_date = if sign {
            ((date_center + date_offset) % d("valid_date")) as u32
        } else {
            ((date_center + d("valid_date") - date_offset % d("valid_date")) % d("valid_date")) as u32
        };

        let color_band = (body_type as usize * 7) % d("color");
        let color = ((color_dist.sample(&mut rng) + color_band) % d("color")) as u32;

        // Indicator flags: rare, and more likely for specific reg classes.
        let risky = reg_class.is_multiple_of(11);
        let p_flag = if risky { 0.18 } else { 0.01 };
        let sco_ind = u32::from(rng.gen_bool(p_flag));
        let sus_ind = u32::from(rng.gen_bool(if sco_ind == 1 { 0.5 } else { p_flag }));
        let rev_ind = u32::from(rng.gen_bool(if sus_ind == 1 { 0.3 } else { 0.005 }));

        let row =
            [record_type, reg_class, state, county, body_type, fuel_type, valid_date, color, sco_ind, sus_ind, rev_ind];
        for (c, v) in row.into_iter().enumerate() {
            cols[c].push(v);
        }
    }

    let columns =
        DMV_COLUMNS.iter().zip(cols).map(|((name, domain), ids)| Column::from_ids(*name, ids, *domain)).collect();
    Table::new("dmv", columns)
}

/// Conviva-A-like: 15 columns mixing small-domain categorical flags with
/// large-domain (up to ~1.9K) skewed numeric measurements, correlated
/// through a latent "session quality" factor. Matches the shape described
/// in §6.1.1: similar per-column domain range to DMV but many more numeric
/// columns, hence a much larger joint space (~10^23).
pub const CONVIVA_A_COLUMNS: [(&str, usize); 15] = [
    ("error_flag", 2),
    ("connection_type", 6),
    ("device_type", 12),
    ("cdn", 8),
    ("city", 300),
    ("asn", 700),
    ("player_version", 40),
    ("bitrate_kbps", 1900),
    ("avg_bandwidth_kbps", 1500),
    ("startup_ms", 1200),
    ("buffering_ratio", 800),
    ("play_time_s", 1700),
    ("session_quality", 10),
    ("country", 50),
    ("isp", 150),
];

/// Generates a Conviva-A-like table.
pub fn conviva_a_like(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let dists: Vec<ZipfSampler> =
        CONVIVA_A_COLUMNS.iter().map(|(_, d)| ZipfSampler::new(*d, if *d > 100 { 1.15 } else { 1.4 })).collect();

    let mut cols: Vec<Vec<u32>> = (0..CONVIVA_A_COLUMNS.len()).map(|_| Vec::with_capacity(rows)).collect();
    for _ in 0..rows {
        // Latent session quality in [0, 1): drives bandwidth, bitrate,
        // startup time, buffering and the error flag.
        let quality: f64 = rng.gen::<f64>().powf(0.5);
        let geo = rng.gen_range(0..8u32);

        for (c, ((name, domain), dist)) in CONVIVA_A_COLUMNS.iter().zip(dists.iter()).enumerate() {
            let domain = *domain;
            let id: u32 = match *name {
                "error_flag" => u32::from(rng.gen_bool((1.0 - quality) * 0.3)),
                "connection_type" => ((quality * 3.0) as usize + dist.sample(&mut rng)).min(domain - 1) as u32,
                "device_type" => permute(dist.sample(&mut rng), domain, 0x11),
                "cdn" => ((geo as usize + dist.sample(&mut rng)) % domain) as u32,
                "city" => {
                    let band = (geo as usize * 37) % domain;
                    ((band + dist.sample(&mut rng)) % domain) as u32
                }
                "asn" => {
                    let band = (geo as usize * 87) % domain;
                    ((band + dist.sample(&mut rng)) % domain) as u32
                }
                "player_version" => dist.sample(&mut rng) as u32,
                "bitrate_kbps" | "avg_bandwidth_kbps" => {
                    // Higher quality sessions sit in the upper part of the domain.
                    let center = (quality * (domain as f64 - 1.0)) as usize;
                    let noise = dist.sample(&mut rng) % (domain / 8 + 1);
                    let sign: bool = rng.gen();
                    let v = if sign { center.saturating_add(noise) } else { center.saturating_sub(noise) };
                    v.min(domain - 1) as u32
                }
                "startup_ms" | "buffering_ratio" => {
                    let center = ((1.0 - quality) * (domain as f64 - 1.0)) as usize;
                    let noise = dist.sample(&mut rng) % (domain / 8 + 1);
                    let sign: bool = rng.gen();
                    let v = if sign { center.saturating_add(noise) } else { center.saturating_sub(noise) };
                    v.min(domain - 1) as u32
                }
                "play_time_s" => {
                    let center = (quality * (domain as f64 - 1.0) * 0.8) as usize;
                    let noise = dist.sample(&mut rng) % (domain / 4 + 1);
                    (center + noise).min(domain - 1) as u32
                }
                "session_quality" => ((quality * (domain as f64 - 1.0)).round() as usize).min(domain - 1) as u32,
                "country" => ((geo as usize * 6 + dist.sample(&mut rng)) % domain) as u32,
                "isp" => {
                    let band = (geo as usize * 19) % domain;
                    ((band + dist.sample(&mut rng)) % domain) as u32
                }
                _ => dist.sample(&mut rng) as u32,
            };
            cols[c].push(id);
        }
    }

    let columns =
        CONVIVA_A_COLUMNS.iter().zip(cols).map(|((name, domain), ids)| Column::from_ids(*name, ids, *domain)).collect();
    Table::new("conviva_a", columns)
}

/// Conviva-B-like: `cols` columns (default 100 in the paper) over `rows`
/// rows (default 10K), domains cycling between 2 and 10K, correlated via a
/// handful of latent factors. Used only for the §6.7 microbenchmarks where
/// an *oracle* model is queried, so the exact content matters less than the
/// scale (joint space ≈ 10^190 at 100 columns).
pub fn conviva_b_like(rows: usize, cols: usize, seed: u64) -> Table {
    assert!(cols >= 1, "need at least one column");
    let mut rng = StdRng::seed_from_u64(seed);
    // Domain sizes cycle through a spread of magnitudes, capped at 10K.
    let domain_cycle = [2usize, 5, 10, 25, 60, 150, 400, 1000, 2500, 10_000];
    let domains: Vec<usize> = (0..cols).map(|c| domain_cycle[c % domain_cycle.len()]).collect();
    let dists: Vec<ZipfSampler> = domains.iter().map(|&d| ZipfSampler::new(d, 1.3)).collect();

    const LATENTS: usize = 6;
    let mut col_ids: Vec<Vec<u32>> = (0..cols).map(|_| Vec::with_capacity(rows)).collect();
    for _ in 0..rows {
        let latents: Vec<f64> = (0..LATENTS).map(|_| rng.gen::<f64>()).collect();
        for c in 0..cols {
            let domain = domains[c];
            let latent = latents[c % LATENTS];
            let center = (latent * (domain as f64 - 1.0)) as usize;
            let noise = dists[c].sample(&mut rng) % (domain / 4 + 1);
            let id = ((center + noise) % domain) as u32;
            col_ids[c].push(id);
        }
    }

    let columns = (0..cols).map(|c| Column::from_ids(format!("m{c:03}"), col_ids[c].clone(), domains[c])).collect();
    Table::new("conviva_b", columns)
}

/// A tiny strongly-correlated two-column table used by unit tests:
/// `b = a` with probability `corr`, otherwise uniform.
pub fn correlated_pair(rows: usize, domain: usize, corr: f64, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = ZipfSampler::new(domain, 1.0);
    let mut a_ids = Vec::with_capacity(rows);
    let mut b_ids = Vec::with_capacity(rows);
    for _ in 0..rows {
        let a = dist.sample(&mut rng) as u32;
        let b = if rng.gen_bool(corr) { a } else { rng.gen_range(0..domain) as u32 };
        a_ids.push(a);
        b_ids.push(b);
    }
    Table::new("pair", vec![Column::from_ids("a", a_ids, domain), Column::from_ids("b", b_ids, domain)])
}

/// A small table whose columns are fully independent; useful as a control
/// in tests (the Indep baseline should be near-perfect on it).
pub fn independent_table(rows: usize, domains: &[usize], seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let columns = domains
        .iter()
        .enumerate()
        .map(|(c, &d)| {
            let dist = ZipfSampler::new(d, 1.0);
            let ids = (0..rows).map(|_| dist.sample(&mut rng) as u32).collect();
            Column::from_ids(format!("c{c}"), ids, d)
        })
        .collect();
    Table::new("indep", columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_normalized() {
        let z = ZipfSampler::new(100, 1.5);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(z.pmf(0) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(90));
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_sampling_matches_pmf_roughly() {
        let z = ZipfSampler::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let freq = count as f64 / n as f64;
            assert!((freq - z.pmf(k)).abs() < 0.01, "rank {k}: {freq} vs {}", z.pmf(k));
        }
    }

    #[test]
    fn dmv_like_has_paper_schema() {
        let t = dmv_like(2000, 42);
        assert_eq!(t.num_columns(), 11);
        assert_eq!(t.num_rows(), 2000);
        let schema = t.schema();
        for (i, (name, domain)) in DMV_COLUMNS.iter().enumerate() {
            assert_eq!(schema.names()[i], *name);
            assert_eq!(schema.domain_size(i), *domain, "column {name}");
        }
    }

    #[test]
    fn dmv_like_is_deterministic_per_seed() {
        let a = dmv_like(500, 7);
        let b = dmv_like(500, 7);
        let c = dmv_like(500, 8);
        for r in [0usize, 100, 499] {
            assert_eq!(a.row(r), b.row(r));
        }
        assert!((0..500).any(|r| a.row(r) != c.row(r)));
    }

    #[test]
    fn dmv_like_exhibits_correlation() {
        // state and county must be correlated: non-dominant states map to a
        // single county id, so H(county | state) << H(county).
        let t = dmv_like(5000, 3);
        let state = t.column(2);
        let county = t.column(3);
        let dominant_state = {
            let counts = state.value_counts();
            counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0 as u32
        };
        let mut non_dominant_other_county = 0;
        let mut non_dominant_total = 0;
        for r in 0..t.num_rows() {
            if state.id_at(r) != dominant_state {
                non_dominant_total += 1;
                if county.id_at(r) != (county.domain_size() - 1) as u32 {
                    non_dominant_other_county += 1;
                }
            }
        }
        assert!(non_dominant_total > 0);
        assert_eq!(non_dominant_other_county, 0, "county should be fixed outside the dominant state");
    }

    #[test]
    fn conviva_a_like_has_paper_schema_and_larger_joint() {
        let t = conviva_a_like(1000, 5);
        assert_eq!(t.num_columns(), 15);
        let dmv = dmv_like(1000, 5);
        assert!(t.schema().joint_size_log10() > dmv.schema().joint_size_log10());
    }

    #[test]
    fn conviva_a_quality_correlates_bitrate_and_buffering() {
        let t = conviva_a_like(4000, 11);
        let quality = t.column_index("session_quality").unwrap();
        let bitrate = t.column_index("bitrate_kbps").unwrap();
        let buffering = t.column_index("buffering_ratio").unwrap();
        // Split rows by quality and compare mean ids.
        let mut hi_bitrate = (0.0, 0usize);
        let mut lo_bitrate = (0.0, 0usize);
        let mut hi_buf = 0.0;
        let mut lo_buf = 0.0;
        for r in 0..t.num_rows() {
            let q = t.column(quality).id_at(r);
            if q >= 7 {
                hi_bitrate = (hi_bitrate.0 + t.column(bitrate).id_at(r) as f64, hi_bitrate.1 + 1);
                hi_buf += t.column(buffering).id_at(r) as f64;
            } else if q <= 2 {
                lo_bitrate = (lo_bitrate.0 + t.column(bitrate).id_at(r) as f64, lo_bitrate.1 + 1);
                lo_buf += t.column(buffering).id_at(r) as f64;
            }
        }
        if hi_bitrate.1 > 20 && lo_bitrate.1 > 20 {
            assert!(hi_bitrate.0 / hi_bitrate.1 as f64 > lo_bitrate.0 / lo_bitrate.1 as f64);
            assert!(hi_buf / (hi_bitrate.1 as f64) < lo_buf / (lo_bitrate.1 as f64));
        }
    }

    #[test]
    fn conviva_b_like_scales_columns() {
        let t = conviva_b_like(200, 100, 1);
        assert_eq!(t.num_columns(), 100);
        assert_eq!(t.num_rows(), 200);
        // Joint space should be astronomically large (paper: 10^190).
        assert!(t.schema().joint_size_log10() > 100.0);
        let small = conviva_b_like(50, 5, 1);
        assert_eq!(small.num_columns(), 5);
    }

    #[test]
    fn correlated_pair_correlates() {
        let t = correlated_pair(5000, 10, 0.9, 2);
        let equal = (0..t.num_rows()).filter(|&r| t.column(0).id_at(r) == t.column(1).id_at(r)).count();
        assert!(equal as f64 / t.num_rows() as f64 > 0.85);
    }

    #[test]
    fn independent_table_shapes() {
        let t = independent_table(100, &[3, 7, 2], 9);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.schema().domain_sizes(), &[3, 7, 2]);
    }
}
