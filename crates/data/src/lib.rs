//! # naru-data
//!
//! The columnar table substrate for the Naru reproduction.
//!
//! Naru treats a relation as a high-dimensional *discrete* distribution:
//! each column's distinct values are collected, sorted, and
//! dictionary-encoded into dense integer ids (§4.2 of the paper). This
//! crate provides:
//!
//! * [`Value`] / [`Column`] / [`Table`] — the encoded representation shared
//!   by every estimator in the workspace,
//! * [`csv`] — a loader so the real DMV export (or any CSV) can be used,
//! * [`synthetic`] — seeded generators standing in for the paper's DMV and
//!   Conviva datasets (see DESIGN.md for the substitution rationale),
//! * [`shift`] — partitioned ingest used by the data-shift experiment
//!   (Table 8).

#![forbid(unsafe_code)]

pub mod column;
pub mod csv;
pub mod shift;
pub mod synthetic;
pub mod table;
pub mod value;

pub use column::Column;
pub use csv::{load_csv, parse_csv, CsvError};
pub use table::{Table, TableSchema};
pub use value::Value;
