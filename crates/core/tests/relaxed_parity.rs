//! Relaxed-parity tier: `Precision::Relaxed` answers on a seeded table must
//! stay within a bounded q-error factor of the exact walk, be tagged
//! [`Provenance::Relaxed`], and leave the exact path bit-identical.
//!
//! This is the test-tier counterpart of the in-run assertion in
//! `bench_infer`'s relaxed phase: same tolerance, smaller scale, so CI
//! catches a drifting quantized walk without running the benchmark.

use naru_core::{NaruConfig, NaruEstimator, Precision};
use naru_data::synthetic::dmv_like;
use naru_query::{generate_workload, Provenance, Query, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mirrors the bench: selectivities are floored before the ratio so two
/// near-zeros (an all-paths-dead walk vs a quantization-shifted sliver of
/// mass) don't register as a huge q-error.
const SELECTIVITY_FLOOR: f64 = 1e-6;
/// Worst acceptable per-query factor between relaxed and exact answers.
const RELAXED_Q_ERROR_TOLERANCE: f64 = 2.0;

#[test]
fn relaxed_walk_stays_within_q_error_tolerance_of_exact() {
    let table = dmv_like(500, 42);
    let n = table.num_columns();
    let mut config = NaruConfig::small().with_samples(120);
    config.train.epochs = 1;
    config.train.compute_data_entropy = false;
    config.train.eval_tuples = 0;
    let (estimator, _) = NaruEstimator::train(&table, &config);
    let engine = estimator.into_engine();

    let mut rng = StdRng::seed_from_u64(7);
    let workload = generate_workload(&table, &WorkloadConfig::default(), 12, &mut rng);
    let queries: Vec<Query> = workload.iter().map(|lq| lq.query.clone()).collect();
    assert!(n > 0 && !queries.is_empty());

    // Exact reference answers — the default session precision.
    let mut exact_session = engine.session();
    assert_eq!(exact_session.precision(), Precision::Exact);
    let exact: Vec<f64> = queries
        .iter()
        .map(|q| {
            let est = exact_session.estimate(q).expect("generated workload queries are valid");
            assert_ne!(est.provenance, Provenance::Relaxed, "exact sessions must never tag Relaxed");
            est.selectivity
        })
        .collect();

    // The same walk under Precision::Relaxed: quantized hidden stack and
    // output heads, f32 accumulation, tagged provenance.
    let mut relaxed_session = engine.session().with_precision(Precision::Relaxed);
    let mut worst = 1.0f64;
    for (q, &e) in queries.iter().zip(exact.iter()) {
        let est = relaxed_session.estimate(q).expect("generated workload queries are valid");
        assert_eq!(est.provenance, Provenance::Relaxed, "relaxed sessions must tag their answers");
        let (r, e) = (est.selectivity.max(SELECTIVITY_FLOOR), e.max(SELECTIVITY_FLOOR));
        worst = worst.max(r.max(e) / r.min(e));
    }
    assert!(
        worst < RELAXED_Q_ERROR_TOLERANCE,
        "relaxed walk drifted beyond the q-error tolerance: {worst:.4} >= {RELAXED_Q_ERROR_TOLERANCE}"
    );

    // Flipping a session back to Exact restores bit-identical answers: the
    // quantized mirror's existence must not perturb the exact path.
    let mut round_trip = relaxed_session;
    round_trip.set_precision(Precision::Exact);
    for (q, &e) in queries.iter().zip(exact.iter()) {
        let est = round_trip.estimate(q).expect("generated workload queries are valid");
        assert_eq!(est.selectivity.to_bits(), e.to_bits(), "exact answers must be reproducible bit-for-bit");
    }
}
