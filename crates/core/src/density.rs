//! The conditional-density interface shared by neural models and oracles.
//!
//! Progressive sampling (§5.1) only needs one capability from the
//! underlying density model: given values for columns `< i`, produce the
//! conditional distribution of column `i`. The paper notes that the same
//! sampler runs both on a trained autoregressive network and on an *oracle*
//! distribution obtained by scanning the data (§6.7); this trait is that
//! abstraction.

use naru_tensor::Matrix;

/// A factorized distribution over the rows of a table, exposed through its
/// chain-rule conditionals.
pub trait ConditionalDensity {
    /// Number of columns of the modeled relation.
    fn num_columns(&self) -> usize;

    /// Domain sizes of each column.
    fn domain_sizes(&self) -> &[usize];

    /// Conditional distributions `P(X_col | prefix)` for a batch of
    /// partially-filled tuples.
    ///
    /// `tuples` holds one id-encoded tuple per entry; only the first `col`
    /// positions of each tuple are read (the autoregressive property
    /// guarantees later positions cannot influence the result). The return
    /// value has one row per tuple and `domain_sizes()[col]` columns, each
    /// row summing to 1.
    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix;

    /// Log-likelihood (natural log) of each fully-specified tuple.
    ///
    /// The default implementation multiplies the chain-rule conditionals
    /// column by column; models with a cheaper one-pass evaluation (the
    /// MADE network) override it.
    fn log_likelihood(&self, tuples: &[Vec<u32>]) -> Vec<f64> {
        let n = self.num_columns();
        let mut ll = vec![0.0f64; tuples.len()];
        for col in 0..n {
            let probs = self.conditionals(tuples, col);
            for (t, tuple) in tuples.iter().enumerate() {
                let p = probs.get(t, tuple[col] as usize) as f64;
                ll[t] += p.max(f64::MIN_POSITIVE).ln();
            }
        }
        ll
    }
}

/// Average negative log-likelihood of `tuples` under `density`, in bits per
/// tuple — the cross-entropy `H(P, P̂)` of Eq. 2 estimated on a sample.
pub fn average_nll_bits<D: ConditionalDensity + ?Sized>(density: &D, tuples: &[Vec<u32>]) -> f64 {
    if tuples.is_empty() {
        return 0.0;
    }
    let ll = density.log_likelihood(tuples);
    let nats: f64 = ll.iter().map(|&l| -l).sum::<f64>() / tuples.len() as f64;
    nats / std::f64::consts::LN_2
}

/// The entropy gap (§3.3): `H(P, P̂) − H(P)` in bits, the KL divergence
/// between the data distribution and the model. Non-negative in
/// expectation; small values mean a good fit.
pub fn entropy_gap_bits<D: ConditionalDensity + ?Sized>(
    density: &D,
    tuples: &[Vec<u32>],
    data_entropy_bits: f64,
) -> f64 {
    average_nll_bits(density, tuples) - data_entropy_bits
}

/// A density that assumes full column independence with given marginals;
/// used in tests as the simplest possible [`ConditionalDensity`], and by
/// the noisy-oracle calibration.
#[derive(Debug, Clone)]
pub struct IndependentDensity {
    domain_sizes: Vec<usize>,
    /// Per-column probability vectors.
    marginals: Vec<Vec<f32>>,
}

impl IndependentDensity {
    /// Creates the density from per-column marginal distributions.
    pub fn new(marginals: Vec<Vec<f32>>) -> Self {
        let domain_sizes = marginals.iter().map(Vec::len).collect();
        Self { domain_sizes, marginals }
    }

    /// Uniform marginals over the given domains.
    pub fn uniform(domain_sizes: &[usize]) -> Self {
        let marginals = domain_sizes.iter().map(|&d| vec![1.0 / d as f32; d]).collect();
        Self { domain_sizes: domain_sizes.to_vec(), marginals }
    }

    /// Builds marginals from a table's per-column value counts.
    pub fn from_table(table: &naru_data::Table) -> Self {
        let marginals = table
            .columns()
            .iter()
            .map(|c| {
                let counts = c.value_counts();
                let n = c.len() as f32;
                counts.iter().map(|&cnt| cnt as f32 / n).collect()
            })
            .collect();
        Self::new(marginals)
    }
}

impl ConditionalDensity for IndependentDensity {
    fn num_columns(&self) -> usize {
        self.domain_sizes.len()
    }

    fn domain_sizes(&self) -> &[usize] {
        &self.domain_sizes
    }

    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        let marginal = &self.marginals[col];
        let mut out = Matrix::zeros(tuples.len(), marginal.len());
        for r in 0..tuples.len() {
            out.row_mut(r).copy_from_slice(marginal);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_density_conditionals_are_marginals() {
        let d = IndependentDensity::new(vec![vec![0.25, 0.75], vec![0.1, 0.2, 0.7]]);
        let tuples = vec![vec![0, 0], vec![1, 2]];
        let c0 = d.conditionals(&tuples, 0);
        assert_eq!(c0.row(0), &[0.25, 0.75]);
        let c1 = d.conditionals(&tuples, 1);
        assert_eq!(c1.row(1), &[0.1, 0.2, 0.7]);
    }

    #[test]
    fn log_likelihood_is_product_of_conditionals() {
        let d = IndependentDensity::new(vec![vec![0.25, 0.75], vec![0.1, 0.2, 0.7]]);
        let ll = d.log_likelihood(&[vec![1, 2]]);
        assert!((ll[0] - (0.75f64 * 0.7).ln()).abs() < 1e-5);
    }

    #[test]
    fn uniform_density_nll_is_log_joint_size() {
        let d = IndependentDensity::uniform(&[4, 8]);
        let tuples = vec![vec![0, 0], vec![3, 7]];
        let nll = average_nll_bits(&d, &tuples);
        assert!((nll - 5.0).abs() < 1e-5); // log2(32) = 5 bits
    }

    #[test]
    fn entropy_gap_of_perfect_model_is_zero() {
        // For a uniform data distribution over 32 tuples, a uniform model
        // has zero gap.
        let d = IndependentDensity::uniform(&[4, 8]);
        let tuples: Vec<Vec<u32>> = (0..4).flat_map(|a| (0..8).map(move |b| vec![a, b])).collect();
        let gap = entropy_gap_bits(&d, &tuples, 5.0);
        assert!(gap.abs() < 1e-6);
    }

    #[test]
    fn from_table_matches_counts() {
        let t = naru_data::Table::new("t", vec![naru_data::Column::from_ids("a", vec![0, 0, 1, 1, 1, 1], 2)]);
        let d = IndependentDensity::from_table(&t);
        let c = d.conditionals(&[vec![0]], 0);
        assert!((c.get(0, 0) - 2.0 / 6.0).abs() < 1e-6);
        assert!((c.get(0, 1) - 4.0 / 6.0).abs() < 1e-6);
    }
}
