//! The conditional-density interface shared by neural models and oracles.
//!
//! Progressive sampling (§5.1) only needs one capability from the
//! underlying density model: given values for columns `< i`, produce the
//! conditional distribution of column `i`. The paper notes that the same
//! sampler runs both on a trained autoregressive network and on an *oracle*
//! distribution obtained by scanning the data (§6.7); this trait is that
//! abstraction.

use naru_tensor::Matrix;

/// Reusable scratch state for [`ConditionalDensity::conditionals_into`].
///
/// Progressive sampling calls `conditionals_into` once per column step; the
/// scratch carries everything a density may want to keep warm between
/// steps so the hot path is allocation-free at steady state:
///
/// * the neural model's forward-pass activation buffers (`nn`),
/// * the encoded-input batch (`enc`), maintained *incrementally* — the
///   encoding of column `c`'s block is written once, right before the first
///   step that needs it, instead of re-encoding the whole prefix from
///   scratch every step,
/// * a bridge buffer (`tuple_vecs`) used by the default (allocating)
///   implementation so oracles and baselines keep working unchanged.
///
/// The sampler owns one scratch per sampler instance, calls
/// [`InferenceScratch::reset`] at the start of every estimate, and
/// [`InferenceScratch::compact_rows`] whenever it compacts dead sample
/// paths so the cached encodings stay aligned with the live batch.
#[derive(Debug)]
pub struct InferenceScratch {
    /// Forward-pass activation buffers (ping-pong + per-block scratch).
    pub(crate) nn: naru_nn::Workspace,
    /// Encoded network input for the current batch of sample paths.
    pub(crate) enc: Matrix,
    /// Number of leading per-column blocks of `enc` that are up to date.
    pub(crate) enc_cols: usize,
    /// Whether `enc` describes the current batch at all.
    pub(crate) enc_valid: bool,
    /// Whether the current walk runs in relaxed precision: densities with a
    /// quantized mirror (see [`ConditionalDensity::prepare_relaxed`]) route
    /// their forward passes through it while this is set. Owned by the
    /// sampler, which sets it per walk from the session's `Precision` and
    /// the global kernel policy.
    pub(crate) relaxed: bool,
    /// Scratch for bridging flat tuples to the allocating `conditionals`.
    tuple_vecs: Vec<Vec<u32>>,
}

impl Default for InferenceScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl InferenceScratch {
    /// Creates an empty scratch; buffers materialize on first use.
    pub fn new() -> Self {
        Self {
            nn: naru_nn::Workspace::new(),
            enc: Matrix::zeros(0, 0),
            enc_cols: 0,
            enc_valid: false,
            relaxed: false,
            tuple_vecs: Vec::new(),
        }
    }

    /// Invalidates cached per-query state (keeps allocations). Must be
    /// called before reusing the scratch for a new batch of tuples.
    pub fn reset(&mut self) {
        self.enc_valid = false;
        self.enc_cols = 0;
    }

    /// Compacts the cached encoded rows to the surviving paths: row `i` of
    /// the compacted batch is old row `keep[i]`. `keep` must be strictly
    /// increasing. No-op when nothing is cached.
    pub fn compact_rows(&mut self, keep: &[u32]) {
        if !self.enc_valid {
            return;
        }
        for (dst, &src) in keep.iter().enumerate() {
            self.enc.copy_row_within(src as usize, dst);
        }
        let cols = self.enc.cols();
        self.enc.resize(keep.len(), cols);
    }

    /// Rebuilds `tuples` as per-row `Vec`s for the allocating bridge,
    /// reusing buffers across calls.
    // lint: allow_fn(index) - bridge buffers are sized to the tuple width at entry
    fn bridge_tuples(&mut self, flat: &[u32], num_cols: usize) -> &[Vec<u32>] {
        let rows = flat.len().checked_div(num_cols).unwrap_or(0);
        self.tuple_vecs.resize_with(rows, Vec::new);
        for (r, tuple) in self.tuple_vecs.iter_mut().enumerate() {
            tuple.clear();
            tuple.extend_from_slice(&flat[r * num_cols..(r + 1) * num_cols]);
        }
        &self.tuple_vecs
    }
}

/// A factorized distribution over the rows of a table, exposed through its
/// chain-rule conditionals.
pub trait ConditionalDensity {
    /// Number of columns of the modeled relation.
    fn num_columns(&self) -> usize;

    /// Domain sizes of each column.
    fn domain_sizes(&self) -> &[usize];

    /// Builds whatever inference-only relaxed-precision state the density
    /// supports (e.g. quantized weight mirrors). Called once by
    /// `Engine::new` before the density is shared; the default is a no-op —
    /// oracles and closed-form baselines have nothing to relax.
    fn prepare_relaxed(&mut self) {}

    /// Whether this density can actually serve relaxed-precision walks.
    /// Governs [`Provenance`](naru_query::Provenance) tagging: a session in
    /// relaxed mode only tags answers `Relaxed` when the density reports
    /// support, so densities without a quantized mirror keep their exact
    /// provenance (and bit-exact answers) regardless of the requested mode.
    fn supports_relaxed(&self) -> bool {
        false
    }

    /// Conditional distributions `P(X_col | prefix)` for a batch of
    /// partially-filled tuples.
    ///
    /// `tuples` holds one id-encoded tuple per entry; only the first `col`
    /// positions of each tuple are read (the autoregressive property
    /// guarantees later positions cannot influence the result). The return
    /// value has one row per tuple and `domain_sizes()[col]` columns, each
    /// row summing to 1.
    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix;

    /// Buffer-reusing variant of [`ConditionalDensity::conditionals`] for
    /// the sampling hot path.
    ///
    /// `tuples` is a flat row-major batch (`rows * num_cols` ids); the
    /// result is written into `out` (resized in place). The default
    /// implementation delegates to the allocating [`conditionals`]
    /// (via `scratch`'s bridge buffers) so oracles and baseline densities
    /// work unchanged; models with a buffer-reusing forward pass override
    /// it to run allocation-free at steady state.
    ///
    /// [`conditionals`]: ConditionalDensity::conditionals
    fn conditionals_into(
        &self,
        tuples: &[u32],
        num_cols: usize,
        col: usize,
        out: &mut Matrix,
        scratch: &mut InferenceScratch,
    ) {
        let probs = self.conditionals(scratch.bridge_tuples(tuples, num_cols), col);
        // lint: allow(no_alloc) - resize on a caller-retained buffer: allocates only on first use or growth, amortized to zero in the steady state
        out.resize(probs.rows(), probs.cols());
        out.data_mut().copy_from_slice(probs.data());
    }

    /// Log-likelihood (natural log) of each fully-specified tuple.
    ///
    /// The default implementation multiplies the chain-rule conditionals
    /// column by column; models with a cheaper one-pass evaluation (the
    /// MADE network) override it.
    // lint: allow_fn(index) - bridge buffers are sized to the tuple width at entry
    fn log_likelihood(&self, tuples: &[Vec<u32>]) -> Vec<f64> {
        let n = self.num_columns();
        let mut ll = vec![0.0f64; tuples.len()];
        for col in 0..n {
            let probs = self.conditionals(tuples, col);
            for (t, tuple) in tuples.iter().enumerate() {
                let p = probs.get(t, tuple[col] as usize) as f64;
                ll[t] += p.max(f64::MIN_POSITIVE).ln();
            }
        }
        ll
    }
}

/// Average negative log-likelihood of `tuples` under `density`, in bits per
/// tuple — the cross-entropy `H(P, P̂)` of Eq. 2 estimated on a sample.
pub fn average_nll_bits<D: ConditionalDensity + ?Sized>(density: &D, tuples: &[Vec<u32>]) -> f64 {
    if tuples.is_empty() {
        return 0.0;
    }
    let ll = density.log_likelihood(tuples);
    let nats: f64 = ll.iter().map(|&l| -l).sum::<f64>() / tuples.len() as f64;
    nats / std::f64::consts::LN_2
}

/// The entropy gap (§3.3): `H(P, P̂) − H(P)` in bits, the KL divergence
/// between the data distribution and the model. Non-negative in
/// expectation; small values mean a good fit.
pub fn entropy_gap_bits<D: ConditionalDensity + ?Sized>(
    density: &D,
    tuples: &[Vec<u32>],
    data_entropy_bits: f64,
) -> f64 {
    average_nll_bits(density, tuples) - data_entropy_bits
}

/// A density that assumes full column independence with given marginals;
/// used in tests as the simplest possible [`ConditionalDensity`], and by
/// the noisy-oracle calibration.
#[derive(Debug, Clone)]
pub struct IndependentDensity {
    domain_sizes: Vec<usize>,
    /// Per-column probability vectors.
    marginals: Vec<Vec<f32>>,
}

impl IndependentDensity {
    /// Creates the density from per-column marginal distributions.
    pub fn new(marginals: Vec<Vec<f32>>) -> Self {
        let domain_sizes = marginals.iter().map(Vec::len).collect();
        Self { domain_sizes, marginals }
    }

    /// Uniform marginals over the given domains.
    pub fn uniform(domain_sizes: &[usize]) -> Self {
        let marginals = domain_sizes.iter().map(|&d| vec![1.0 / d as f32; d]).collect();
        Self { domain_sizes: domain_sizes.to_vec(), marginals }
    }

    /// Builds marginals from a table's per-column value counts.
    pub fn from_table(table: &naru_data::Table) -> Self {
        let marginals = table
            .columns()
            .iter()
            .map(|c| {
                let counts = c.value_counts();
                let n = c.len() as f32;
                counts.iter().map(|&cnt| cnt as f32 / n).collect()
            })
            .collect();
        Self::new(marginals)
    }
}

impl ConditionalDensity for IndependentDensity {
    fn num_columns(&self) -> usize {
        self.domain_sizes.len()
    }

    fn domain_sizes(&self) -> &[usize] {
        &self.domain_sizes
    }

    // lint: allow_fn(index) - bridge buffers are sized to the tuple width at entry
    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        let marginal = &self.marginals[col];
        let mut out = Matrix::zeros(tuples.len(), marginal.len());
        for r in 0..tuples.len() {
            out.row_mut(r).copy_from_slice(marginal);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_density_conditionals_are_marginals() {
        let d = IndependentDensity::new(vec![vec![0.25, 0.75], vec![0.1, 0.2, 0.7]]);
        let tuples = vec![vec![0, 0], vec![1, 2]];
        let c0 = d.conditionals(&tuples, 0);
        assert_eq!(c0.row(0), &[0.25, 0.75]);
        let c1 = d.conditionals(&tuples, 1);
        assert_eq!(c1.row(1), &[0.1, 0.2, 0.7]);
    }

    #[test]
    fn log_likelihood_is_product_of_conditionals() {
        let d = IndependentDensity::new(vec![vec![0.25, 0.75], vec![0.1, 0.2, 0.7]]);
        let ll = d.log_likelihood(&[vec![1, 2]]);
        assert!((ll[0] - (0.75f64 * 0.7).ln()).abs() < 1e-5);
    }

    #[test]
    fn uniform_density_nll_is_log_joint_size() {
        let d = IndependentDensity::uniform(&[4, 8]);
        let tuples = vec![vec![0, 0], vec![3, 7]];
        let nll = average_nll_bits(&d, &tuples);
        assert!((nll - 5.0).abs() < 1e-5); // log2(32) = 5 bits
    }

    #[test]
    fn entropy_gap_of_perfect_model_is_zero() {
        // For a uniform data distribution over 32 tuples, a uniform model
        // has zero gap.
        let d = IndependentDensity::uniform(&[4, 8]);
        let tuples: Vec<Vec<u32>> = (0..4).flat_map(|a| (0..8).map(move |b| vec![a, b])).collect();
        let gap = entropy_gap_bits(&d, &tuples, 5.0);
        assert!(gap.abs() < 1e-6);
    }

    #[test]
    fn default_conditionals_into_bridges_to_allocating_path() {
        let d = IndependentDensity::new(vec![vec![0.25, 0.75], vec![0.1, 0.2, 0.7]]);
        let mut scratch = InferenceScratch::new();
        let mut out = Matrix::zeros(0, 0);
        // Flat batch of two tuples.
        d.conditionals_into(&[0, 0, 1, 2], 2, 1, &mut out, &mut scratch);
        assert_eq!(out.shape(), (2, 3));
        assert_eq!(out.row(0), &[0.1, 0.2, 0.7]);
        assert_eq!(out.row(1), &[0.1, 0.2, 0.7]);
        // Second call with fewer rows reuses the buffers.
        d.conditionals_into(&[1, 0], 2, 0, &mut out, &mut scratch);
        assert_eq!(out.shape(), (1, 2));
        assert_eq!(out.row(0), &[0.25, 0.75]);
    }

    #[test]
    fn scratch_compact_rows_keeps_selected_rows() {
        let mut scratch = InferenceScratch::new();
        scratch.enc.resize(4, 3);
        for r in 0..4 {
            scratch.enc.row_mut(r).iter_mut().for_each(|v| *v = r as f32);
        }
        scratch.enc_valid = true;
        scratch.compact_rows(&[0, 2, 3]);
        assert_eq!(scratch.enc.shape(), (3, 3));
        assert_eq!(scratch.enc.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(scratch.enc.row(1), &[2.0, 2.0, 2.0]);
        assert_eq!(scratch.enc.row(2), &[3.0, 3.0, 3.0]);
        // Invalid scratch: compaction is a no-op.
        let mut idle = InferenceScratch::new();
        idle.compact_rows(&[0]);
        assert_eq!(idle.enc.shape(), (0, 0));
    }

    #[test]
    fn from_table_matches_counts() {
        let t = naru_data::Table::new("t", vec![naru_data::Column::from_ids("a", vec![0, 0, 1, 1, 1, 1], 2)]);
        let d = IndependentDensity::from_table(&t);
        let c = d.conditionals(&[vec![0]], 0);
        assert!((c.get(0, 0) - 2.0 / 6.0).abs() < 1e-6);
        assert!((c.get(0, 1) - 4.0 / 6.0).abs() < 1e-6);
    }
}
