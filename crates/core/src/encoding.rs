//! Per-column input encodings (§4.2 of the paper).
//!
//! Every column is dictionary-encoded to ids by `naru-data`; this module
//! decides how those ids are presented to the neural network:
//!
//! * **one-hot** for small domains (default threshold 64), exactly as the
//!   paper's default;
//! * **embedding** for large domains — a learnable `|A_i| × h` table, the
//!   paper's default for large domains (and the matrix reused for output
//!   decoding when "embedding reuse" is enabled);
//! * **binary** — the id's bit pattern, an `O(log |A_i|)`-width encoding
//!   offered by the reference implementation as a compact alternative;
//!   supported here for the encoding ablation.

/// The encoding chosen for one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnEncoding {
    /// Indicator vector of width `|A_i|`.
    OneHot,
    /// Bit pattern of the id, width `ceil(log2 |A_i|)`.
    Binary,
    /// Row lookup into a learnable `|A_i| × h` table.
    Embedding {
        /// Embedding width `h`.
        dim: usize,
    },
}

impl ColumnEncoding {
    /// Width of the encoded representation for a domain of size `domain`.
    pub fn width(&self, domain: usize) -> usize {
        match self {
            ColumnEncoding::OneHot => domain,
            ColumnEncoding::Binary => bits_for_domain(domain),
            ColumnEncoding::Embedding { dim } => *dim,
        }
    }
}

/// Number of bits needed to represent ids in `[0, domain)`.
pub fn bits_for_domain(domain: usize) -> usize {
    if domain <= 1 {
        1
    } else {
        (usize::BITS - (domain - 1).leading_zeros()) as usize
    }
}

/// Writes the binary encoding of `id` into `out` (length = bits, most
/// significant bit first), as 0.0/1.0 floats.
pub fn encode_binary(id: u32, bits: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), bits);
    for (i, slot) in out.iter_mut().enumerate() {
        let shift = bits - 1 - i;
        *slot = ((id >> shift) & 1) as f32;
    }
}

/// Policy deciding the encoding of each column from its domain size.
#[derive(Debug, Clone)]
pub struct EncodingPolicy {
    /// Domains up to this size use one-hot (paper default: 64).
    pub one_hot_threshold: usize,
    /// Embedding width `h` for large domains (paper default: 64).
    pub embedding_dim: usize,
    /// If true, large domains use [`ColumnEncoding::Binary`] instead of
    /// embeddings (a lighter-weight option for very wide tables).
    pub prefer_binary_for_large: bool,
}

impl Default for EncodingPolicy {
    fn default() -> Self {
        Self { one_hot_threshold: 64, embedding_dim: 64, prefer_binary_for_large: false }
    }
}

impl EncodingPolicy {
    /// A policy with a smaller embedding width, used by the scaled-down
    /// experiment configurations.
    pub fn compact(embedding_dim: usize) -> Self {
        Self { embedding_dim, ..Self::default() }
    }

    /// Chooses the encoding for a column with the given domain size.
    pub fn choose(&self, domain: usize) -> ColumnEncoding {
        if domain <= self.one_hot_threshold {
            ColumnEncoding::OneHot
        } else if self.prefer_binary_for_large {
            ColumnEncoding::Binary
        } else {
            // An embedding wider than the domain would waste parameters.
            ColumnEncoding::Embedding { dim: self.embedding_dim.min(domain) }
        }
    }

    /// Chooses encodings for a whole schema.
    pub fn choose_all(&self, domain_sizes: &[usize]) -> Vec<ColumnEncoding> {
        domain_sizes.iter().map(|&d| self.choose(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_domain_edges() {
        assert_eq!(bits_for_domain(1), 1);
        assert_eq!(bits_for_domain(2), 1);
        assert_eq!(bits_for_domain(3), 2);
        assert_eq!(bits_for_domain(4), 2);
        assert_eq!(bits_for_domain(5), 3);
        assert_eq!(bits_for_domain(1024), 10);
        assert_eq!(bits_for_domain(1025), 11);
    }

    #[test]
    fn binary_encoding_round_trips() {
        let bits = bits_for_domain(100);
        let mut buf = vec![0.0; bits];
        for id in [0u32, 1, 42, 99] {
            encode_binary(id, bits, &mut buf);
            let decoded: u32 = buf.iter().fold(0, |acc, &b| (acc << 1) | (b as u32));
            assert_eq!(decoded, id);
        }
    }

    #[test]
    fn policy_thresholds() {
        let policy = EncodingPolicy::default();
        assert_eq!(policy.choose(4), ColumnEncoding::OneHot);
        assert_eq!(policy.choose(64), ColumnEncoding::OneHot);
        assert_eq!(policy.choose(65), ColumnEncoding::Embedding { dim: 64 });
        assert_eq!(policy.choose(2101), ColumnEncoding::Embedding { dim: 64 });
        let binary = EncodingPolicy { prefer_binary_for_large: true, ..Default::default() };
        assert_eq!(binary.choose(2101), ColumnEncoding::Binary);
    }

    #[test]
    fn widths_match_encoding() {
        assert_eq!(ColumnEncoding::OneHot.width(7), 7);
        assert_eq!(ColumnEncoding::Binary.width(7), 3);
        assert_eq!(ColumnEncoding::Embedding { dim: 16 }.width(7), 16);
    }

    #[test]
    fn choose_all_covers_schema() {
        let policy = EncodingPolicy::compact(8);
        let encs = policy.choose_all(&[4, 2101, 2]);
        assert_eq!(encs.len(), 3);
        assert_eq!(encs[0], ColumnEncoding::OneHot);
        assert_eq!(encs[1], ColumnEncoding::Embedding { dim: 8 });
    }
}
