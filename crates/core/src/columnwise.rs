//! The per-column autoregressive model ("architecture A", §3.2 / §4.3).
//!
//! Each column `i` gets its own compact MLP whose input is the aggregated
//! (here: concatenated) encoding of the previous columns' values and whose
//! output is a distribution over column `i`'s own domain. Column 0's net
//! receives a constant zero input, so its output is unconditional.
//!
//! The paper found this architecture slightly more accurate than the masked
//! MLP at equal parameter count but defaulted to the masked MLP for speed;
//! both are provided here so the §4.3 ablation can be reproduced
//! (`naru-bench -- ablation-arch`).

use naru_nn::loss::cross_entropy;
use naru_nn::optimizer::AdamConfig;
use naru_nn::Mlp;
use naru_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::density::ConditionalDensity;
use crate::encoding::{encode_binary, ColumnEncoding, EncodingPolicy};

/// Configuration of the column-wise model.
#[derive(Debug, Clone)]
pub struct ColumnwiseConfig {
    /// Hidden widths of each per-column MLP (e.g. `[64, 64]`).
    pub hidden_sizes: Vec<usize>,
    /// Input-encoding policy. Embedding encodings are mapped to binary here
    /// (each column net owns plain dense layers only), which keeps the
    /// architecture self-contained; one-hot is used below the threshold.
    pub encoding: EncodingPolicy,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for ColumnwiseConfig {
    fn default() -> Self {
        Self { hidden_sizes: vec![64, 64], encoding: EncodingPolicy::default(), seed: 0 }
    }
}

/// Architecture A: one small MLP per column.
pub struct ColumnwiseModel {
    domain_sizes: Vec<usize>,
    encodings: Vec<ColumnEncoding>,
    /// Per-column encoded widths (inputs to later columns).
    widths: Vec<usize>,
    /// Prefix sums of `widths`.
    offsets: Vec<usize>,
    nets: Vec<Mlp>,
}

impl ColumnwiseModel {
    /// Builds an untrained model.
    // lint: allow_fn(index) - indices are bounded by the per-column net shapes fixed in new()
    pub fn new(domain_sizes: &[usize], config: &ColumnwiseConfig) -> Self {
        // lint: allow(panic) - documented constructor contract: a table with no columns is a caller bug
        assert!(!domain_sizes.is_empty(), "model needs at least one column");
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Re-map embedding choices to binary: each column net is a plain MLP.
        let encodings: Vec<ColumnEncoding> = config
            .encoding
            .choose_all(domain_sizes)
            .into_iter()
            .map(|e| match e {
                ColumnEncoding::Embedding { .. } => ColumnEncoding::Binary,
                other => other,
            })
            .collect();
        let widths: Vec<usize> = domain_sizes.iter().zip(encodings.iter()).map(|(&d, e)| e.width(d)).collect();
        let mut offsets = Vec::with_capacity(widths.len() + 1);
        let mut acc = 0;
        for &w in &widths {
            offsets.push(acc);
            acc += w;
        }
        offsets.push(acc);

        let nets = domain_sizes
            .iter()
            .enumerate()
            .map(|(col, &domain)| {
                // Input: concatenation of encodings of columns < col; column 0
                // receives a single constant feature.
                let in_dim = offsets[col].max(1);
                let mut dims = Vec::with_capacity(config.hidden_sizes.len() + 2);
                dims.push(in_dim);
                dims.extend_from_slice(&config.hidden_sizes);
                dims.push(domain);
                Mlp::new(&mut rng, &dims)
            })
            .collect();

        Self { domain_sizes: domain_sizes.to_vec(), encodings, widths, offsets, nets }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.nets.iter().map(Mlp::param_count).sum()
    }

    /// Model size in bytes.
    pub fn size_bytes(&self) -> usize {
        naru_nn::params_size_bytes(self.param_count())
    }

    /// Encodes the prefix (columns `< col`) of each tuple into the input
    /// matrix of column `col`'s net.
    // lint: allow_fn(index) - indices are bounded by the per-column net shapes fixed in new()
    fn encode_prefix(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        let in_dim = self.offsets[col].max(1);
        let mut x = Matrix::zeros(tuples.len(), in_dim);
        if col == 0 {
            return x; // constant zero input
        }
        for (r, tuple) in tuples.iter().enumerate() {
            let row = x.row_mut(r);
            for c in 0..col {
                let off = self.offsets[c];
                let width = self.widths[c];
                let slot = &mut row[off..off + width];
                match self.encodings[c] {
                    ColumnEncoding::OneHot => slot[tuple[c] as usize] = 1.0,
                    ColumnEncoding::Binary => encode_binary(tuple[c], width, slot),
                    // lint: allow(panic) - the constructor re-maps every Embedding encoding to Binary
                    ColumnEncoding::Embedding { .. } => unreachable!("embeddings re-mapped to binary"),
                }
            }
        }
        x
    }

    /// One maximum-likelihood gradient step; returns the batch NLL in nats
    /// per tuple.
    // lint: allow_fn(index) - indices are bounded by the per-column net shapes fixed in new()
    pub fn train_step(&mut self, tuples: &[Vec<u32>], adam: &AdamConfig) -> f64 {
        // lint: allow(panic) - documented train_step contract: an empty batch has no gradient
        assert!(!tuples.is_empty(), "empty batch");
        let mut total = 0.0;
        for col in 0..self.domain_sizes.len() {
            let x = self.encode_prefix(tuples, col);
            let targets: Vec<usize> = tuples.iter().map(|t| t[col] as usize).collect();
            let (logits, trace) = self.nets[col].forward_train(&x);
            let ce = cross_entropy(&logits, &targets);
            total += ce.loss;
            self.nets[col].zero_grad();
            self.nets[col].backward(&trace, &ce.grad_logits);
            self.nets[col].adam_step(adam);
        }
        total
    }

    /// Per-tuple log-likelihood in nats.
    // lint: allow_fn(index) - indices are bounded by the per-column net shapes fixed in new()
    pub fn log_likelihood_batch(&self, tuples: &[Vec<u32>]) -> Vec<f64> {
        let mut ll = vec![0.0f64; tuples.len()];
        for col in 0..self.domain_sizes.len() {
            let x = self.encode_prefix(tuples, col);
            let logits = self.nets[col].forward(&x);
            let log_probs = naru_tensor::log_softmax_rows(&logits);
            for (t, tuple) in tuples.iter().enumerate() {
                ll[t] += log_probs.get(t, tuple[col] as usize) as f64;
            }
        }
        ll
    }
}

impl ConditionalDensity for ColumnwiseModel {
    fn num_columns(&self) -> usize {
        self.domain_sizes.len()
    }

    fn domain_sizes(&self) -> &[usize] {
        &self.domain_sizes
    }

    // lint: allow_fn(index) - indices are bounded by the per-column net shapes fixed in new()
    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        let x = self.encode_prefix(tuples, col);
        let logits = self.nets[col].forward(&x);
        naru_tensor::softmax_rows(&logits)
    }

    fn log_likelihood(&self, tuples: &[Vec<u32>]) -> Vec<f64> {
        self.log_likelihood_batch(tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditionals_are_distributions_and_autoregressive() {
        let model = ColumnwiseModel::new(&[3, 5, 4], &ColumnwiseConfig::default());
        let probs = model.conditionals(&[vec![0, 1, 2], vec![2, 4, 0]], 1);
        assert_eq!(probs.shape(), (2, 5));
        for r in 0..2 {
            let s: f32 = probs.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
        // Column 1's conditional must ignore columns 1 and 2.
        let a = model.conditionals(&[vec![1, 0, 0]], 1);
        let b = model.conditionals(&[vec![1, 4, 3]], 1);
        for i in 0..5 {
            assert!((a.get(0, i) - b.get(0, i)).abs() < 1e-7);
        }
        // Column 0 is unconditional.
        let c = model.conditionals(&[vec![0, 0, 0]], 0);
        let d = model.conditionals(&[vec![2, 3, 1]], 0);
        for i in 0..3 {
            assert!((c.get(0, i) - d.get(0, i)).abs() < 1e-7);
        }
    }

    #[test]
    fn training_learns_column_copy() {
        let mut data = Vec::new();
        for i in 0..4u32 {
            for _ in 0..8 {
                data.push(vec![i, i]);
            }
        }
        let mut model =
            ColumnwiseModel::new(&[4, 4], &ColumnwiseConfig { hidden_sizes: vec![16], ..Default::default() });
        let adam = AdamConfig { lr: 5e-3, ..Default::default() };
        let first = model.train_step(&data, &adam);
        let mut last = first;
        for _ in 0..200 {
            last = model.train_step(&data, &adam);
        }
        assert!(last < first * 0.5, "loss did not drop: {first} -> {last}");
        let probs = model.conditionals(&[vec![3, 0]], 1);
        assert!(probs.get(0, 3) > 0.7);
    }

    #[test]
    fn param_count_positive_and_size_matches() {
        let model = ColumnwiseModel::new(&[4, 100, 2], &ColumnwiseConfig::default());
        assert!(model.param_count() > 0);
        assert_eq!(model.size_bytes(), model.param_count() * 4);
    }
}
